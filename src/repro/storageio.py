"""Fault-aware I/O shim for the coordinator's durable artifacts.

Every byte the coordinator persists — checkpoint journal lines, v2
archives, content-addressed store entries — flows through the small
functions here, which consult the active :class:`~repro.faults.FaultPlan`
before touching the disk.  That gives the storage failure domain the
same property the worker and network domains already have: faults are
*injected at the real write sites*, deterministically, from the same
seeded plan, so crash consistency is a tested invariant instead of a
docs claim.

The shim stays honest about which side of the durability line each
fault lands on:

- :func:`check_disk_full` fires **before** any bytes are written — an
  injected ``ENOSPC`` leaves the artifact exactly as it was;
- :func:`fsync` injects **latency only** (``journal_fsync_stall``) —
  the data is still synced, just late;
- :func:`maybe_bitflip` fires **after** a successful publish — the
  write succeeded, the media rotted later;
- :func:`torn_tail_fires` lets the journal writer emulate a power cut
  between the page-cache write and the fsync: a truncated line lands,
  nothing is synced, and only resume-time recovery notices.

Draws are keyed on the artifact's own identity (fault key, store key,
path) — never on a global write ordinal — so the schedule is a pure
function of the plan and the artifact, independent of completion order
in parallel sweeps.
"""

from __future__ import annotations

import errno
import os
import tempfile
import time
from typing import IO

from repro import faults
from repro.obs import metrics as obs_metrics


def check_disk_full(key: str, attempt: int = 1, *, path: str = "") -> None:
    """Raise a deterministic ``ENOSPC`` when the plan's ``disk_full``
    fires for ``key`` — called before the first byte of a durable write.
    """
    if faults.should_inject_at("disk_full", key, attempt):
        obs_metrics.counter("storage.disk_full").inc()
        raise OSError(
            errno.ENOSPC,
            f"injected disk_full fault ({key})",
            path or None,
        )


def fsync(fh: IO, key: str, attempt: int = 1) -> None:
    """``os.fsync`` with injected ``journal_fsync_stall`` latency.

    The stall sleeps :attr:`FaultPlan.fsync_stall_seconds` *before* the
    sync — modelling a slow disk, not a lost one; the data always lands.
    """
    plan = faults.active()
    if plan is not None and plan.fires("journal_fsync_stall", key, attempt):
        obs_metrics.counter("storage.fsync_stalls").inc()
        time.sleep(plan.fsync_stall_seconds)
    os.fsync(fh.fileno())


def torn_tail_fires(key: str, attempt: int = 1) -> bool:
    """Does ``journal_torn_tail`` fire for this append?  The journal
    writer owns the mechanics (truncate the line, skip the fsync); the
    shim owns the draw so all storage kinds share one schedule."""
    fired = faults.should_inject_at("journal_torn_tail", key, attempt)
    if fired:
        obs_metrics.counter("storage.torn_tails").inc()
    return fired


def maybe_bitflip(path: str, key: str, attempt: int = 1) -> bool:
    """Corrupt one byte of the published entry at ``path`` when the
    plan's ``store_bitflip`` fires; True when a flip happened.

    The flipped offset is itself a deterministic draw, so the same plan
    rots the same byte of the same entry on every run.  Flipping any
    byte of a store entry breaks either its JSON framing or its payload
    checksum — both are caught by the next read and served as a miss.
    """
    plan = faults.active()
    if plan is None or not plan.fires("store_bitflip", key, attempt):
        return False
    size = os.path.getsize(path)
    if size == 0:
        return False
    offset = int(faults._uniform(plan.seed, "bitflip:offset", key) * size)
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0x01]))
        fh.flush()
        os.fsync(fh.fileno())
    obs_metrics.counter("storage.bitflips").inc()
    return True


def durable_append_line(fh: IO, line: str, key: str, *, path: str = "") -> None:
    """Durably append one line to an open log: ``disk_full`` gate,
    write, flush, shim :func:`fsync` — the append-only counterpart of
    :func:`atomic_write_text`.

    This is the primitive behind the service's study-queue WAL (and any
    future append-only artifact that wants the same fault surface): the
    injected failure modes land at exactly the points a real disk would
    fail, and the line is on stable storage before the call returns.
    """
    check_disk_full(key, path=path)
    fh.write(line + "\n")
    fh.flush()
    fsync(fh, key)


def atomic_write_text(path: str, text: str, key: str = "") -> None:
    """Durably publish ``text`` at ``path``: tmp + fsync + rename.

    The archive writer's crash-consistency primitive — a reader (or a
    crash at any barrier) sees either the old file or the complete new
    one, never a truncated hybrid.  The tmp file lands in ``path``'s own
    directory (rename must not cross filesystems) with the store's
    ``.tmp-`` prefix so ``repro fsck`` can sweep orphans after a crash.
    """
    directory = os.path.dirname(os.path.abspath(path))
    base = os.path.basename(path)
    check_disk_full(key or base, path=path)
    fd, tmp = tempfile.mkstemp(prefix=f".tmp-{base}-", dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            fsync(fh, key or base)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
