"""repro — a measurement-bias laboratory.

Reproduction of Mytkowicz, Diwan, Hauswirth & Sweeney, *"Producing Wrong
Data Without Doing Anything Obviously Wrong!"* (ASPLOS 2009).

The library bundles a complete simulated systems stack — a compiler and
linker for the minic language, a UNIX-style process loader, and
cycle-level machine models of Core 2 / Pentium 4 / m5-O3CPU-class
processors — plus the paper's actual contribution: tooling to *measure*,
*detect*, *explain* and *avoid* measurement bias in performance
experiments.

Quickstart::

    from repro import Experiment, ExperimentalSetup, workloads

    exp = Experiment(workloads.get("perlbench"), size="test")
    o2 = ExperimentalSetup(machine="core2", compiler="gcc", opt_level=2)
    o3 = o2.with_changes(opt_level=3)
    print(exp.speedup(o2, o3))   # is O3 beneficial ... in THIS setup?

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro import analysis, workloads
from repro.arch import (
    MachineConfig,
    PerfCounters,
    RunResult,
    available_machines,
    core2,
    get_machine,
    m5_o3cpu,
    pentium4,
)
from repro.core import (
    BiasReport,
    ConfidenceInterval,
    Experiment,
    ExperimentalSetup,
    Measurement,
    RandomizedEvaluation,
    StudyResult,
    SummaryStats,
    VerificationError,
    detect_bias,
    env_size_study,
    evaluate_with_randomization,
    geometric_mean,
    link_order_study,
    t_confidence_interval,
)
from repro.os import Environment
from repro.toolchain import (
    GCC,
    ICC,
    CompilerProfile,
    LinkLayout,
    compile_program,
    compile_unit,
    link,
)

__version__ = "1.0.0"

__all__ = [
    "BiasReport",
    "CompilerProfile",
    "ConfidenceInterval",
    "Environment",
    "Experiment",
    "ExperimentalSetup",
    "GCC",
    "ICC",
    "LinkLayout",
    "MachineConfig",
    "Measurement",
    "PerfCounters",
    "RandomizedEvaluation",
    "RunResult",
    "StudyResult",
    "SummaryStats",
    "VerificationError",
    "analysis",
    "available_machines",
    "compile_program",
    "compile_unit",
    "core2",
    "detect_bias",
    "env_size_study",
    "evaluate_with_randomization",
    "geometric_mean",
    "get_machine",
    "link",
    "link_order_study",
    "m5_o3cpu",
    "pentium4",
    "t_confidence_interval",
    "workloads",
]
