"""The toolchain substrate: minic compiler, optimizer and linker.

Entry points:

- :func:`~repro.toolchain.compiler.compile_unit` /
  :func:`~repro.toolchain.compiler.compile_program` — source to modules,
- :func:`~repro.toolchain.linker.link` — modules + link order to an
  executable,
- :data:`~repro.toolchain.profiles.GCC` / :data:`~repro.toolchain.profiles.ICC`
  — the two modelled compiler vendors.
"""

from repro.toolchain.compiler import compile_program, compile_unit
from repro.toolchain.errors import CompileError, LinkError, ToolchainError
from repro.toolchain.linker import DATA_BASE, TEXT_BASE, LinkLayout, link
from repro.toolchain.parser import parse_source
from repro.toolchain.profiles import (
    GCC,
    ICC,
    CompilerProfile,
    available_profiles,
    get_profile,
)

__all__ = [
    "CompileError",
    "CompilerProfile",
    "DATA_BASE",
    "GCC",
    "ICC",
    "LinkError",
    "LinkLayout",
    "TEXT_BASE",
    "ToolchainError",
    "available_profiles",
    "compile_program",
    "compile_unit",
    "get_profile",
    "link",
    "parse_source",
]
