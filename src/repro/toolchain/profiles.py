"""Compiler vendor profiles.

The paper demonstrates measurement bias with two compilers, gcc and
Intel's icc.  We model a "vendor" as a bundle of heuristics layered over
the same pass infrastructure — which is exactly what distinguishes real
compilers for the purposes of layout-induced bias:

- how aggressively they inline and unroll (code size / shape),
- whether they schedule instructions (load-use distances),
- whether they pad hot loop heads to fetch-window boundaries
  (icc's ``-falign-loops``-style behaviour),
- how many locals they keep in registers and whether they cache global
  base addresses in registers.

Indexing any tuple with the optimization level (0-3) yields that knob's
setting, e.g. ``GCC.unroll_factor[3] == 4``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

OPT_LEVELS = (0, 1, 2, 3)


@dataclass(frozen=True)
class CompilerProfile:
    """Heuristic bundle for one modelled compiler vendor.

    Attributes:
        name: vendor tag ("gcc", "icc").
        inline_threshold: max callee statement count inlined, per level.
        unroll_factor: loop unroll factor, per level (1 = no unrolling).
        promote_registers: max scalars promoted to callee-saved registers.
        cache_global_bases: max global base addresses cached in registers.
        schedule: whether the post-codegen list scheduler runs.
        loop_alignment: byte alignment requested for hot loop heads
            (1 = none).  Padding is 1-byte NOPs inserted by the linker.
    """

    name: str
    inline_threshold: Tuple[int, int, int, int]
    unroll_factor: Tuple[int, int, int, int]
    promote_registers: Tuple[int, int, int, int]
    cache_global_bases: Tuple[int, int, int, int]
    schedule: Tuple[bool, bool, bool, bool]
    loop_alignment: Tuple[int, int, int, int]

    def validate(self) -> None:
        """Sanity-check knob ranges (used by tests and custom profiles)."""
        for level in OPT_LEVELS:
            if self.unroll_factor[level] < 1:
                raise ValueError(f"{self.name}: unroll factor must be >= 1")
            if self.inline_threshold[level] < 0:
                raise ValueError(f"{self.name}: inline threshold must be >= 0")
            total_regs = (
                self.promote_registers[level] + self.cache_global_bases[level]
            )
            if total_regs > 6:
                raise ValueError(
                    f"{self.name}: promote + cached bases exceed the 6 "
                    f"callee-saved registers at O{level}"
                )
            align = self.loop_alignment[level]
            if align < 1 or (align & (align - 1)) != 0:
                raise ValueError(f"{self.name}: loop alignment must be a power of 2")


#: gcc-flavoured heuristics: inlines small callees from O2, unrolls only
#: at O3, never pads loops.
GCC = CompilerProfile(
    name="gcc",
    inline_threshold=(0, 0, 8, 24),
    unroll_factor=(1, 1, 1, 4),
    promote_registers=(0, 4, 4, 4),
    cache_global_bases=(0, 0, 2, 2),
    schedule=(False, False, False, True),
    loop_alignment=(1, 1, 1, 1),
)

#: icc-flavoured heuristics: more aggressive inlining and earlier
#: unrolling, schedules from O2, pads hot loop heads to 16 bytes.
ICC = CompilerProfile(
    name="icc",
    inline_threshold=(0, 0, 12, 32),
    unroll_factor=(1, 1, 2, 4),
    promote_registers=(0, 4, 4, 4),
    cache_global_bases=(0, 2, 2, 2),
    schedule=(False, False, True, True),
    loop_alignment=(1, 1, 16, 16),
)

_PROFILES = {"gcc": GCC, "icc": ICC}


def get_profile(name: str) -> CompilerProfile:
    """Look up a built-in profile by vendor name."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown compiler profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None


def available_profiles() -> Tuple[str, ...]:
    """Names of the built-in vendor profiles."""
    return tuple(sorted(_PROFILES))
