"""Lexer for minic, the toolchain's small C-like source language."""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from repro.toolchain.errors import CompileError

KEYWORDS = frozenset(
    {
        "int",
        "byte",
        "var",
        "func",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = ("<<", ">>", "<=", ">=", "==", "!=", "&&", "||")

_SINGLE_OPS = set("+-*/%&|^~!<>=()[]{},;")


class Token(NamedTuple):
    """A lexical token: ``kind`` is 'num', 'name', 'kw', or 'op'."""

    kind: str
    text: str
    line: int
    col: int


def tokenize(source: str, filename: Optional[str] = None) -> List[Token]:
    """Tokenize ``source`` into a token list.

    Supports decimal and hex (``0x``) integers, ``//`` line comments and
    ``/* */`` block comments.  Raises :class:`CompileError` on any
    character outside the language.
    """
    return list(_tokens(source, filename))


def _tokens(source: str, filename: Optional[str]) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line, col, filename)
            skipped = source[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                text = source[start:i]
                if len(text) == 2:
                    raise CompileError("malformed hex literal", line, col, filename)
            else:
                while i < n and source[i].isdigit():
                    i += 1
                text = source[start:i]
            yield Token("num", text, line, col)
            col += len(text)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "name"
            yield Token(kind, text, line, col)
            col += len(text)
            continue
        matched = None
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                matched = op
                break
        if matched is not None:
            yield Token("op", matched, line, col)
            i += len(matched)
            col += len(matched)
            continue
        if ch in _SINGLE_OPS:
            yield Token("op", ch, line, col)
            i += 1
            col += 1
            continue
        raise CompileError(f"unexpected character {ch!r}", line, col, filename)


def token_value(token: Token) -> int:
    """Integer value of a 'num' token."""
    if token.kind != "num":
        raise ValueError(f"not a number token: {token!r}")
    return int(token.text, 0)
