"""Toolchain error types with source locations."""

from __future__ import annotations

from typing import Optional


class ToolchainError(Exception):
    """Base class for all toolchain failures."""


class CompileError(ToolchainError):
    """A minic source program is malformed.

    Carries an optional (line, column) pair so workload authors can find
    the offending construct.
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        col: Optional[int] = None,
        filename: Optional[str] = None,
    ) -> None:
        self.message = message
        self.line = line
        self.col = col
        self.filename = filename
        where = ""
        if filename is not None:
            where += f"{filename}:"
        if line is not None:
            where += f"{line}:"
            if col is not None:
                where += f"{col}:"
        super().__init__(f"{where} {message}" if where else message)


class LinkError(ToolchainError):
    """The linker cannot produce an executable from its inputs."""
