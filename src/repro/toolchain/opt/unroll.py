"""AST-level loop unrolling.

Unrolls ``for`` loops with a constant positive step and a ``<``/``<=``
upper bound into a guarded main loop executing ``factor`` bodies per trip
plus the original loop as remainder:

.. code-block:: text

    for (i = a; i < L; i = i + s) B
      ==>
    i = a;
    while (i + (f-1)*s < L) { B; i = i + s;  ... f copies ... }
    while (i < L)           { B; i = i + s; }

Safety conditions (checked syntactically, conservatively):

- the induction variable is not assigned inside the body,
- the bound ``L`` is a literal or a scalar variable not assigned in the
  body; if the body contains calls or ``poke``-family intrinsics, ``L``
  must not be a global (a callee or a poke could change it),
- the body contains no ``break``/``continue``/``return``.

Unrolling multiplies hot-loop body size — the paper's key O3 shape change:
bigger loop bodies interact with fetch windows and the loop stream
detector, so whether unrolling *helps* becomes layout-dependent.
"""

from __future__ import annotations

import copy
from typing import List, Set

from repro.toolchain import ast


def _body_assigns(body: ast.Block) -> Set[str]:
    names: Set[str] = set()
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, ast.Assign):
            names.add(stmt.name)
        elif isinstance(stmt, ast.For):
            names.add(stmt.var)
    return names


def _body_has_escapes(body: ast.Block) -> bool:
    depth_zero_loop_breaks = False
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Return)):
            depth_zero_loop_breaks = True
    return depth_zero_loop_breaks


def _body_has_calls_or_pokes(body: ast.Block) -> bool:
    for stmt in ast.walk_stmts(body):
        for top in ast.stmt_exprs(stmt):
            for expr in ast.walk_exprs(top):
                if isinstance(expr, ast.Call):
                    if expr.name in ("poke", "pokeb") or (
                        expr.name not in ast.INTRINSICS
                    ):
                        return True
    return False


def _step_of(loop: ast.For) -> int:
    """Constant positive step if the update is ``var = var + c``; else 0."""
    upd = loop.update
    if (
        isinstance(upd, ast.BinOp)
        and upd.op == "+"
        and isinstance(upd.lhs, ast.Var)
        and upd.lhs.name == loop.var
        and isinstance(upd.rhs, ast.Num)
        and upd.rhs.value > 0
    ):
        return upd.rhs.value
    return 0


def _unrollable(loop: ast.For, unit_globals: Set[str]) -> bool:
    step = _step_of(loop)
    if step == 0:
        return False
    cond = loop.cond
    if not (
        isinstance(cond, ast.BinOp)
        and cond.op in ("<", "<=")
        and isinstance(cond.lhs, ast.Var)
        and cond.lhs.name == loop.var
    ):
        return False
    bound = cond.rhs
    if not isinstance(bound, (ast.Num, ast.Var)):
        return False
    assigns = _body_assigns(loop.body)
    if loop.var in assigns:
        return False
    if isinstance(bound, ast.Var):
        if bound.name in assigns:
            return False
        if bound.name in unit_globals and _body_has_calls_or_pokes(loop.body):
            return False
    if _body_has_escapes(loop.body):
        return False
    # Body copies would re-declare locals; minic scopes declarations to
    # the function, so unrolling a declaring body is ill-formed.
    if any(isinstance(s, ast.VarDecl) for s in ast.walk_stmts(loop.body)):
        return False
    return True


def _unroll_one(loop: ast.For, factor: int) -> List[ast.Stmt]:
    step = _step_of(loop)
    line = loop.line
    var = loop.var

    def var_ref() -> ast.Var:
        return ast.Var(line=line, name=var)

    def bump() -> ast.Assign:
        return ast.Assign(
            line=line,
            name=var,
            value=ast.BinOp(
                line=line,
                op="+",
                lhs=var_ref(),
                rhs=ast.Num(line=line, value=step),
            ),
        )

    cond = loop.cond
    assert isinstance(cond, ast.BinOp)
    guard_lhs: ast.Expr = var_ref()
    lookahead = (factor - 1) * step
    if lookahead:
        guard_lhs = ast.BinOp(
            line=line,
            op="+",
            lhs=guard_lhs,
            rhs=ast.Num(line=line, value=lookahead),
        )
    guard = ast.BinOp(
        line=line, op=cond.op, lhs=guard_lhs, rhs=copy.deepcopy(cond.rhs)
    )

    main_body_stmts: List[ast.Stmt] = []
    for __ in range(factor):
        main_body_stmts.extend(copy.deepcopy(loop.body).stmts)
        main_body_stmts.append(bump())
    main_loop = ast.While(
        line=line, cond=guard, body=ast.Block(line=line, stmts=main_body_stmts)
    )

    remainder_body = copy.deepcopy(loop.body)
    remainder_body.stmts.append(bump())
    remainder = ast.While(
        line=line, cond=copy.deepcopy(cond), body=remainder_body
    )

    init_assign = ast.Assign(line=line, name=var, value=loop.init)
    return [init_assign, main_loop, remainder]


def unroll_loops(unit: ast.SourceUnit, factor: int) -> int:
    """Unroll eligible ``for`` loops in ``unit`` by ``factor``; returns count.

    Only innermost eligible loops are transformed (outer loops keep their
    structure: unrolling everything would explode code size beyond
    anything real compilers do).
    """
    if factor <= 1:
        return 0
    unit_globals = {g.name for g in unit.globals}
    unrolled = 0

    def contains_for(body: ast.Block) -> bool:
        return any(isinstance(s, ast.For) for s in ast.walk_stmts(body))

    def rewrite_block(block: ast.Block) -> None:
        nonlocal unrolled
        out: List[ast.Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, ast.If):
                rewrite_block(stmt.then)
                if stmt.els is not None:
                    rewrite_block(stmt.els)
            elif isinstance(stmt, ast.While):
                rewrite_block(stmt.body)
            elif isinstance(stmt, ast.For):
                # Innermost-ness is judged on the *original* structure:
                # a loop whose body contained a for is an outer loop even
                # after its child was rewritten into whiles.
                was_innermost = not contains_for(stmt.body)
                rewrite_block(stmt.body)
                if was_innermost and _unrollable(stmt, unit_globals):
                    out.extend(_unroll_one(stmt, factor))
                    unrolled += 1
                    continue
            out.append(stmt)
        block.stmts = out

    for func in unit.funcs:
        rewrite_block(func.body)
    return unrolled
