"""Control-flow graph cleanup.

Four transformations, iterated to a fixed point; blocks are merged or
deleted but **never reordered** (fall-through is implicit):

1. *Unreachable block removal* — blocks not reachable from the entry
   block disappear.
2. *Jump threading* — a transfer targeting a block that consists of a
   single ``JMP`` is retargeted past it.
3. *Jump-to-next removal* — a ``JMP`` whose target is the lexically next
   block becomes a fall-through (deleting 5 bytes: this pass visibly
   changes layout, as on real toolchains).
4. *Fall-through merging* — a block whose single predecessor falls
   through into it (and which requests no alignment) is absorbed,
   giving the scheduler longer blocks.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.isa.instructions import Op
from repro.isa.program import BasicBlock, Function
from repro.toolchain.opt.liveness import successors


def _reachable(func: Function) -> Set[str]:
    succ = successors(func)
    if not func.blocks:
        return set()
    seen: Set[str] = set()
    stack = [func.blocks[0].label]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        stack.extend(succ.get(label, ()))
    return seen


def _remove_unreachable(func: Function) -> bool:
    reachable = _reachable(func)
    before = len(func.blocks)
    # Keep an unreachable block only if dropping it would break the
    # fall-through of the previous block — cannot happen, since a block
    # falling through has its next block as successor, making it
    # reachable whenever the predecessor is.
    func.blocks = [b for b in func.blocks if b.label in reachable]
    return len(func.blocks) != before


def _thread_jumps(func: Function) -> bool:
    # Map each trivial-jump block to its ultimate destination.
    trivial: Dict[str, str] = {}
    for block in func.blocks:
        if len(block.instrs) == 1 and block.instrs[0].op is Op.JMP:
            trivial[block.label] = block.instrs[0].target  # type: ignore[arg-type]

    def resolve(label: str) -> str:
        seen = set()
        while label in trivial and label not in seen:
            seen.add(label)
            label = trivial[label]
        return label

    changed = False
    for block in func.blocks:
        for instr in block.instrs:
            if instr.op in (Op.JMP, Op.BEQZ, Op.BNEZ) and instr.target is not None:
                dest = resolve(instr.target)
                if dest != instr.target:
                    instr.target = dest
                    changed = True
    return changed


def _drop_jump_to_next(func: Function) -> bool:
    changed = False
    for idx, block in enumerate(func.blocks[:-1]):
        term = block.terminator()
        if (
            term is not None
            and term.op is Op.JMP
            and term.target == func.blocks[idx + 1].label
        ):
            block.instrs.pop()
            changed = True
    return changed


def _merge_fallthrough(func: Function) -> bool:
    # Count references to each label.
    refs: Dict[str, int] = {}
    for block in func.blocks:
        for instr in block.instrs:
            if instr.target is not None and instr.op in (Op.JMP, Op.BEQZ, Op.BNEZ):
                refs[instr.target] = refs.get(instr.target, 0) + 1
    merged: List[BasicBlock] = []
    changed = False
    for block in func.blocks:
        if (
            merged
            and merged[-1].terminator() is None
            and refs.get(block.label, 0) == 0
            and block.align == 1
            and block is not func.blocks[0]
        ):
            merged[-1].instrs.extend(block.instrs)
            changed = True
        else:
            merged.append(block)
    func.blocks = merged
    return changed


def _drop_empty(func: Function) -> bool:
    """Remove blocks emptied by jump deletion (only unreferenced ones —
    jump threading has already rewritten every reference past them)."""
    refs: Set[str] = set()
    for block in func.blocks:
        for instr in block.instrs:
            if instr.target is not None and instr.op in (Op.JMP, Op.BEQZ, Op.BNEZ):
                refs.add(instr.target)
    before = len(func.blocks)
    func.blocks = [
        b
        for idx, b in enumerate(func.blocks)
        if b.instrs or b.label in refs or idx == 0
    ]
    return len(func.blocks) != before


def simplify_cfg(func: Function) -> None:
    """Run all CFG cleanups on ``func`` to a fixed point (in place)."""
    for __ in range(64):  # fixed-point with a safety bound
        changed = False
        changed |= _thread_jumps(func)
        changed |= _remove_unreachable(func)
        changed |= _drop_jump_to_next(func)
        changed |= _drop_empty(func)
        changed |= _merge_fallthrough(func)
        if not changed:
            return
