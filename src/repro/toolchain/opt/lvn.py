"""Local value numbering (block-scoped CSE with copy propagation).

Within each basic block we assign value numbers to register contents and
recognize recomputations of available expressions: the recomputation
becomes a ``MOV`` from the register still holding the value (later cleaned
to nothing by dead-code elimination when the MOV is redundant).

Memory is modelled with an epoch counter: loads are available expressions
keyed by (address value number, displacement, epoch); any store or call
advances the epoch.  A store additionally publishes the stored value as
the result of the matching load in the *new* epoch (store-to-load
forwarding).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.instructions import ALU_IMM_OPS, ALU_OPS, Instr, Op
from repro.isa.program import Function

#: ALU ops where operand order does not matter; keys are canonicalized.
_COMMUTATIVE = {Op.ADD, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SEQ, Op.SNE}


class _Numbering:
    def __init__(self) -> None:
        self._next = 0
        self.reg_vn: Dict[int, int] = {}
        self.vn_home: Dict[int, int] = {}  # value number -> reg holding it

    def fresh(self) -> int:
        self._next += 1
        return self._next

    def vn_of(self, reg: int) -> int:
        vn = self.reg_vn.get(reg)
        if vn is None:
            vn = self.fresh()
            self.reg_vn[reg] = vn
            self.vn_home[vn] = reg
        return vn

    def set_reg(self, reg: int, vn: int) -> None:
        old = self.reg_vn.get(reg)
        if old is not None and self.vn_home.get(old) == reg:
            del self.vn_home[old]
        self.reg_vn[reg] = vn
        self.vn_home.setdefault(vn, reg)

    def invalidate(self, reg: int) -> None:
        old = self.reg_vn.pop(reg, None)
        if old is not None and self.vn_home.get(old) == reg:
            del self.vn_home[old]

    def home_of(self, vn: int) -> int:
        return self.vn_home.get(vn, -1)


def lvn_block(instrs: List[Instr]) -> List[Instr]:
    """Value-number one block; returns the rewritten instruction list."""
    numbering = _Numbering()
    expr_vn: Dict[Tuple, int] = {}
    mem_epoch = 0
    out: List[Instr] = []
    for instr in instrs:
        op = instr.op
        # Copy-propagate sources to the canonical home register when the
        # home still holds the value.
        instr = instr.copy()
        for attr in ("ra", "rb"):
            reg = getattr(instr, attr)
            if not _reads_attr(op, attr):
                continue
            vn = numbering.vn_of(reg)
            home = numbering.home_of(vn)
            if home >= 0 and home != reg and numbering.reg_vn.get(home) == vn:
                setattr(instr, attr, home)

        if op is Op.CONST:
            key = ("const", instr.imm, instr.target)
            vn = expr_vn.get(key)
            home = numbering.home_of(vn) if vn is not None else -1
            if vn is not None and home >= 0 and numbering.reg_vn.get(home) == vn:
                if home != instr.rd:
                    out.append(Instr(Op.MOV, rd=instr.rd, ra=home))
                numbering.set_reg(instr.rd, vn)
                continue
            vn = numbering.fresh()
            expr_vn[key] = vn
            numbering.set_reg(instr.rd, vn)
            out.append(instr)
            continue

        if op is Op.MOV:
            vn = numbering.vn_of(instr.ra)
            numbering.set_reg(instr.rd, vn)
            out.append(instr)
            continue

        if op in ALU_OPS or op in ALU_IMM_OPS:
            if op in ALU_OPS:
                va, vb = numbering.vn_of(instr.ra), numbering.vn_of(instr.rb)
                if op in _COMMUTATIVE and vb < va:
                    va, vb = vb, va
                key = (int(op), va, vb)
            else:
                key = (int(op), numbering.vn_of(instr.ra), instr.imm)
            vn = expr_vn.get(key)
            home = numbering.home_of(vn) if vn is not None else -1
            if vn is not None and home >= 0 and numbering.reg_vn.get(home) == vn:
                if home != instr.rd:
                    out.append(Instr(Op.MOV, rd=instr.rd, ra=home))
                numbering.set_reg(instr.rd, vn)
                continue
            vn = numbering.fresh()
            expr_vn[key] = vn
            numbering.set_reg(instr.rd, vn)
            out.append(instr)
            continue

        if op is Op.LOAD or op is Op.LOADB:
            key = ("ld", int(op), numbering.vn_of(instr.ra), instr.imm, mem_epoch)
            vn = expr_vn.get(key)
            home = numbering.home_of(vn) if vn is not None else -1
            if vn is not None and home >= 0 and numbering.reg_vn.get(home) == vn:
                if home != instr.rd:
                    out.append(Instr(Op.MOV, rd=instr.rd, ra=home))
                numbering.set_reg(instr.rd, vn)
                continue
            vn = numbering.fresh()
            expr_vn[key] = vn
            numbering.set_reg(instr.rd, vn)
            out.append(instr)
            continue

        if op is Op.STORE or op is Op.STOREB:
            mem_epoch += 1
            load_op = Op.LOAD if op is Op.STORE else Op.LOADB
            key = (
                "ld",
                int(load_op),
                numbering.vn_of(instr.ra),
                instr.imm,
                mem_epoch,
            )
            expr_vn[key] = numbering.vn_of(instr.rb)
            out.append(instr)
            continue

        if op is Op.CALL:
            mem_epoch += 1
            for reg in range(0, 7):
                numbering.invalidate(reg)
            numbering.invalidate(13)
            out.append(instr)
            continue

        # Branches, RET, NOP, HALT: no value effects we track.
        out.append(instr)
    return out


def _reads_attr(op: Op, attr: str) -> bool:
    if attr == "ra":
        return op in ALU_OPS or op in ALU_IMM_OPS or op in (
            Op.MOV,
            Op.LOAD,
            Op.LOADB,
            Op.STORE,
            Op.STOREB,
            Op.BEQZ,
            Op.BNEZ,
        )
    return op in ALU_OPS or op in (Op.STORE, Op.STOREB)


def local_value_number(func: Function) -> None:
    """Run LVN over every block of ``func`` (in place)."""
    for block in func.blocks:
        block.instrs = lvn_block(block.instrs)
