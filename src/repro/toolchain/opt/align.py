"""Hot-loop alignment (the icc profile's behaviour).

Requests byte alignment for loop-head blocks; the linker realizes the
request with 1-byte NOP padding.  When the padding falls on a fall-through
path the NOPs actually execute — the same cost trade-off real compilers
make with ``-falign-loops``.
"""

from __future__ import annotations

from repro.isa.program import Function


def is_loop_head_label(label: str) -> bool:
    """Codegen labels loop headers ``L<n>head``; this is the contract the
    alignment pass and the analysis tooling share."""
    return label.endswith("head")


def align_hot_loops(func: Function, alignment: int) -> int:
    """Request ``alignment`` for every loop-head block; returns how many."""
    if alignment <= 1:
        return 0
    count = 0
    for block in func.blocks:
        if is_loop_head_label(block.label):
            block.align = alignment
            count += 1
    return count
