"""Global liveness analysis and dead-code elimination.

Backward dataflow over the function CFG (blocks in layout order; implicit
fall-through between consecutive blocks).  An instruction is removed when
it has no side effects and every register it writes is dead at that point.

Interprocedural contract encoded at the boundaries:

- ``CALL`` *reads* the argument registers ``r1``..``r6`` (arity unknown at
  this level) and the stack pointer, and *clobbers* ``r0``..``r6`` and the
  scratch register ``r13``.
- ``RET`` *reads* the return register ``r0``, all callee-saved registers
  ``r7``..``r12`` (the caller expects them preserved), and ``fp``/``sp``.
- ``HALT`` reads ``r0`` (the process exit value).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.isa.instructions import Instr, Op, REG_FP, REG_SP
from repro.isa.program import Function

_CALL_READS = frozenset({1, 2, 3, 4, 5, 6, REG_SP})
_CALL_WRITES = frozenset({0, 1, 2, 3, 4, 5, 6, 13})
_RET_READS = frozenset({0, 7, 8, 9, 10, 11, 12, REG_FP, REG_SP})
_HALT_READS = frozenset({0})


def instr_uses_defs(instr: Instr) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """(registers read, registers written) including the ABI contract."""
    op = instr.op
    if op is Op.CALL:
        return _CALL_READS, _CALL_WRITES
    if op is Op.RET:
        return _RET_READS, frozenset({REG_FP, REG_SP})
    if op is Op.HALT:
        return _HALT_READS, frozenset()
    return frozenset(instr.reads()), frozenset(instr.writes())


def successors(func: Function) -> Dict[str, List[str]]:
    """CFG successor labels per block, honouring fall-through."""
    result: Dict[str, List[str]] = {}
    blocks = func.blocks
    for idx, block in enumerate(blocks):
        succ: List[str] = []
        term = block.terminator()
        fall = blocks[idx + 1].label if idx + 1 < len(blocks) else None
        if term is None:
            if fall is not None:
                succ.append(fall)
        elif term.op is Op.JMP:
            succ.append(term.target)  # type: ignore[arg-type]
        elif term.op is Op.BEQZ or term.op is Op.BNEZ:
            succ.append(term.target)  # type: ignore[arg-type]
            if fall is not None:
                succ.append(fall)
        # RET / HALT: no successors.
        result[block.label] = succ
    return result


def block_use_def(block) -> Tuple[Set[int], Set[int]]:
    """(upward-exposed uses, definitely-defined registers) for one block."""
    uses: Set[int] = set()
    defs: Set[int] = set()
    for instr in block.instrs:
        iu, idf = instr_uses_defs(instr)
        uses |= iu - defs
        defs |= idf
    return uses, defs


def live_in_out(func: Function) -> Tuple[Dict[str, Set[int]], Dict[str, Set[int]]]:
    """Compute live-in/live-out register sets per block label."""
    succ = successors(func)
    use: Dict[str, Set[int]] = {}
    deff: Dict[str, Set[int]] = {}
    for block in func.blocks:
        use[block.label], deff[block.label] = block_use_def(block)
    live_in = {block.label: set() for block in func.blocks}
    live_out = {block.label: set() for block in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            label = block.label
            out: Set[int] = set()
            for s in succ[label]:
                out |= live_in.get(s, set())
            inn = use[label] | (out - deff[label])
            if out != live_out[label] or inn != live_in[label]:
                live_out[label] = out
                live_in[label] = inn
                changed = True
    return live_in, live_out


#: Opcodes safe to delete when their results are dead.  Loads are
#: included: a dead load has no architectural effect in this machine
#: model (exactly the deletion real compilers perform).
_PURE_OPS = frozenset(
    {
        Op.CONST,
        Op.MOV,
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.SHL,
        Op.SHR,
        Op.SLT,
        Op.SLE,
        Op.SEQ,
        Op.SNE,
        Op.ADDI,
        Op.MULI,
        Op.ANDI,
        Op.ORI,
        Op.XORI,
        Op.SHLI,
        Op.SHRI,
        Op.SLTI,
        Op.LOAD,
        Op.LOADB,
    }
)

#: Pure opcodes that can trap and therefore must not be removed even when
#: dead — division by zero is an architectural event.
_TRAPPING = frozenset({Op.DIV, Op.MOD})


def eliminate_dead_code(func: Function) -> int:
    """Remove dead pure instructions; returns the number removed.

    Iterates (liveness, sweep) to a fixed point so chains of dead
    definitions disappear completely.
    """
    removed_total = 0
    while True:
        __, live_out = live_in_out(func)
        removed = 0
        for block in func.blocks:
            live = set(live_out[block.label])
            kept: List[Instr] = []
            for instr in reversed(block.instrs):
                uses, defs = instr_uses_defs(instr)
                if (
                    instr.op in _PURE_OPS
                    and defs
                    and not (defs & live)
                ):
                    removed += 1
                    continue
                live -= defs
                live |= uses
                kept.append(instr)
            kept.reverse()
            block.instrs = kept
        removed_total += removed
        if removed == 0:
            return removed_total
