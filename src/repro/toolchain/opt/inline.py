"""AST-level function inlining.

Inlines calls appearing in statement position — ``f(x);``,
``y = f(x);`` and ``return f(x);`` — when the callee:

- is defined in the *same translation unit* (separate compilation: the
  compiler cannot see other modules, exactly as in the paper's toolchains),
- is small enough for the profile's threshold at this optimization level,
- has at most one ``return``, as the final top-level statement,
- does not (transitively, within the unit) call back into the caller.

Parameters and locals are alpha-renamed with a per-site prefix, so
inlining composes with every later phase.  Inlining grows code and
changes downstream layout — one of the two O2→O3 shape changes whose
layout sensitivity the paper measures.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Set

from repro.toolchain import ast


def _stmt_count(block: ast.Block) -> int:
    return sum(1 for _ in ast.walk_stmts(block))


def _direct_callees(func: ast.FuncDecl) -> Set[str]:
    callees: Set[str] = set()
    for stmt in ast.walk_stmts(func.body):
        for top in ast.stmt_exprs(stmt):
            for expr in ast.walk_exprs(top):
                if isinstance(expr, ast.Call) and expr.name not in ast.INTRINSICS:
                    callees.add(expr.name)
    return callees


def _reaches(
    src: str, dst: str, graph: Dict[str, Set[str]], seen: Optional[Set[str]] = None
) -> bool:
    if seen is None:
        seen = set()
    if src == dst:
        return True
    if src in seen:
        return False
    seen.add(src)
    return any(_reaches(nxt, dst, graph, seen) for nxt in graph.get(src, ()))


def _single_trailing_return(func: ast.FuncDecl) -> bool:
    returns = [
        s for s in ast.walk_stmts(func.body) if isinstance(s, ast.Return)
    ]
    if not returns:
        return True
    if len(returns) > 1:
        return False
    return func.body.stmts and func.body.stmts[-1] is returns[0]


class _Renamer:
    """Alpha-renames a callee body for one inline site."""

    def __init__(self, prefix: str, names: Set[str]) -> None:
        self._map = {name: prefix + name for name in names}

    def name(self, name: str) -> str:
        return self._map.get(name, name)

    def expr(self, expr: ast.Expr) -> ast.Expr:
        expr = copy.deepcopy(expr)
        for node in ast.walk_exprs(expr):
            if isinstance(node, (ast.Var, ast.Index, ast.AddrOf)):
                node.name = self.name(node.name)
        return expr

    def block(self, block: ast.Block) -> ast.Block:
        block = copy.deepcopy(block)
        for stmt in ast.walk_stmts(block):
            if isinstance(stmt, (ast.VarDecl, ast.Assign, ast.StoreStmt)):
                stmt.name = self.name(stmt.name)
            if isinstance(stmt, ast.For):
                stmt.var = self.name(stmt.var)
            for top in ast.stmt_exprs(stmt):
                for node in ast.walk_exprs(top):
                    if isinstance(node, (ast.Var, ast.Index, ast.AddrOf)):
                        node.name = self.name(node.name)
        return block


def _local_names(func: ast.FuncDecl) -> Set[str]:
    names = set(func.params)
    for stmt in ast.walk_stmts(func.body):
        if isinstance(stmt, ast.VarDecl):
            names.add(stmt.name)
    return names


def _expand_site(
    call: ast.Call, callee: ast.FuncDecl, site_id: int, result_var: Optional[str]
) -> List[ast.Stmt]:
    prefix = f"__in{site_id}_"
    renamer = _Renamer(prefix, _local_names(callee))
    stmts: List[ast.Stmt] = []
    for param, arg in zip(callee.params, call.args):
        renamed = renamer.name(param)
        stmts.append(ast.VarDecl(line=call.line, name=renamed))
        stmts.append(ast.Assign(line=call.line, name=renamed, value=arg))
    body = renamer.block(callee.body)
    trailing_return: Optional[ast.Return] = None
    if body.stmts and isinstance(body.stmts[-1], ast.Return):
        trailing_return = body.stmts.pop()  # type: ignore[assignment]
    stmts.extend(body.stmts)
    if result_var is not None:
        value: ast.Expr
        if trailing_return is not None and trailing_return.value is not None:
            value = trailing_return.value
        else:
            value = ast.Num(line=call.line, value=0)
        stmts.append(ast.Assign(line=call.line, name=result_var, value=value))
    return stmts


def _extract_nested_calls(unit: ast.SourceUnit, eligible_names: Set[str]) -> int:
    """Normalization: hoist eligible calls out of expressions.

    ``y = f(x) & m;`` becomes ``var t; t = f(x); y = t & m;`` so the
    statement-position inliner can see the call.  Extraction follows the
    code generator's evaluation order (post-order, left-to-right; for
    element stores: value before index) and never hoists out of the
    short-circuited right operand of ``&&``/``||``.
    """
    counter = 0

    def extract_expr(expr: ast.Expr, acc: List[ast.Stmt]) -> ast.Expr:
        nonlocal counter
        if isinstance(expr, ast.BinOp):
            expr.lhs = extract_expr(expr.lhs, acc)
            if expr.op not in ("&&", "||"):
                expr.rhs = extract_expr(expr.rhs, acc)
            return expr
        if isinstance(expr, ast.UnOp):
            expr.operand = extract_expr(expr.operand, acc)
            return expr
        if isinstance(expr, ast.Index):
            expr.index = extract_expr(expr.index, acc)
            return expr
        if isinstance(expr, ast.Call):
            expr.args = [extract_expr(a, acc) for a in expr.args]
            if expr.name in eligible_names:
                counter += 1
                tmp = f"__cx{counter}"
                acc.append(ast.VarDecl(line=expr.line, name=tmp))
                acc.append(ast.Assign(line=expr.line, name=tmp, value=expr))
                return ast.Var(line=expr.line, name=tmp)
            return expr
        return expr

    def rewrite_block(block: ast.Block) -> None:
        out: List[ast.Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, ast.If):
                rewrite_block(stmt.then)
                if stmt.els is not None:
                    rewrite_block(stmt.els)
            elif isinstance(stmt, (ast.While, ast.For)):
                rewrite_block(stmt.body)
            acc: List[ast.Stmt] = []
            if isinstance(stmt, ast.Assign):
                if not isinstance(stmt.value, ast.Call):
                    stmt.value = extract_expr(stmt.value, acc)
            elif isinstance(stmt, ast.StoreStmt):
                stmt.value = extract_expr(stmt.value, acc)
                stmt.index = extract_expr(stmt.index, acc)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None and not isinstance(stmt.value, ast.Call):
                    stmt.value = extract_expr(stmt.value, acc)
            elif isinstance(stmt, ast.ExprStmt):
                if isinstance(stmt.expr, ast.Call):
                    stmt.expr.args = [
                        extract_expr(a, acc) for a in stmt.expr.args
                    ]
                else:
                    stmt.expr = extract_expr(stmt.expr, acc)
            out.extend(acc)
            out.append(stmt)
        block.stmts = out

    for func in unit.funcs:
        rewrite_block(func.body)
    return counter


def inline_calls(unit: ast.SourceUnit, threshold: int) -> int:
    """Inline eligible call sites in ``unit`` (one round); returns count.

    ``threshold`` is the maximum callee statement count; 0 disables
    inlining entirely.
    """
    if threshold <= 0:
        return 0
    by_name = {f.name: f for f in unit.funcs}
    graph = {f.name: _direct_callees(f) for f in unit.funcs}
    inlined = 0
    site_counter = 0

    # Hoist inline-candidate calls out of expressions first so the
    # statement-position matcher below sees them.
    candidate_names = {
        f.name
        for f in unit.funcs
        if _stmt_count(f.body) <= threshold and _single_trailing_return(f)
    }
    if candidate_names:
        _extract_nested_calls(unit, candidate_names)

    def eligible(caller: str, name: str) -> Optional[ast.FuncDecl]:
        callee = by_name.get(name)
        if callee is None or callee.name == caller:
            return None
        if _stmt_count(callee.body) > threshold:
            return None
        if not _single_trailing_return(callee):
            return None
        if _reaches(callee.name, caller, graph):
            return None
        return callee

    def rewrite_block(caller: str, block: ast.Block) -> None:
        nonlocal inlined, site_counter
        out: List[ast.Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, ast.If):
                rewrite_block(caller, stmt.then)
                if stmt.els is not None:
                    rewrite_block(caller, stmt.els)
            elif isinstance(stmt, (ast.While, ast.For)):
                rewrite_block(caller, stmt.body)

            call: Optional[ast.Call] = None
            result_var: Optional[str] = None
            replacement_tail: Optional[ast.Stmt] = None
            if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Call):
                call = stmt.expr
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                call = stmt.value
            elif isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Call):
                call = stmt.value
            if call is not None and call.name not in ast.INTRINSICS:
                callee = eligible(caller, call.name)
                if callee is not None and len(call.args) == len(callee.params):
                    site_counter += 1
                    needs_result = not isinstance(stmt, ast.ExprStmt)
                    if needs_result:
                        result_var = f"__ret{site_counter}"
                        out.append(
                            ast.VarDecl(line=stmt.line, name=result_var)
                        )
                    expansion = _expand_site(call, callee, site_counter, result_var)
                    out.extend(expansion)
                    if isinstance(stmt, ast.Assign):
                        replacement_tail = ast.Assign(
                            line=stmt.line,
                            name=stmt.name,
                            value=ast.Var(line=stmt.line, name=result_var),
                        )
                    elif isinstance(stmt, ast.Return):
                        replacement_tail = ast.Return(
                            line=stmt.line,
                            value=ast.Var(line=stmt.line, name=result_var),
                        )
                    if replacement_tail is not None:
                        out.append(replacement_tail)
                    inlined += 1
                    continue
            out.append(stmt)
        block.stmts = out

    for func in unit.funcs:
        rewrite_block(func.name, func.body)
    return inlined
