"""Optimization passes.

Two families:

- **AST-level** (:mod:`.inline`, :mod:`.unroll`) run before semantic
  analysis and code generation; they change program *shape* (code size,
  loop body size) — the properties whose interaction with layout the paper
  studies.
- **Machine-level** (:mod:`.peephole`, :mod:`.lvn`, :mod:`.liveness`,
  :mod:`.cfgopt`, :mod:`.schedule`, :mod:`.align`) run on generated
  :class:`~repro.isa.program.Function` objects.

Pass-ordering contract: machine passes may merge and delete basic blocks
but must never reorder them — the executable relies on fall-through
between consecutive blocks.
"""

from repro.toolchain.opt.align import align_hot_loops
from repro.toolchain.opt.cfgopt import simplify_cfg
from repro.toolchain.opt.inline import inline_calls
from repro.toolchain.opt.liveness import eliminate_dead_code
from repro.toolchain.opt.lvn import local_value_number
from repro.toolchain.opt.peephole import peephole_optimize
from repro.toolchain.opt.schedule import schedule_blocks
from repro.toolchain.opt.unroll import unroll_loops

__all__ = [
    "align_hot_loops",
    "eliminate_dead_code",
    "inline_calls",
    "local_value_number",
    "peephole_optimize",
    "schedule_blocks",
    "simplify_cfg",
    "unroll_loops",
]
