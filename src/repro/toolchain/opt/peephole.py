"""Block-local peephole optimizations.

Three rewrite families, iterated to a fixed point per block:

1. **Immediate forming** — ``CONST t, c`` followed (not necessarily
   adjacently) by an ALU instruction using ``t`` becomes the
   register-immediate form when ``t`` is dead afterwards.  This is what
   turns the -O0 generator's constant soup into compact code, and it
   *shrinks encodings*, moving every later byte.
2. **Constant folding** — register-immediate ops whose source was a known
   constant fold to ``CONST``.
3. **Strength reduction / algebraic identities** — multiply by a power of
   two becomes a shift; ``x+0``, ``x*1``, ``x<<0``, ``x|0``, ``x^0``
   disappear; ``x*0`` and ``x&0`` become ``CONST 0``; ``MOV x, x`` is
   dropped.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.instructions import ALU_IMM_OPS, IMM_TO_REG, Instr, Op
from repro.isa.program import Function

_REG_TO_IMM = {reg: imm for imm, reg in IMM_TO_REG.items()}

_I32_MIN, _I32_MAX = -(2**31), 2**31 - 1

_MASK64 = (1 << 64) - 1


def _wrap64(value: int) -> int:
    """Wrap to the simulator's signed 64-bit arithmetic."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def fold_binop(op: Op, a: int, b: int) -> Optional[int]:
    """Evaluate a register-register ALU op on constants; None if it traps."""
    if op is Op.ADD:
        return _wrap64(a + b)
    if op is Op.SUB:
        return _wrap64(a - b)
    if op is Op.MUL:
        return _wrap64(a * b)
    if op is Op.DIV:
        if b == 0:
            return None
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    if op is Op.MOD:
        if b == 0:
            return None
        q = abs(a) // abs(b)
        q = -q if (a < 0) != (b < 0) else q
        return a - q * b
    if op is Op.AND:
        return _wrap64((a & _MASK64) & (b & _MASK64))
    if op is Op.OR:
        return _wrap64((a & _MASK64) | (b & _MASK64))
    if op is Op.XOR:
        return _wrap64((a & _MASK64) ^ (b & _MASK64))
    if op is Op.SHL:
        return _wrap64((a & _MASK64) << (b & 63))
    if op is Op.SHR:
        return (a & _MASK64) >> (b & 63)
    if op is Op.SLT:
        return 1 if a < b else 0
    if op is Op.SLE:
        return 1 if a <= b else 0
    if op is Op.SEQ:
        return 1 if a == b else 0
    if op is Op.SNE:
        return 1 if a != b else 0
    return None


def _dead_after(instrs: List[Instr], start: int, reg: int) -> bool:
    """True if ``reg`` is written before being read in ``instrs[start:]``
    and the block cannot expose it to successors live (conservatively,
    requires an overwrite before any read; falling off the block end
    counts as *live*)."""
    for instr in instrs[start:]:
        if reg in instr.reads():
            return False
        if instr.op is Op.CALL and 0 <= reg <= 6:
            # The call sequence reads argument registers.
            return False
        if reg in instr.writes():
            return True
        if instr.op is Op.CALL and (1 <= reg <= 6 or reg == 13 or reg == 0):
            return True  # clobbered by the call
    return False


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def peephole_block(instrs: List[Instr]) -> List[Instr]:
    """One fixed-point pass over a single block's instruction list."""
    changed = True
    out = list(instrs)
    while changed:
        changed = False
        # Track constants: reg -> value, invalidated on redefinition.
        const_of: Dict[int, int] = {}
        const_def_index: Dict[int, int] = {}
        result: List[Instr] = []
        kill_indices: set = set()
        for idx, instr in enumerate(out):
            op = instr.op
            new = instr
            if op is Op.MOV and instr.rd == instr.ra:
                changed = True
                continue
            # Immediate forming: reg-reg ALU with a known-constant rb.
            if op in _REG_TO_IMM.values() or op in (Op.SUB, Op.DIV, Op.MOD):
                pass  # handled below via generic path
            if (
                op in (Op.ADD, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.SLT)
                and instr.rb in const_of
                and instr.rb != instr.ra
                and _fits_imm(const_of[instr.rb])
                and _dead_after(out, idx + 1, instr.rb)
            ):
                new = Instr(
                    _REG_TO_IMM[op], rd=instr.rd, ra=instr.ra, imm=const_of[instr.rb]
                )
                kill_indices.add(const_def_index.get(instr.rb, -1))
                changed = True
            elif (
                op is Op.SUB
                and instr.rb in const_of
                and instr.rb != instr.ra
                and _fits_imm(-const_of[instr.rb])
                and _dead_after(out, idx + 1, instr.rb)
            ):
                new = Instr(
                    Op.ADDI, rd=instr.rd, ra=instr.ra, imm=-const_of[instr.rb]
                )
                kill_indices.add(const_def_index.get(instr.rb, -1))
                changed = True
            # Commutative ops with constant in ra instead.
            elif (
                op in (Op.ADD, Op.MUL, Op.AND, Op.OR, Op.XOR)
                and instr.ra in const_of
                and instr.ra != instr.rb
                and _fits_imm(const_of[instr.ra])
                and _dead_after(out, idx + 1, instr.ra)
            ):
                new = Instr(
                    _REG_TO_IMM[op], rd=instr.rd, ra=instr.rb, imm=const_of[instr.ra]
                )
                kill_indices.add(const_def_index.get(instr.ra, -1))
                changed = True
            op = new.op
            # Constant folding of immediate forms fed by constants.
            if (
                op in ALU_IMM_OPS
                and new.ra in const_of
                and new.target is None
            ):
                folded = fold_binop(IMM_TO_REG[op], const_of[new.ra], new.imm)
                if folded is not None:
                    new = Instr(Op.CONST, rd=new.rd, imm=folded)
                    changed = True
                    op = new.op
            # Algebraic identities and strength reduction.
            if op is Op.ADDI and new.imm == 0 and new.rd == new.ra:
                changed = True
                continue
            if op is Op.ADDI and new.imm == 0:
                new = Instr(Op.MOV, rd=new.rd, ra=new.ra)
                changed = True
            elif op is Op.MULI:
                if new.imm == 1:
                    if new.rd == new.ra:
                        changed = True
                        continue
                    new = Instr(Op.MOV, rd=new.rd, ra=new.ra)
                    changed = True
                elif new.imm == 0:
                    new = Instr(Op.CONST, rd=new.rd, imm=0)
                    changed = True
                elif _is_pow2(new.imm):
                    new = Instr(
                        Op.SHLI,
                        rd=new.rd,
                        ra=new.ra,
                        imm=new.imm.bit_length() - 1,
                    )
                    changed = True
            elif op is Op.ANDI and new.imm == 0:
                new = Instr(Op.CONST, rd=new.rd, imm=0)
                changed = True
            elif (
                op in (Op.ORI, Op.XORI, Op.SHLI, Op.SHRI)
                and new.imm == 0
                and new.rd == new.ra
            ):
                changed = True
                continue
            # Bookkeeping: constant tracking.
            written = new.writes()
            for reg in written:
                const_of.pop(reg, None)
                const_def_index.pop(reg, None)
            if new.op is Op.CONST and new.target is None:
                const_of[new.rd] = new.imm
                const_def_index[new.rd] = len(result)
            if new.op is Op.CALL:
                for reg in list(const_of):
                    if reg <= 6 or reg == 13:
                        const_of.pop(reg, None)
                        const_def_index.pop(reg, None)
            result.append(new)
        if kill_indices:
            result = [
                instr
                for pos, instr in enumerate(result)
                if pos not in kill_indices or not _removable_const(result, pos)
            ]
            changed = True
        out = result
    return out


def _removable_const(instrs: List[Instr], pos: int) -> bool:
    """The CONST at ``pos`` may be dropped if its reg is dead afterwards."""
    instr = instrs[pos]
    if instr.op is not Op.CONST:
        return False
    return _dead_after(instrs, pos + 1, instr.rd)


def _fits_imm(value: int) -> bool:
    return _I32_MIN <= value <= _I32_MAX


def peephole_optimize(func: Function) -> None:
    """Run the peephole pass over every block of ``func`` (in place)."""
    for block in func.blocks:
        block.instrs = peephole_block(block.instrs)
