"""List scheduling within basic blocks.

Reorders independent instructions to separate loads from their consumers
(the simulated pipelines charge a load-use stall) and to start long-latency
operations early.  Constraints:

- register dependences (RAW/WAR/WAW, including the scratch register),
- memory operations keep their order relative to stores,
- ``CALL`` is a full barrier,
- a block's terminator stays last.

Scheduling does not change total code bytes, but it changes *which* byte
boundaries instructions fall on — so even this "pure win" pass perturbs
fetch-window behaviour downstream, one of the paper's core observations
about innocuous changes.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.isa.instructions import Instr, Op
from repro.isa.program import Function
from repro.toolchain.opt.liveness import instr_uses_defs

#: Result latency used for priority computation (not for semantics).
_LATENCY = {
    Op.LOAD: 3,
    Op.LOADB: 3,
    Op.MUL: 3,
    Op.MULI: 3,
    Op.DIV: 12,
    Op.MOD: 12,
}

_MEM_READS = (Op.LOAD, Op.LOADB)
_MEM_WRITES = (Op.STORE, Op.STOREB)


def _build_deps(instrs: List[Instr]) -> List[Set[int]]:
    """deps[i] = set of indices that must precede instruction i."""
    deps: List[Set[int]] = [set() for _ in instrs]
    last_def: Dict[int, int] = {}
    last_uses: Dict[int, List[int]] = {}
    last_store = -1
    last_mem: List[int] = []
    barrier = -1
    for i, instr in enumerate(instrs):
        uses, defs = instr_uses_defs(instr)
        if barrier >= 0:
            deps[i].add(barrier)
        for reg in uses:
            if reg in last_def:
                deps[i].add(last_def[reg])  # RAW
        for reg in defs:
            if reg in last_def:
                deps[i].add(last_def[reg])  # WAW
            for j in last_uses.get(reg, ()):
                deps[i].add(j)  # WAR
        op = instr.op
        if op in _MEM_READS:
            if last_store >= 0:
                deps[i].add(last_store)
            last_mem.append(i)
        elif op in _MEM_WRITES or op is Op.CALL:
            for j in last_mem:
                deps[i].add(j)
            if last_store >= 0:
                deps[i].add(last_store)
            last_store = i
            last_mem = []
        if op is Op.CALL:
            # Full barrier: everything before stays before, everything
            # after stays after.
            for j in range(i):
                deps[i].add(j)
            barrier = i
        for reg in defs:
            last_def[reg] = i
            last_uses[reg] = []
        for reg in uses:
            last_uses.setdefault(reg, []).append(i)
        deps[i].discard(i)
    return deps


def schedule_block(instrs: List[Instr]) -> List[Instr]:
    """Return a legal reordering of one block's instructions."""
    if len(instrs) < 3:
        return list(instrs)
    body = list(instrs)
    tail: List[Instr] = []
    if body and body[-1].is_terminator():
        tail = [body.pop()]
    if len(body) < 2:
        return body + tail

    deps = _build_deps(body)
    # Successor lists and priority = longest latency path to any leaf.
    succs: List[List[int]] = [[] for _ in body]
    for i, dset in enumerate(deps):
        for j in dset:
            succs[j].append(i)
    priority = [0] * len(body)
    for i in range(len(body) - 1, -1, -1):
        lat = _LATENCY.get(body[i].op, 1)
        best = 0
        for j in succs[i]:
            if priority[j] > best:
                best = priority[j]
        priority[i] = lat + best

    remaining_deps = [set(d) for d in deps]
    scheduled: List[Instr] = []
    done: Set[int] = set()
    ready = [i for i, d in enumerate(remaining_deps) if not d]
    while len(done) < len(body):
        # Highest priority first; original order breaks ties for
        # determinism.
        ready.sort(key=lambda i: (-priority[i], i))
        pick = ready.pop(0)
        done.add(pick)
        scheduled.append(body[pick])
        for j in succs[pick]:
            if j in done or j in ready:
                continue
            remaining_deps[j].discard(pick)
            if not remaining_deps[j] and all(
                k in done for k in deps[j]
            ):
                ready.append(j)
    return scheduled + tail


def schedule_blocks(func: Function) -> None:
    """Schedule every block of ``func`` (in place)."""
    for block in func.blocks:
        block.instrs = schedule_block(block.instrs)
