"""The linker: modules + link order -> :class:`Executable`.

This is where the paper's *link-order bias* physically happens.  Functions
are placed in the text segment in module order, each aligned to the layout
policy's function alignment; permuting the module order moves every
function to different addresses, which changes I-cache set mappings,
fetch-window offsets of loop heads, and branch-predictor index aliasing —
without changing a single instruction.

Data objects are merged across modules by name (the classic COMMON-symbol
model: identical shape required, at most one initializer) and placed in
link order as well, so relinking also shifts global data.

A synthetic ``_start`` (``CALL main; HALT``) is always placed first, like
a real ``crt0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.encoding import encoded_size
from repro.isa.instructions import Instr, Op
from repro.isa.program import (
    BasicBlock,
    DataObject,
    Executable,
    Function,
    Module,
    PlacedFunction,
)
from repro.isa.validate import validate_module
from repro.toolchain.errors import LinkError

#: Canonical segment bases (flat, Linux-flavoured address space).
TEXT_BASE = 0x400000
DATA_BASE = 0x600000


@dataclass(frozen=True)
class LinkLayout:
    """Layout policy knobs.

    ``function_alignment`` is the paper-relevant ablation (A1): with large
    alignments, link order changes only which cache sets code occupies;
    with byte alignment it also changes every intra-function offset.
    """

    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    function_alignment: int = 16
    entry_symbol: str = "main"

    def validated(self) -> "LinkLayout":
        if self.function_alignment < 1 or (
            self.function_alignment & (self.function_alignment - 1)
        ):
            raise LinkError("function alignment must be a power of two")
        if self.text_base % 4096 or self.data_base % 4096:
            raise LinkError("segment bases must be page-aligned")
        if self.data_base <= self.text_base:
            raise LinkError("data segment must sit above the text segment")
        return self


def _merge_data(
    modules: Sequence[Module], order: Sequence[str]
) -> List[Tuple[str, DataObject]]:
    """Merge COMMON data symbols; returns (defining module, object) pairs
    in placement order (link order, then declaration order)."""
    by_name: Dict[str, DataObject] = {}
    first_module: Dict[str, str] = {}
    placement: List[Tuple[str, str]] = []
    module_map = {m.name: m for m in modules}
    for mod_name in order:
        module = module_map[mod_name]
        for name, obj in module.data.items():
            if name not in by_name:
                by_name[name] = obj
                first_module[name] = mod_name
                placement.append((mod_name, name))
                continue
            existing = by_name[name]
            if existing.kind != obj.kind or existing.count != obj.count:
                raise LinkError(
                    f"data symbol {name!r} declared with conflicting shapes "
                    f"in {first_module[name]!r} and {mod_name!r}"
                )
            if obj.init is not None:
                if existing.init is not None:
                    raise LinkError(
                        f"data symbol {name!r} initialized in both "
                        f"{first_module[name]!r} and {mod_name!r}"
                    )
                by_name[name] = obj
    return [(mod, by_name[name]) for mod, name in placement]


def _start_function(entry_symbol: str) -> Function:
    block = BasicBlock("entry")
    block.append(Instr(Op.CALL, target=entry_symbol))
    block.append(Instr(Op.HALT))
    return Function("_start", blocks=[block])


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def link(
    modules: Sequence[Module],
    order: Optional[Sequence[str]] = None,
    layout: Optional[LinkLayout] = None,
) -> Executable:
    """Link ``modules`` in ``order`` under ``layout``.

    ``order`` defaults to the given module sequence; when provided it must
    be a permutation of the module names.  Raises :class:`LinkError` on
    duplicate/unresolved symbols or conflicting data shapes.
    """
    layout = (layout or LinkLayout()).validated()
    names = [m.name for m in modules]
    if len(set(names)) != len(names):
        raise LinkError(f"duplicate module names: {names}")
    if order is None:
        order = list(names)
    else:
        order = list(order)
        if sorted(order) != sorted(names):
            raise LinkError(
                f"link order {order} is not a permutation of modules {names}"
            )
    for module in modules:
        validate_module(module)
    module_map = {m.name: m for m in modules}

    # ---- gather functions in placement order ----
    placement: List[Tuple[str, Function]] = [("<crt>", _start_function(layout.entry_symbol))]
    seen_funcs: Dict[str, str] = {"_start": "<crt>"}
    for mod_name in order:
        for func in module_map[mod_name].functions.values():
            if func.name in seen_funcs:
                raise LinkError(
                    f"function {func.name!r} defined in both "
                    f"{seen_funcs[func.name]!r} and {mod_name!r}"
                )
            seen_funcs[func.name] = mod_name
            placement.append((mod_name, func))

    exe = Executable()
    exe.text_start = layout.text_base
    cursor = layout.text_base

    #: (flat index, label->flat map, function name) for target resolution.
    label_maps: Dict[str, Dict[str, int]] = {}
    entry_index: Dict[str, int] = {}
    pending: List[Tuple[int, Instr]] = []  # instructions needing resolution

    for mod_name, func in placement:
        cursor = _align_up(cursor, layout.function_alignment)
        base = cursor
        flat_start = len(exe.ops)
        labels: Dict[str, int] = {}
        for block in func.blocks:
            if block.align > 1:
                target = _align_up(cursor - base, block.align) + base
                while cursor < target:
                    _append_instr(exe, Instr(Op.NOP), cursor)
                    cursor += 1
            labels[block.label] = len(exe.ops)
            for instr in block.instrs:
                placed = instr.copy()
                _append_instr(exe, placed, cursor)
                cursor += encoded_size(placed)
                if placed.target is not None:
                    pending.append((len(exe.ops) - 1, placed))
        flat_end = len(exe.ops)
        label_maps[func.name] = labels
        entry_index[func.name] = flat_start
        exe.placed.append(
            PlacedFunction(
                func.name, base, cursor - base, flat_start, flat_end, mod_name
            )
        )
        exe.symbols[func.name] = base
        exe.frame_sizes[flat_start] = func.frame_size
    exe.text_end = cursor

    # ---- place data ----
    data_cursor = layout.data_base
    for __, obj in _merge_data(modules, order):
        data_cursor = _align_up(data_cursor, obj.align)
        exe.data_addrs[obj.name] = data_cursor
        exe.data_kinds[obj.name] = obj.kind
        exe.data_counts[obj.name] = obj.count
        exe.symbols[obj.name] = data_cursor
        if obj.init is not None:
            stride = 8 if obj.kind == "words" else 1
            for i, value in enumerate(obj.init):
                exe.data_init[data_cursor + i * stride] = value
        data_cursor += obj.size_bytes
    exe.data_start = layout.data_base
    exe.data_end = data_cursor

    # ---- resolve targets and relocations ----
    index_func: Dict[int, str] = {}
    for pf in exe.placed:
        for i in range(pf.flat_start, pf.flat_end):
            index_func[i] = pf.name

    for idx, instr in pending:
        op = instr.op
        symbol = instr.target
        assert symbol is not None
        if op is Op.CALL:
            if symbol not in entry_index:
                raise LinkError(f"unresolved call target {symbol!r}")
            exe.targets[idx] = entry_index[symbol]
        elif op is Op.JMP or op is Op.BEQZ or op is Op.BNEZ:
            func_name = index_func[idx]
            labels = label_maps[func_name]
            if symbol not in labels:
                raise LinkError(
                    f"unresolved label {symbol!r} in function {func_name!r}"
                )
            exe.targets[idx] = labels[symbol]
        elif op is Op.CONST:
            if symbol not in exe.symbols:
                raise LinkError(f"unresolved data/function symbol {symbol!r}")
            instr_index = idx
            exe.imms[instr_index] = exe.symbols[symbol]
        else:  # pragma: no cover - codegen emits no other relocations
            raise LinkError(f"unexpected relocation on {op!r}")

    if layout.entry_symbol not in entry_index:
        raise LinkError(f"entry symbol {layout.entry_symbol!r} not defined")
    exe.entry = entry_index["_start"]
    return exe


def _append_instr(exe: Executable, instr: Instr, addr: int) -> None:
    exe.ops.append(int(instr.op))
    exe.rds.append(instr.rd)
    exe.ras.append(instr.ra)
    exe.rbs.append(instr.rb)
    exe.imms.append(instr.imm)
    exe.targets.append(-1)
    exe.addrs.append(addr)
    exe.sizes.append(encoded_size(instr))
    exe.addr_to_index[addr] = len(exe.ops) - 1


def link_orders(module_names: Iterable[str]) -> List[List[str]]:
    """All permutations of ``module_names`` — convenience for small sweeps."""
    import itertools

    return [list(p) for p in itertools.permutations(module_names)]


def function_ranges(
    exe: Executable,
) -> List[Tuple[int, int, PlacedFunction]]:
    """The executable's placed-function layout as validated, sorted
    ``(flat_start, flat_end, placed)`` ranges.

    This is the folding table for per-PC attribution (simulated-cycle
    flamegraphs, :func:`repro.analysis.profilediff.pc_profile_diff`'s
    function grouping): every flat instruction index must belong to
    exactly one placed function, so cycle totals folded through it are
    a *partition* of the run's cycles.  Raises :class:`LinkError` when
    placement records overlap or leave instructions uncovered —
    malformed layout must fail the fold, not silently misattribute.
    """
    ranges = sorted(
        ((pf.flat_start, pf.flat_end, pf) for pf in exe.placed),
        key=lambda r: r[0],
    )
    expected = 0
    for start, end, pf in ranges:
        if start != expected or end < start:
            raise LinkError(
                f"placed function {pf.name!r} covers [{start}, {end}); "
                f"expected coverage to resume at {expected}"
            )
        expected = end
    if expected != exe.num_instructions():
        raise LinkError(
            f"placed functions cover {expected} of "
            f"{exe.num_instructions()} instructions"
        )
    return ranges
