"""Recursive-descent parser for minic.

Grammar (EBNF; ``//`` and ``/* */`` comments allowed anywhere):

.. code-block:: text

    unit       := (global | func)*
    global     := ("int" | "byte") NAME array? ("=" init)? ";"
    array      := "[" NUM "]"
    init       := NUM | "{" NUM ("," NUM)* "}"
    func       := "func" NAME "(" (NAME ("," NAME)*)? ")" block
    block      := "{" stmt* "}"
    stmt       := "var" NAME array? ";"
                | NAME "=" expr ";"
                | NAME "[" expr "]" "=" expr ";"
                | "if" "(" expr ")" block ("else" (block | if_stmt))?
                | "while" "(" expr ")" block
                | "for" "(" NAME "=" expr ";" expr ";"
                           NAME "=" expr ")" block
                | "return" expr? ";"
                | "break" ";" | "continue" ";"
                | expr ";"
    expr       := binary expression over || && | ^ & == != < <= > >=
                  << >> + - * / % with C precedence;
                  unary - ! ~ ; primary := NUM | NAME | NAME "(" args ")"
                | NAME "[" expr "]" | "&" NAME | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional

from repro.toolchain import ast
from repro.toolchain.errors import CompileError
from repro.toolchain.lexer import Token, token_value, tokenize

#: Binary operator precedence levels, loosest first.
_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    """Single-use parser over a token list."""

    def __init__(self, tokens: List[Token], filename: Optional[str] = None) -> None:
        self._tokens = tokens
        self._pos = 0
        self._filename = filename

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise CompileError("unexpected end of input", filename=self._filename)
        self._pos += 1
        return tok

    def _error(self, message: str, tok: Optional[Token] = None) -> CompileError:
        if tok is None:
            tok = self._peek()
        if tok is None:
            return CompileError(message, filename=self._filename)
        return CompileError(message, tok.line, tok.col, self._filename)

    def _expect_op(self, text: str) -> Token:
        tok = self._next()
        if tok.kind != "op" or tok.text != text:
            raise self._error(f"expected {text!r}, got {tok.text!r}", tok)
        return tok

    def _expect_kw(self, text: str) -> Token:
        tok = self._next()
        if tok.kind != "kw" or tok.text != text:
            raise self._error(f"expected {text!r}, got {tok.text!r}", tok)
        return tok

    def _expect_name(self) -> Token:
        tok = self._next()
        if tok.kind != "name":
            raise self._error(f"expected identifier, got {tok.text!r}", tok)
        return tok

    def _expect_num(self) -> int:
        tok = self._next()
        if tok.kind != "num":
            raise self._error(f"expected number, got {tok.text!r}", tok)
        return token_value(tok)

    def _at_op(self, text: str) -> bool:
        tok = self._peek()
        return tok is not None and tok.kind == "op" and tok.text == text

    def _at_kw(self, text: str) -> bool:
        tok = self._peek()
        return tok is not None and tok.kind == "kw" and tok.text == text

    def _accept_op(self, text: str) -> bool:
        if self._at_op(text):
            self._pos += 1
            return True
        return False

    # -- grammar ----------------------------------------------------------

    def parse_unit(self, name: str) -> ast.SourceUnit:
        """Parse a whole translation unit."""
        unit = ast.SourceUnit(name=name, line=1)
        while self._peek() is not None:
            if self._at_kw("int") or self._at_kw("byte"):
                unit.globals.append(self._global_decl())
            elif self._at_kw("func"):
                unit.funcs.append(self._func_decl())
            else:
                raise self._error("expected 'int', 'byte' or 'func' at top level")
        return unit

    def _global_decl(self) -> ast.GlobalDecl:
        kw = self._next()
        kind = "words" if kw.text == "int" else "bytes"
        name_tok = self._expect_name()
        count = 1
        is_array = False
        if self._accept_op("["):
            count = self._expect_num()
            self._expect_op("]")
            is_array = True
        if kind == "bytes" and not is_array:
            raise self._error("byte globals must be arrays", name_tok)
        init: Optional[List[int]] = None
        if self._accept_op("="):
            if self._accept_op("{"):
                init = []
                if not self._at_op("}"):
                    init.append(self._signed_num())
                    while self._accept_op(","):
                        init.append(self._signed_num())
                self._expect_op("}")
            else:
                init = [self._signed_num()]
        self._expect_op(";")
        return ast.GlobalDecl(
            line=kw.line,
            name=name_tok.text,
            kind=kind,
            count=count,
            is_array=is_array,
            init=init,
        )

    def _signed_num(self) -> int:
        if self._accept_op("-"):
            return -self._expect_num()
        return self._expect_num()

    def _func_decl(self) -> ast.FuncDecl:
        kw = self._expect_kw("func")
        name_tok = self._expect_name()
        self._expect_op("(")
        params: List[str] = []
        if not self._at_op(")"):
            params.append(self._expect_name().text)
            while self._accept_op(","):
                params.append(self._expect_name().text)
        self._expect_op(")")
        body = self._block()
        return ast.FuncDecl(
            line=kw.line, name=name_tok.text, params=params, body=body
        )

    def _block(self) -> ast.Block:
        open_tok = self._expect_op("{")
        stmts: List[ast.Stmt] = []
        while not self._at_op("}"):
            if self._peek() is None:
                raise self._error("unterminated block", open_tok)
            stmts.append(self._stmt())
        self._expect_op("}")
        return ast.Block(line=open_tok.line, stmts=stmts)

    def _stmt(self) -> ast.Stmt:
        if self._at_kw("var"):
            return self._var_decl()
        if self._at_kw("if"):
            return self._if_stmt()
        if self._at_kw("while"):
            return self._while_stmt()
        if self._at_kw("for"):
            return self._for_stmt()
        if self._at_kw("return"):
            kw = self._next()
            value = None if self._at_op(";") else self._expr()
            self._expect_op(";")
            return ast.Return(line=kw.line, value=value)
        if self._at_kw("break"):
            kw = self._next()
            self._expect_op(";")
            return ast.Break(line=kw.line)
        if self._at_kw("continue"):
            kw = self._next()
            self._expect_op(";")
            return ast.Continue(line=kw.line)
        return self._assign_or_expr_stmt()

    def _var_decl(self) -> ast.VarDecl:
        kw = self._expect_kw("var")
        name_tok = self._expect_name()
        count = 1
        is_array = False
        if self._accept_op("["):
            count = self._expect_num()
            self._expect_op("]")
            is_array = True
            if count <= 0:
                raise self._error("local array must have positive size", name_tok)
        self._expect_op(";")
        return ast.VarDecl(
            line=kw.line, name=name_tok.text, count=count, is_array=is_array
        )

    def _if_stmt(self) -> ast.If:
        kw = self._expect_kw("if")
        self._expect_op("(")
        cond = self._expr()
        self._expect_op(")")
        then = self._block()
        els: Optional[ast.Block] = None
        if self._at_kw("else"):
            self._next()
            if self._at_kw("if"):
                nested = self._if_stmt()
                els = ast.Block(line=nested.line, stmts=[nested])
            else:
                els = self._block()
        return ast.If(line=kw.line, cond=cond, then=then, els=els)

    def _while_stmt(self) -> ast.While:
        kw = self._expect_kw("while")
        self._expect_op("(")
        cond = self._expr()
        self._expect_op(")")
        body = self._block()
        return ast.While(line=kw.line, cond=cond, body=body)

    def _for_stmt(self) -> ast.For:
        kw = self._expect_kw("for")
        self._expect_op("(")
        var_tok = self._expect_name()
        self._expect_op("=")
        init = self._expr()
        self._expect_op(";")
        cond = self._expr()
        self._expect_op(";")
        update_var = self._expect_name()
        if update_var.text != var_tok.text:
            raise self._error(
                f"for-loop update must assign {var_tok.text!r}", update_var
            )
        self._expect_op("=")
        update = self._expr()
        self._expect_op(")")
        body = self._block()
        return ast.For(
            line=kw.line,
            var=var_tok.text,
            init=init,
            cond=cond,
            update=update,
            body=body,
        )

    def _assign_or_expr_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok is not None and tok.kind == "name":
            nxt = (
                self._tokens[self._pos + 1]
                if self._pos + 1 < len(self._tokens)
                else None
            )
            if nxt is not None and nxt.kind == "op" and nxt.text == "=":
                name = self._next().text
                self._next()  # '='
                value = self._expr()
                self._expect_op(";")
                return ast.Assign(line=tok.line, name=name, value=value)
            if nxt is not None and nxt.kind == "op" and nxt.text == "[":
                # Could be a store (``a[i] = v;``) or an indexed read in an
                # expression statement; decide by scanning to the matching
                # bracket.
                save = self._pos
                name = self._next().text
                self._next()  # '['
                index = self._expr()
                self._expect_op("]")
                if self._accept_op("="):
                    value = self._expr()
                    self._expect_op(";")
                    return ast.StoreStmt(
                        line=tok.line, name=name, index=index, value=value
                    )
                self._pos = save
        expr = self._expr()
        self._expect_op(";")
        return ast.ExprStmt(line=expr.line, expr=expr)

    # -- expressions -------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._unary()
        ops = _PRECEDENCE[level]
        lhs = self._binary(level + 1)
        while True:
            tok = self._peek()
            if tok is None or tok.kind != "op" or tok.text not in ops:
                return lhs
            self._next()
            rhs = self._binary(level + 1)
            lhs = ast.BinOp(line=tok.line, op=tok.text, lhs=lhs, rhs=rhs)

    def _unary(self) -> ast.Expr:
        tok = self._peek()
        if tok is not None and tok.kind == "op" and tok.text in ("-", "!", "~"):
            self._next()
            operand = self._unary()
            return ast.UnOp(line=tok.line, op=tok.text, operand=operand)
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self._next()
        if tok.kind == "num":
            return ast.Num(line=tok.line, value=token_value(tok))
        if tok.kind == "op" and tok.text == "(":
            inner = self._expr()
            self._expect_op(")")
            return inner
        if tok.kind == "op" and tok.text == "&":
            name_tok = self._expect_name()
            return ast.AddrOf(line=tok.line, name=name_tok.text)
        if tok.kind == "name":
            if self._at_op("("):
                self._next()
                args: List[ast.Expr] = []
                if not self._at_op(")"):
                    args.append(self._expr())
                    while self._accept_op(","):
                        args.append(self._expr())
                self._expect_op(")")
                return ast.Call(line=tok.line, name=tok.text, args=args)
            if self._at_op("["):
                self._next()
                index = self._expr()
                self._expect_op("]")
                return ast.Index(line=tok.line, name=tok.text, index=index)
            return ast.Var(line=tok.line, name=tok.text)
        raise self._error(f"unexpected token {tok.text!r}", tok)


def parse_source(
    source: str, name: str = "<unit>", filename: Optional[str] = None
) -> ast.SourceUnit:
    """Parse minic ``source`` into a :class:`~repro.toolchain.ast.SourceUnit`."""
    tokens = tokenize(source, filename)
    parser = Parser(tokens, filename)
    return parser.parse_unit(name)
