"""minic pretty-printer.

Renders an AST back to canonical minic source.  Round-tripping
(``parse(print(parse(src)))`` equals ``parse(src)`` structurally) is a
property the test suite enforces, which pins the parser and printer
against each other; the printer is also the debugging tool for AST-level
transforms (print a unit after inlining/unrolling to see what the
optimizer actually did).
"""

from __future__ import annotations

from typing import List

from repro.toolchain import ast

#: Binary operators by precedence level, loosest first (mirrors the
#: parser's table; used to parenthesize minimally).
_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_PRECEDENCE = {op: level for level, ops in enumerate(_LEVELS) for op in ops}
_UNARY_LEVEL = len(_LEVELS)


def format_expr(expr: ast.Expr, parent_level: int = -1) -> str:
    """Render one expression with minimal parentheses."""
    if isinstance(expr, ast.Num):
        return str(expr.value) if expr.value >= 0 else f"(0 - {-expr.value})"
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.AddrOf):
        return f"&{expr.name}"
    if isinstance(expr, ast.Index):
        return f"{expr.name}[{format_expr(expr.index)}]"
    if isinstance(expr, ast.Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.UnOp):
        if expr.op == "-":
            # minic has no negative literals; canonicalize unary minus to
            # the subtraction it denotes, at subtraction's precedence (so
            # printing is a fixpoint: `-1` -> `0 - 1` -> `0 - 1`).
            level = _PRECEDENCE["-"]
            text = f"0 - {format_expr(expr.operand, level + 1)}"
            return f"({text})" if level < parent_level else text
        inner = format_expr(expr.operand, _UNARY_LEVEL)
        return f"{expr.op}{inner}"
    if isinstance(expr, ast.BinOp):
        level = _PRECEDENCE[expr.op]
        lhs = format_expr(expr.lhs, level)
        # Right operand needs parens at equal precedence (left-assoc).
        rhs = format_expr(expr.rhs, level + 1)
        text = f"{lhs} {expr.op} {rhs}"
        if level < parent_level:
            return f"({text})"
        return text
    raise TypeError(f"cannot format {expr!r}")


class _Printer:
    def __init__(self, indent: str = "    ") -> None:
        self._indent = indent
        self._lines: List[str] = []
        self._depth = 0

    def line(self, text: str) -> None:
        self._lines.append(self._indent * self._depth + text)

    def block(self, body: ast.Block) -> None:
        self._depth += 1
        for stmt in body.stmts:
            self.stmt(stmt)
        self._depth -= 1

    def stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            suffix = f"[{stmt.count}]" if stmt.is_array else ""
            self.line(f"var {stmt.name}{suffix};")
        elif isinstance(stmt, ast.Assign):
            self.line(f"{stmt.name} = {format_expr(stmt.value)};")
        elif isinstance(stmt, ast.StoreStmt):
            self.line(
                f"{stmt.name}[{format_expr(stmt.index)}] = "
                f"{format_expr(stmt.value)};"
            )
        elif isinstance(stmt, ast.If):
            self.line(f"if ({format_expr(stmt.cond)}) {{")
            self.block(stmt.then)
            if stmt.els is not None:
                self.line("} else {")
                self.block(stmt.els)
            self.line("}")
        elif isinstance(stmt, ast.While):
            self.line(f"while ({format_expr(stmt.cond)}) {{")
            self.block(stmt.body)
            self.line("}")
        elif isinstance(stmt, ast.For):
            self.line(
                f"for ({stmt.var} = {format_expr(stmt.init)}; "
                f"{format_expr(stmt.cond)}; "
                f"{stmt.var} = {format_expr(stmt.update)}) {{"
            )
            self.block(stmt.body)
            self.line("}")
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.line("return;")
            else:
                self.line(f"return {format_expr(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self.line("break;")
        elif isinstance(stmt, ast.Continue):
            self.line("continue;")
        elif isinstance(stmt, ast.ExprStmt):
            self.line(f"{format_expr(stmt.expr)};")
        else:
            raise TypeError(f"cannot format {stmt!r}")

    def text(self) -> str:
        return "\n".join(self._lines)


def format_unit(unit: ast.SourceUnit) -> str:
    """Render a whole translation unit as canonical minic source."""
    printer = _Printer()
    for decl in unit.globals:
        kw = "int" if decl.kind == "words" else "byte"
        suffix = f"[{decl.count}]" if decl.is_array else ""
        init = ""
        if decl.init is not None:
            if decl.is_array:
                init = " = {" + ", ".join(str(v) for v in decl.init) + "}"
            else:
                init = f" = {decl.init[0]}"
        printer.line(f"{kw} {decl.name}{suffix}{init};")
    for func in unit.funcs:
        params = ", ".join(func.params)
        printer.line("")
        printer.line(f"func {func.name}({params}) {{")
        printer.block(func.body)
        printer.line("}")
    return printer.text() + "\n"
