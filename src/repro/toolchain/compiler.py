"""The compiler driver: minic source -> optimized :class:`Module`.

Pipeline per translation unit (separate compilation — a unit never sees
another unit's functions, so cross-module inlining is impossible, as with
the paper's toolchains):

1. parse,
2. AST transforms: inlining, loop unrolling (levels/profile permitting),
3. semantic analysis,
4. code generation (register promotion / global-base caching levels),
5. machine passes: CFG cleanup, peephole, local value numbering,
   dead-code elimination (O1+); list scheduling and hot-loop alignment
   per profile,
6. validation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.isa.program import Module
from repro.isa.validate import validate_module
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.toolchain.codegen import generate_module
from repro.toolchain.errors import CompileError
from repro.toolchain.opt import (
    align_hot_loops,
    eliminate_dead_code,
    inline_calls,
    local_value_number,
    peephole_optimize,
    schedule_blocks,
    simplify_cfg,
    unroll_loops,
)
from repro.toolchain.parser import parse_source
from repro.toolchain.profiles import CompilerProfile, get_profile
from repro.toolchain.sema import analyze_unit

ProfileLike = Union[str, CompilerProfile]


def _resolve_profile(profile: ProfileLike) -> CompilerProfile:
    if isinstance(profile, CompilerProfile):
        profile.validate()
        return profile
    return get_profile(profile)


def compile_unit(
    source: str,
    name: str,
    opt_level: int = 2,
    profile: ProfileLike = "gcc",
) -> Module:
    """Compile one translation unit.

    ``opt_level`` is 0-3 (the paper's central comparison is O2 vs O3);
    ``profile`` selects the vendor heuristics ("gcc" or "icc", or a custom
    :class:`CompilerProfile`).
    """
    if opt_level not in (0, 1, 2, 3):
        raise CompileError(f"unsupported optimization level O{opt_level}")
    prof = _resolve_profile(profile)
    obs_metrics.counter("toolchain.units_compiled").inc()

    with obs_trace.span(
        "unit", category="toolchain", unit=name, opt=opt_level,
        profile=prof.name,
    ) as unit_span:
        with obs_trace.span("parse", category="toolchain"):
            unit = parse_source(source, name, filename=name)
        with obs_trace.span("opt", category="toolchain"):
            inline_calls(unit, prof.inline_threshold[opt_level])
            unroll_loops(unit, prof.unroll_factor[opt_level])
        with obs_trace.span("sema", category="toolchain"):
            info = analyze_unit(unit)
        with obs_trace.span("codegen", category="toolchain"):
            module = generate_module(info, opt_level, prof)

            if opt_level >= 1:
                for func in module.functions.values():
                    simplify_cfg(func)
                    peephole_optimize(func)
                    local_value_number(func)
                    eliminate_dead_code(func)
                    peephole_optimize(func)
                    eliminate_dead_code(func)
                    simplify_cfg(func)
            if prof.schedule[opt_level]:
                for func in module.functions.values():
                    schedule_blocks(func)
            if prof.loop_alignment[opt_level] > 1:
                for func in module.functions.values():
                    align_hot_loops(func, prof.loop_alignment[opt_level])
        validate_module(module)
        unit_span.set(
            instructions=module.num_instructions(), bytes=module.size_bytes()
        )
    return module


def compile_program(
    sources: Mapping[str, str],
    opt_level: int = 2,
    profile: ProfileLike = "gcc",
) -> List[Module]:
    """Compile a multi-module program (name -> source), preserving order."""
    return [
        compile_unit(src, name, opt_level=opt_level, profile=profile)
        for name, src in sources.items()
    ]


def compilation_report(
    sources: Mapping[str, str], profile: ProfileLike = "gcc"
) -> Dict[str, Dict[int, Tuple[int, int]]]:
    """(instructions, bytes) per module per opt level — toolchain QA tool."""
    report: Dict[str, Dict[int, Tuple[int, int]]] = {}
    for name, src in sources.items():
        per_level: Dict[int, Tuple[int, int]] = {}
        for level in (0, 1, 2, 3):
            module = compile_unit(src, name, opt_level=level, profile=profile)
            per_level[level] = (module.num_instructions(), module.size_bytes())
        report[name] = per_level
    return report


def check_sources_order(sources: Mapping[str, str], order: Sequence[str]) -> None:
    """Validate that ``order`` names exactly the modules of ``sources``."""
    if sorted(order) != sorted(sources):
        raise CompileError(
            f"link order {list(order)} does not match modules {sorted(sources)}"
        )
