"""Code generation: minic AST -> :class:`~repro.isa.program.Module`.

Register conventions (see :mod:`repro.isa.instructions`):

- ``r0`` — return value,
- ``r1`` .. ``r6`` — arguments and expression temporaries (caller-saved),
- ``r7`` .. ``r12`` — promoted locals and cached global base addresses
  (callee-saved: saved/restored by the using function),
- ``r13`` — address-computation scratch, never live across instructions,
- ``r14`` — frame pointer, ``r15`` — stack pointer.

Stack frame (all offsets relative to ``fp``; caller's ``fp`` saved at
``[fp+0]``, return address pushed by ``CALL`` just above it):

.. code-block:: text

    [fp -  8 ..]   callee-saved register save area
    [..       ]    non-promoted scalar locals and parameters
    [..       ]    local arrays
    [..       ]    temporary-register home slots (spills across calls)
    [..       ]    per-call-site argument build areas (one per nesting depth)

The generator is deliberately naive at ``-O0`` (every constant
materialized, every local in memory); optimization levels recover
performance through the pass pipeline and through the promotion/caching
decisions made here.  Block order emitted here is *layout order*; no later
pass may reorder blocks (fall-through is implicit in the flat executable).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Instr, Op, REG_FP, REG_SP
from repro.isa.program import BasicBlock, Function, Module
from repro.toolchain import ast
from repro.toolchain.errors import CompileError
from repro.toolchain.profiles import CompilerProfile
from repro.toolchain.sema import FuncInfo, UnitInfo

SCRATCH = 13
RETVAL = 0
FIRST_TEMP = 1
LAST_TEMP = 6
FIRST_SAVED = 7
LAST_SAVED = 12

_BIN_TO_OP = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "%": Op.MOD,
    "&": Op.AND,
    "|": Op.OR,
    "^": Op.XOR,
    "<<": Op.SHL,
    ">>": Op.SHR,
}

#: comparison operator -> (opcode, swap operands?)
_CMP_TO_OP = {
    "<": (Op.SLT, False),
    "<=": (Op.SLE, False),
    ">": (Op.SLT, True),
    ">=": (Op.SLE, True),
    "==": (Op.SEQ, False),
    "!=": (Op.SNE, False),
}


class FunctionCodegen:
    """Generates one :class:`Function` from one :class:`ast.FuncDecl`."""

    def __init__(
        self,
        decl: ast.FuncDecl,
        fi: FuncInfo,
        unit_info: UnitInfo,
        opt_level: int,
        profile: CompilerProfile,
    ) -> None:
        self._decl = decl
        self._fi = fi
        self._unit_info = unit_info
        self._level = opt_level
        self._profile = profile

        self._blocks: List[BasicBlock] = []
        self._cur: Optional[BasicBlock] = None
        self._label_counter = 0
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break)

        self._free_temps = list(range(FIRST_TEMP, LAST_TEMP + 1))
        self._allocated: List[int] = []

        self._promoted: Dict[str, int] = {}  # scalar name -> register
        self._cached_bases: Dict[str, int] = {}  # global name -> register
        self._slots: Dict[str, int] = {}  # var name -> fp-relative offset
        self._temp_homes: Dict[int, int] = {}
        self._arg_areas: Dict[int, int] = {}  # nesting depth -> offset
        self._call_depth = 0
        self._frame_bytes = 0

    # -- frame and promotion setup ------------------------------------------

    def _addr_taken_names(self) -> Set[str]:
        names: Set[str] = set()
        for stmt in ast.walk_stmts(self._decl.body):
            for top in ast.stmt_exprs(stmt):
                for expr in ast.walk_exprs(top):
                    if isinstance(expr, ast.AddrOf):
                        names.add(expr.name)
        return names

    def _plan_registers(self) -> None:
        addr_taken = self._addr_taken_names()
        next_reg = FIRST_SAVED
        budget_promote = self._profile.promote_registers[self._level]
        candidates = [
            (count, name)
            for name, count in self._fi.scalar_use_counts.items()
            if (vi := self._fi.vars.get(name)) is not None
            and vi.kind in ("param", "local")
            and not vi.is_array
            and name not in addr_taken
        ]
        candidates.sort(key=lambda item: (-item[0], item[1]))
        for __, name in candidates[:budget_promote]:
            if next_reg > LAST_SAVED:
                break
            self._promoted[name] = next_reg
            next_reg += 1
        budget_cache = self._profile.cache_global_bases[self._level]
        base_candidates = sorted(
            self._fi.global_base_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for name, __ in base_candidates[:budget_cache]:
            if next_reg > LAST_SAVED:
                break
            self._cached_bases[name] = next_reg
            next_reg += 1

    def _alloc_slot(self, size: int) -> int:
        """Reserve ``size`` frame bytes; returns the fp-relative offset."""
        self._frame_bytes += size
        return self._frame_bytes

    def _plan_frame(self) -> List[int]:
        """Lay out the fixed part of the frame; returns used saved regs."""
        used_saved = sorted(
            set(self._promoted.values()) | set(self._cached_bases.values())
        )
        for reg in used_saved:
            self._slots[f"__save_r{reg}"] = self._alloc_slot(8)
        for name in self._fi.params:
            if name not in self._promoted:
                self._slots[name] = self._alloc_slot(8)
        for name, vi in self._fi.vars.items():
            if vi.kind != "local":
                continue
            if vi.is_array:
                self._slots[name] = self._alloc_slot(8 * vi.count)
            elif name not in self._promoted:
                self._slots[name] = self._alloc_slot(8)
        for reg in range(FIRST_TEMP, LAST_TEMP + 1):
            self._temp_homes[reg] = self._alloc_slot(8)
        return used_saved

    def _arg_area(self, depth: int) -> int:
        if depth not in self._arg_areas:
            self._arg_areas[depth] = self._alloc_slot(8 * 6)
        return self._arg_areas[depth]

    # -- block plumbing ------------------------------------------------------

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"L{self._label_counter}{hint}"

    def _start_block(self, label: str, align: int = 1) -> None:
        self._cur = BasicBlock(label, align=align)
        self._blocks.append(self._cur)

    def _emit(self, instr: Instr) -> None:
        assert self._cur is not None
        self._cur.append(instr)

    # -- temporary registers ------------------------------------------------

    def _alloc_temp(self, line: int = 0) -> int:
        if not self._free_temps:
            raise CompileError(
                f"{self._fi.name}: expression too deep (more than "
                f"{LAST_TEMP - FIRST_TEMP + 1} live temporaries)",
                line,
            )
        reg = self._free_temps.pop(0)
        self._allocated.append(reg)
        return reg

    def _free_temp(self, reg: int) -> None:
        self._allocated.remove(reg)
        self._free_temps.append(reg)
        self._free_temps.sort()

    # -- entry point ---------------------------------------------------------

    def generate(self) -> Function:
        self._plan_registers()
        used_saved = self._plan_frame()

        first_body_label = self._new_label("body")
        self._start_block(first_body_label)
        self._gen_block(self._decl.body)
        # Implicit ``return 0`` in case control falls off the end.
        if self._cur is not None and self._cur.terminator() is None:
            self._emit(Instr(Op.CONST, rd=RETVAL, imm=0))
            self._gen_epilogue(used_saved)

        frame_size = (self._frame_bytes + 7) & ~7
        prologue = BasicBlock("entry")
        prologue.append(Instr(Op.ADDI, rd=REG_SP, ra=REG_SP, imm=-8))
        prologue.append(Instr(Op.STORE, ra=REG_SP, imm=0, rb=REG_FP))
        prologue.append(Instr(Op.MOV, rd=REG_FP, ra=REG_SP))
        if frame_size:
            prologue.append(Instr(Op.ADDI, rd=REG_SP, ra=REG_SP, imm=-frame_size))
        for reg in used_saved:
            prologue.append(
                Instr(
                    Op.STORE,
                    ra=REG_FP,
                    imm=-self._slots[f"__save_r{reg}"],
                    rb=reg,
                )
            )
        for name, reg in sorted(self._cached_bases.items(), key=lambda kv: kv[1]):
            prologue.append(Instr(Op.CONST, rd=reg, imm=0, target=name))
        for idx, name in enumerate(self._fi.params):
            src = FIRST_TEMP + idx
            if name in self._promoted:
                prologue.append(Instr(Op.MOV, rd=self._promoted[name], ra=src))
            else:
                prologue.append(
                    Instr(Op.STORE, ra=REG_FP, imm=-self._slots[name], rb=src)
                )
        self._blocks.insert(0, prologue)

        func = Function(
            self._decl.name,
            num_params=len(self._fi.params),
            blocks=self._blocks,
            frame_size=frame_size,
        )
        self._epilogue_saved = used_saved
        return func

    def _gen_epilogue(self, used_saved: Optional[List[int]] = None) -> None:
        if used_saved is None:
            used_saved = sorted(
                set(self._promoted.values()) | set(self._cached_bases.values())
            )
        for reg in used_saved:
            self._emit(
                Instr(Op.LOAD, rd=reg, ra=REG_FP, imm=-self._slots[f"__save_r{reg}"])
            )
        self._emit(Instr(Op.MOV, rd=REG_SP, ra=REG_FP))
        self._emit(Instr(Op.LOAD, rd=REG_FP, ra=REG_SP, imm=0))
        self._emit(Instr(Op.ADDI, rd=REG_SP, ra=REG_SP, imm=8))
        self._emit(Instr(Op.RET))
        self._cur = None

    # -- statements ----------------------------------------------------------

    def _gen_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            if self._cur is None:
                # Unreachable code after return/break/continue; a fresh
                # block keeps generation simple and DCE removes it later.
                self._start_block(self._new_label("dead"))
            self._gen_stmt(stmt)

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            return  # slots preassigned
        if isinstance(stmt, ast.Assign):
            reg = self._gen_expr(stmt.value)
            self._store_scalar(stmt.name, reg)
            self._free_temp(reg)
            return
        if isinstance(stmt, ast.StoreStmt):
            self._gen_array_store(stmt)
            return
        if isinstance(stmt, ast.If):
            self._gen_if(stmt)
            return
        if isinstance(stmt, ast.While):
            self._gen_while(stmt)
            return
        if isinstance(stmt, ast.For):
            self._gen_for(stmt)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self._gen_expr(stmt.value)
                self._emit(Instr(Op.MOV, rd=RETVAL, ra=reg))
                self._free_temp(reg)
            else:
                self._emit(Instr(Op.CONST, rd=RETVAL, imm=0))
            self._gen_epilogue()
            return
        if isinstance(stmt, ast.Break):
            self._emit(Instr(Op.JMP, target=self._loop_stack[-1][1]))
            self._cur = None
            return
        if isinstance(stmt, ast.Continue):
            self._emit(Instr(Op.JMP, target=self._loop_stack[-1][0]))
            self._cur = None
            return
        if isinstance(stmt, ast.ExprStmt):
            reg = self._gen_expr(stmt.expr)
            self._free_temp(reg)
            return
        raise CompileError(f"{self._fi.name}: cannot generate {stmt!r}", stmt.line)

    def _gen_if(self, stmt: ast.If) -> None:
        label_id = self._new_label("")
        else_label = f"{label_id}else"
        end_label = f"{label_id}endif"
        target = else_label if stmt.els is not None else end_label
        self._branch_if_false(stmt.cond, target)
        self._gen_block(stmt.then)
        if stmt.els is not None:
            if self._cur is not None:
                self._emit(Instr(Op.JMP, target=end_label))
            self._start_block(else_label)
            self._gen_block(stmt.els)
        self._start_block(end_label)

    def _gen_while(self, stmt: ast.While) -> None:
        label_id = self._new_label("")
        head = f"{label_id}head"
        exit_label = f"{label_id}exit"
        self._emit(Instr(Op.JMP, target=head))
        self._start_block(head)
        self._branch_if_false(stmt.cond, exit_label)
        self._loop_stack.append((head, exit_label))
        self._gen_block(stmt.body)
        self._loop_stack.pop()
        if self._cur is not None:
            self._emit(Instr(Op.JMP, target=head))
        self._start_block(exit_label)

    def _gen_for(self, stmt: ast.For) -> None:
        reg = self._gen_expr(stmt.init)
        self._store_scalar(stmt.var, reg)
        self._free_temp(reg)
        label_id = self._new_label("")
        head = f"{label_id}head"
        cont = f"{label_id}cont"
        exit_label = f"{label_id}exit"
        self._emit(Instr(Op.JMP, target=head))
        self._start_block(head)
        self._branch_if_false(stmt.cond, exit_label)
        self._loop_stack.append((cont, exit_label))
        self._gen_block(stmt.body)
        self._loop_stack.pop()
        if self._cur is not None:
            self._emit(Instr(Op.JMP, target=cont))
        self._start_block(cont)
        reg = self._gen_expr(stmt.update)
        self._store_scalar(stmt.var, reg)
        self._free_temp(reg)
        self._emit(Instr(Op.JMP, target=head))
        self._start_block(exit_label)

    # -- scalar and array access ----------------------------------------------

    def _store_scalar(self, name: str, reg: int) -> None:
        vi = self._fi.vars[name]
        if name in self._promoted:
            self._emit(Instr(Op.MOV, rd=self._promoted[name], ra=reg))
        elif vi.kind == "global":
            if name in self._cached_bases:
                self._emit(
                    Instr(Op.STORE, ra=self._cached_bases[name], imm=0, rb=reg)
                )
            else:
                self._emit(Instr(Op.CONST, rd=SCRATCH, imm=0, target=name))
                self._emit(Instr(Op.STORE, ra=SCRATCH, imm=0, rb=reg))
        else:
            self._emit(Instr(Op.STORE, ra=REG_FP, imm=-self._slots[name], rb=reg))

    def _load_scalar(self, name: str, line: int) -> int:
        vi = self._fi.vars[name]
        if name in self._promoted:
            reg = self._alloc_temp(line)
            self._emit(Instr(Op.MOV, rd=reg, ra=self._promoted[name]))
            return reg
        reg = self._alloc_temp(line)
        if vi.kind == "global":
            if name in self._cached_bases:
                self._emit(
                    Instr(Op.LOAD, rd=reg, ra=self._cached_bases[name], imm=0)
                )
            else:
                self._emit(Instr(Op.CONST, rd=SCRATCH, imm=0, target=name))
                self._emit(Instr(Op.LOAD, rd=reg, ra=SCRATCH, imm=0))
        else:
            self._emit(Instr(Op.LOAD, rd=reg, ra=REG_FP, imm=-self._slots[name]))
        return reg

    def _element_address(self, name: str, index_reg: int, line: int) -> None:
        """Compute &name[index] into SCRATCH, consuming ``index_reg``'s value.

        ``index_reg`` is scaled in place (callers must free it afterwards).
        """
        vi = self._fi.vars[name]
        if vi.elem_kind == "words":
            self._emit(Instr(Op.SHLI, rd=index_reg, ra=index_reg, imm=3))
        if vi.kind == "global":
            if name in self._cached_bases:
                self._emit(
                    Instr(
                        Op.ADD, rd=SCRATCH, ra=self._cached_bases[name], rb=index_reg
                    )
                )
            else:
                self._emit(Instr(Op.CONST, rd=SCRATCH, imm=0, target=name))
                self._emit(Instr(Op.ADD, rd=SCRATCH, ra=SCRATCH, rb=index_reg))
        else:
            self._emit(
                Instr(Op.ADDI, rd=SCRATCH, ra=REG_FP, imm=-self._slots[name])
            )
            self._emit(Instr(Op.ADD, rd=SCRATCH, ra=SCRATCH, rb=index_reg))

    def _gen_array_store(self, stmt: ast.StoreStmt) -> None:
        value = self._gen_expr(stmt.value)
        index = self._gen_expr(stmt.index)
        self._element_address(stmt.name, index, stmt.line)
        vi = self._fi.vars[stmt.name]
        op = Op.STORE if vi.elem_kind == "words" else Op.STOREB
        self._emit(Instr(op, ra=SCRATCH, imm=0, rb=value))
        self._free_temp(index)
        self._free_temp(value)

    # -- expressions -----------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr) -> int:
        """Generate code leaving the value in a fresh temp; returns the reg."""
        if isinstance(expr, ast.Num):
            reg = self._alloc_temp(expr.line)
            self._emit(Instr(Op.CONST, rd=reg, imm=expr.value))
            return reg
        if isinstance(expr, ast.Var):
            return self._load_scalar(expr.name, expr.line)
        if isinstance(expr, ast.AddrOf):
            return self._gen_addr_of(expr)
        if isinstance(expr, ast.Index):
            index = self._gen_expr(expr.index)
            self._element_address(expr.name, index, expr.line)
            vi = self._fi.vars[expr.name]
            op = Op.LOAD if vi.elem_kind == "words" else Op.LOADB
            self._emit(Instr(op, rd=index, ra=SCRATCH, imm=0))
            return index
        if isinstance(expr, ast.UnOp):
            return self._gen_unop(expr)
        if isinstance(expr, ast.BinOp):
            return self._gen_binop(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr)
        raise CompileError(f"{self._fi.name}: cannot evaluate {expr!r}", expr.line)

    def _gen_addr_of(self, expr: ast.AddrOf) -> int:
        vi = self._fi.vars[expr.name]
        reg = self._alloc_temp(expr.line)
        if vi.kind == "global":
            self._emit(Instr(Op.CONST, rd=reg, imm=0, target=expr.name))
        else:
            if expr.name not in self._slots:
                raise CompileError(
                    f"{self._fi.name}: cannot take address of register-resident "
                    f"{expr.name!r}",
                    expr.line,
                )
            self._emit(
                Instr(Op.ADDI, rd=reg, ra=REG_FP, imm=-self._slots[expr.name])
            )
        return reg

    def _gen_unop(self, expr: ast.UnOp) -> int:
        if expr.op == "-":
            operand = self._gen_expr(expr.operand)
            zero = self._alloc_temp(expr.line)
            self._emit(Instr(Op.CONST, rd=zero, imm=0))
            self._emit(Instr(Op.SUB, rd=operand, ra=zero, rb=operand))
            self._free_temp(zero)
            return operand
        if expr.op == "~":
            operand = self._gen_expr(expr.operand)
            self._emit(Instr(Op.XORI, rd=operand, ra=operand, imm=-1))
            return operand
        if expr.op == "!":
            operand = self._gen_expr(expr.operand)
            zero = self._alloc_temp(expr.line)
            self._emit(Instr(Op.CONST, rd=zero, imm=0))
            self._emit(Instr(Op.SEQ, rd=operand, ra=operand, rb=zero))
            self._free_temp(zero)
            return operand
        raise CompileError(f"unknown unary op {expr.op!r}", expr.line)

    def _gen_binop(self, expr: ast.BinOp) -> int:
        if expr.op in ("&&", "||"):
            return self._gen_logical_value(expr)
        if expr.op in _CMP_TO_OP:
            op, swap = _CMP_TO_OP[expr.op]
            lhs = self._gen_expr(expr.lhs)
            rhs = self._gen_expr(expr.rhs)
            if swap:
                lhs, rhs = rhs, lhs
            self._emit(Instr(op, rd=lhs, ra=lhs, rb=rhs))
            self._free_temp(rhs)
            return lhs
        op = _BIN_TO_OP.get(expr.op)
        if op is None:
            raise CompileError(f"unknown binary op {expr.op!r}", expr.line)
        lhs = self._gen_expr(expr.lhs)
        rhs = self._gen_expr(expr.rhs)
        self._emit(Instr(op, rd=lhs, ra=lhs, rb=rhs))
        self._free_temp(rhs)
        return lhs

    def _gen_logical_value(self, expr: ast.BinOp) -> int:
        """``a && b`` / ``a || b`` in value context, short-circuiting."""
        label_id = self._new_label("")
        short_label = f"{label_id}sc"
        end_label = f"{label_id}scend"
        result = self._alloc_temp(expr.line)
        lhs = self._gen_expr(expr.lhs)
        if expr.op == "&&":
            self._emit(Instr(Op.BEQZ, ra=lhs, target=short_label))
        else:
            self._emit(Instr(Op.BNEZ, ra=lhs, target=short_label))
        self._free_temp(lhs)
        self._start_block(self._new_label("rhs"))
        rhs = self._gen_expr(expr.rhs)
        zero = self._alloc_temp(expr.line)
        self._emit(Instr(Op.CONST, rd=zero, imm=0))
        self._emit(Instr(Op.SNE, rd=result, ra=rhs, rb=zero))
        self._free_temp(zero)
        self._free_temp(rhs)
        self._emit(Instr(Op.JMP, target=end_label))
        self._start_block(short_label)
        self._emit(
            Instr(Op.CONST, rd=result, imm=0 if expr.op == "&&" else 1)
        )
        self._start_block(end_label)
        return result

    # -- conditional branches ----------------------------------------------------

    def _branch_if_false(self, cond: ast.Expr, label: str) -> None:
        if isinstance(cond, ast.BinOp) and cond.op == "&&":
            self._branch_if_false(cond.lhs, label)
            self._branch_if_false(cond.rhs, label)
            return
        if isinstance(cond, ast.BinOp) and cond.op == "||":
            skip = self._new_label("or")
            self._branch_if_true(cond.lhs, skip)
            self._branch_if_false(cond.rhs, label)
            self._start_block(skip)
            return
        if isinstance(cond, ast.UnOp) and cond.op == "!":
            self._branch_if_true(cond.operand, label)
            return
        reg = self._gen_expr(cond)
        self._emit(Instr(Op.BEQZ, ra=reg, target=label))
        self._free_temp(reg)
        self._start_block(self._new_label("fall"))

    def _branch_if_true(self, cond: ast.Expr, label: str) -> None:
        if isinstance(cond, ast.BinOp) and cond.op == "||":
            self._branch_if_true(cond.lhs, label)
            self._branch_if_true(cond.rhs, label)
            return
        if isinstance(cond, ast.BinOp) and cond.op == "&&":
            skip = self._new_label("and")
            self._branch_if_false(cond.lhs, skip)
            self._branch_if_true(cond.rhs, label)
            self._start_block(skip)
            return
        if isinstance(cond, ast.UnOp) and cond.op == "!":
            self._branch_if_false(cond.operand, label)
            return
        reg = self._gen_expr(cond)
        self._emit(Instr(Op.BNEZ, ra=reg, target=label))
        self._free_temp(reg)
        self._start_block(self._new_label("fall"))

    # -- calls ---------------------------------------------------------------------

    def _gen_call(self, expr: ast.Call) -> int:
        if expr.name in ast.INTRINSICS:
            return self._gen_intrinsic(expr)
        saved = list(self._allocated)
        for reg in saved:
            self._emit(
                Instr(Op.STORE, ra=REG_FP, imm=-self._temp_homes[reg], rb=reg)
            )
        depth = self._call_depth
        self._call_depth += 1
        try:
            area = self._arg_area(depth)
            for idx, arg in enumerate(expr.args):
                reg = self._gen_expr(arg)
                self._emit(
                    Instr(Op.STORE, ra=REG_FP, imm=-(area - 8 * idx), rb=reg)
                )
                self._free_temp(reg)
        finally:
            self._call_depth -= 1
        for idx in range(len(expr.args)):
            self._emit(
                Instr(
                    Op.LOAD,
                    rd=FIRST_TEMP + idx,
                    ra=REG_FP,
                    imm=-(area - 8 * idx),
                )
            )
        self._emit(Instr(Op.CALL, target=expr.name))
        for reg in saved:
            self._emit(
                Instr(Op.LOAD, rd=reg, ra=REG_FP, imm=-self._temp_homes[reg])
            )
        result = self._alloc_temp(expr.line)
        self._emit(Instr(Op.MOV, rd=result, ra=RETVAL))
        return result

    def _gen_intrinsic(self, expr: ast.Call) -> int:
        name = expr.name
        if name in ("peek", "peekb"):
            addr = self._gen_expr(expr.args[0])
            op = Op.LOAD if name == "peek" else Op.LOADB
            self._emit(Instr(op, rd=addr, ra=addr, imm=0))
            return addr
        # poke / pokeb
        value = self._gen_expr(expr.args[1])
        addr = self._gen_expr(expr.args[0])
        op = Op.STORE if name == "poke" else Op.STOREB
        self._emit(Instr(op, ra=addr, imm=0, rb=value))
        self._free_temp(value)
        self._emit(Instr(Op.CONST, rd=addr, imm=0))
        return addr


def generate_module(
    unit_info: UnitInfo, opt_level: int, profile: CompilerProfile
) -> Module:
    """Generate a :class:`Module` for an analyzed unit (no optimization)."""
    unit = unit_info.unit
    module = Module(unit.name)
    for decl in unit.globals:
        from repro.isa.program import DataObject

        module.add_data(
            DataObject(
                decl.name,
                decl.count,
                kind=decl.kind,
                init=list(decl.init) if decl.init is not None else None,
            )
        )
    for func in unit.funcs:
        fi = unit_info.funcs[func.name]
        gen = FunctionCodegen(func, fi, unit_info, opt_level, profile)
        module.add_function(gen.generate())
    return module
