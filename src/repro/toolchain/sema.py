"""Semantic analysis for minic.

Builds per-unit and per-function symbol information, enforces the
language's static rules, and computes the usage statistics later consumed
by the code generator's register-promotion and global-base-caching
heuristics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.toolchain import ast
from repro.toolchain.errors import CompileError

#: Maximum by-register call arguments (r1..r6).
MAX_ARGS = 6


@dataclass
class VarInfo:
    """Resolved information for one name visible inside a function."""

    name: str
    kind: str  # "param" | "local" | "global"
    is_array: bool = False
    elem_kind: str = "words"  # "words" | "bytes"
    count: int = 1
    param_index: int = -1


@dataclass
class FuncInfo:
    """Per-function analysis results."""

    name: str
    params: List[str] = field(default_factory=list)
    vars: Dict[str, VarInfo] = field(default_factory=dict)
    #: Scalar locals/params ranked for register promotion.
    scalar_use_counts: Counter = field(default_factory=Counter)
    #: Global symbols whose base address the function materializes.
    global_base_counts: Counter = field(default_factory=Counter)
    callees: Set[str] = field(default_factory=set)
    has_calls: bool = False
    num_stmts: int = 0

    def lookup(self, name: str) -> Optional[VarInfo]:
        return self.vars.get(name)


@dataclass
class UnitInfo:
    """Whole-translation-unit analysis results."""

    unit: ast.SourceUnit
    globals: Dict[str, ast.GlobalDecl] = field(default_factory=dict)
    funcs: Dict[str, FuncInfo] = field(default_factory=dict)


def analyze_unit(unit: ast.SourceUnit) -> UnitInfo:
    """Analyze ``unit``; raises :class:`CompileError` on any violation.

    Rules enforced:

    - globals, functions, parameters and locals must not collide in their
      respective scopes; a local may shadow a global;
    - scalar assignment targets must be scalars, element stores must
      target declared arrays;
    - a bare array name is not a value — take ``&name`` instead;
    - intrinsics (:data:`~repro.toolchain.ast.INTRINSICS`) have fixed
      arities and statement/expression roles;
    - calls pass at most :data:`MAX_ARGS` arguments;
    - ``break``/``continue`` appear only inside loops.
    """
    info = UnitInfo(unit=unit)
    for decl in unit.globals:
        if decl.name in info.globals:
            raise CompileError(f"duplicate global {decl.name!r}", decl.line)
        if decl.name in ast.INTRINSICS:
            raise CompileError(
                f"global {decl.name!r} collides with an intrinsic", decl.line
            )
        info.globals[decl.name] = decl
    func_names = set()
    for func in unit.funcs:
        if func.name in func_names:
            raise CompileError(f"duplicate function {func.name!r}", func.line)
        if func.name in ast.INTRINSICS:
            raise CompileError(
                f"function {func.name!r} collides with an intrinsic", func.line
            )
        if func.name in info.globals:
            raise CompileError(
                f"function {func.name!r} collides with a global", func.line
            )
        func_names.add(func.name)
    for func in unit.funcs:
        info.funcs[func.name] = _analyze_func(func, info)
    return info


def _analyze_func(func: ast.FuncDecl, unit_info: UnitInfo) -> FuncInfo:
    fi = FuncInfo(name=func.name, params=list(func.params))
    if len(func.params) > MAX_ARGS:
        raise CompileError(
            f"{func.name}: more than {MAX_ARGS} parameters", func.line
        )
    seen_params = set()
    for idx, param in enumerate(func.params):
        if param in seen_params:
            raise CompileError(f"{func.name}: duplicate parameter {param!r}", func.line)
        seen_params.add(param)
        fi.vars[param] = VarInfo(name=param, kind="param", param_index=idx)
    # Collect local declarations first (minic requires declaration before
    # use, which the resolution walk below enforces naturally since we
    # walk in statement order).
    _walk_block(func.body, fi, unit_info, loop_depth=0)
    return fi


def _declare_local(stmt: ast.VarDecl, fi: FuncInfo) -> None:
    if stmt.name in fi.vars and fi.vars[stmt.name].kind != "global":
        raise CompileError(
            f"{fi.name}: duplicate declaration of {stmt.name!r}", stmt.line
        )
    fi.vars[stmt.name] = VarInfo(
        name=stmt.name,
        kind="local",
        is_array=stmt.is_array,
        count=stmt.count,
    )


def _resolve(name: str, fi: FuncInfo, unit_info: UnitInfo) -> Optional[VarInfo]:
    vi = fi.vars.get(name)
    if vi is not None:
        return vi
    decl = unit_info.globals.get(name)
    if decl is None:
        return None
    vi = VarInfo(
        name=name,
        kind="global",
        is_array=decl.is_array,
        elem_kind=decl.kind,
        count=decl.count,
    )
    fi.vars[name] = vi
    return vi


def _walk_block(
    block: ast.Block, fi: FuncInfo, unit_info: UnitInfo, loop_depth: int
) -> None:
    for stmt in block.stmts:
        fi.num_stmts += 1
        if isinstance(stmt, ast.VarDecl):
            _declare_local(stmt, fi)
        elif isinstance(stmt, ast.Assign):
            vi = _resolve(stmt.name, fi, unit_info)
            if vi is None:
                raise CompileError(
                    f"{fi.name}: assignment to undeclared {stmt.name!r}", stmt.line
                )
            if vi.is_array:
                raise CompileError(
                    f"{fi.name}: cannot assign to array {stmt.name!r}", stmt.line
                )
            fi.scalar_use_counts[stmt.name] += _loop_weight(loop_depth)
            _walk_expr(stmt.value, fi, unit_info, loop_depth)
        elif isinstance(stmt, ast.StoreStmt):
            vi = _resolve(stmt.name, fi, unit_info)
            if vi is None or not vi.is_array:
                raise CompileError(
                    f"{fi.name}: element store to non-array {stmt.name!r}",
                    stmt.line,
                )
            if vi.kind == "global":
                fi.global_base_counts[stmt.name] += _loop_weight(loop_depth)
            _walk_expr(stmt.index, fi, unit_info, loop_depth)
            _walk_expr(stmt.value, fi, unit_info, loop_depth)
        elif isinstance(stmt, ast.If):
            _walk_expr(stmt.cond, fi, unit_info, loop_depth)
            _walk_block(stmt.then, fi, unit_info, loop_depth)
            if stmt.els is not None:
                _walk_block(stmt.els, fi, unit_info, loop_depth)
        elif isinstance(stmt, ast.While):
            _walk_expr(stmt.cond, fi, unit_info, loop_depth + 1)
            _walk_block(stmt.body, fi, unit_info, loop_depth + 1)
        elif isinstance(stmt, ast.For):
            vi = _resolve(stmt.var, fi, unit_info)
            if vi is None:
                raise CompileError(
                    f"{fi.name}: for-loop over undeclared {stmt.var!r}", stmt.line
                )
            if vi.is_array:
                raise CompileError(
                    f"{fi.name}: for-loop variable {stmt.var!r} is an array",
                    stmt.line,
                )
            fi.scalar_use_counts[stmt.var] += 3 * _loop_weight(loop_depth + 1)
            _walk_expr(stmt.init, fi, unit_info, loop_depth)
            _walk_expr(stmt.cond, fi, unit_info, loop_depth + 1)
            _walk_expr(stmt.update, fi, unit_info, loop_depth + 1)
            _walk_block(stmt.body, fi, unit_info, loop_depth + 1)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                _walk_expr(stmt.value, fi, unit_info, loop_depth)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.Break) else "continue"
                raise CompileError(f"{fi.name}: {kind} outside a loop", stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            _walk_expr(stmt.expr, fi, unit_info, loop_depth)
        else:  # pragma: no cover - parser produces no other statements
            raise CompileError(f"{fi.name}: unknown statement {stmt!r}", stmt.line)


def _loop_weight(loop_depth: int) -> int:
    """Heuristic use weight: uses inside loops count much more."""
    return 10 ** min(loop_depth, 3)


def _walk_expr(
    expr: ast.Expr, fi: FuncInfo, unit_info: UnitInfo, loop_depth: int
) -> None:
    if isinstance(expr, ast.Num):
        return
    if isinstance(expr, ast.Var):
        vi = _resolve(expr.name, fi, unit_info)
        if vi is None:
            raise CompileError(
                f"{fi.name}: use of undeclared {expr.name!r}", expr.line
            )
        if vi.is_array:
            raise CompileError(
                f"{fi.name}: array {expr.name!r} is not a value; use &{expr.name}",
                expr.line,
            )
        fi.scalar_use_counts[expr.name] += _loop_weight(loop_depth)
        return
    if isinstance(expr, ast.BinOp):
        _walk_expr(expr.lhs, fi, unit_info, loop_depth)
        _walk_expr(expr.rhs, fi, unit_info, loop_depth)
        return
    if isinstance(expr, ast.UnOp):
        _walk_expr(expr.operand, fi, unit_info, loop_depth)
        return
    if isinstance(expr, ast.Call):
        if expr.name in ast.INTRINSICS:
            arity, has_result = ast.INTRINSICS[expr.name]
            if len(expr.args) != arity:
                raise CompileError(
                    f"{fi.name}: {expr.name} takes {arity} argument(s)", expr.line
                )
        else:
            if len(expr.args) > MAX_ARGS:
                raise CompileError(
                    f"{fi.name}: call to {expr.name!r} passes more than "
                    f"{MAX_ARGS} arguments",
                    expr.line,
                )
            fi.callees.add(expr.name)
            fi.has_calls = True
        for arg in expr.args:
            _walk_expr(arg, fi, unit_info, loop_depth)
        return
    if isinstance(expr, ast.Index):
        vi = _resolve(expr.name, fi, unit_info)
        if vi is None or not vi.is_array:
            raise CompileError(
                f"{fi.name}: indexing non-array {expr.name!r}", expr.line
            )
        if vi.kind == "global":
            fi.global_base_counts[expr.name] += _loop_weight(loop_depth)
        _walk_expr(expr.index, fi, unit_info, loop_depth)
        return
    if isinstance(expr, ast.AddrOf):
        vi = _resolve(expr.name, fi, unit_info)
        if vi is None:
            raise CompileError(
                f"{fi.name}: address of undeclared {expr.name!r}", expr.line
            )
        return
    raise CompileError(f"{fi.name}: unknown expression {expr!r}", expr.line)
