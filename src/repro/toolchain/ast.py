"""Abstract syntax tree for minic.

minic is deliberately small: a single 64-bit integer type, global scalars
and arrays (word- or byte-element), local scalars and word arrays,
functions with by-value word parameters, structured control flow, and a
handful of intrinsics (``peek``/``poke``/``peekb``/``pokeb``) for
pointer-style access through computed addresses.  It is just expressive
enough to write the multi-module SPEC-like kernels the paper's evaluation
needs, while keeping the compiler honest (real codegen, real layout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base class: every node records its source line for diagnostics."""

    line: int = field(default=0, compare=False)


# --------------------------------------------------------------------------
# Expressions


@dataclass
class Expr(Node):
    pass


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class BinOp(Expr):
    op: str = "+"
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class UnOp(Expr):
    op: str = "-"
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    """A function call; also carries intrinsic calls (peek/poke/...)."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """``name[index]`` — element read from a declared array."""

    name: str = ""
    index: Expr = None  # type: ignore[assignment]


@dataclass
class AddrOf(Expr):
    """``&name`` — byte address of a global or local array/scalar."""

    name: str = ""


# --------------------------------------------------------------------------
# Statements


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Node):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """``var x;`` or ``var buf[64];`` — a local scalar or word array."""

    name: str = ""
    count: int = 1
    is_array: bool = False


@dataclass
class Assign(Stmt):
    name: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass
class StoreStmt(Stmt):
    """``name[index] = value;`` — element write to a declared array."""

    name: str = ""
    index: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Block = None  # type: ignore[assignment]
    els: Optional[Block] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    """``for (v = init; cond; v = update) body``.

    The induction variable appears in both the init and update clauses;
    keeping the clauses this restricted is what makes AST-level loop
    unrolling tractable.
    """

    var: str = ""
    init: Expr = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]
    update: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# Declarations


@dataclass
class GlobalDecl(Node):
    """``int name;`` / ``int name[n] = {..};`` / ``byte name[n];``"""

    name: str = ""
    kind: str = "words"  # "words" or "bytes"
    count: int = 1
    is_array: bool = False
    init: Optional[List[int]] = None


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]


@dataclass
class SourceUnit(Node):
    """One parsed translation unit."""

    name: str = ""
    globals: List[GlobalDecl] = field(default_factory=list)
    funcs: List[FuncDecl] = field(default_factory=list)

    def func(self, name: str) -> FuncDecl:
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(name)


#: Intrinsic functions the compiler lowers directly to memory instructions.
#: name -> (argument count, has result)
INTRINSICS = {
    "peek": (1, True),  # word load from byte address
    "poke": (2, False),  # word store to byte address
    "peekb": (1, True),  # byte load
    "pokeb": (2, False),  # byte store
}


def walk_exprs(expr: Expr):
    """Yield ``expr`` and all sub-expressions, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_exprs(expr.lhs)
        yield from walk_exprs(expr.rhs)
    elif isinstance(expr, UnOp):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_exprs(arg)
    elif isinstance(expr, Index):
        yield from walk_exprs(expr.index)


def walk_stmts(block: Block):
    """Yield every statement in ``block``, recursively, pre-order."""
    for stmt in block.stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then)
            if stmt.els is not None:
                yield from walk_stmts(stmt.els)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, For):
            yield from walk_stmts(stmt.body)


def stmt_exprs(stmt: Stmt) -> Tuple[Expr, ...]:
    """The immediate expressions referenced by one statement."""
    if isinstance(stmt, Assign):
        return (stmt.value,)
    if isinstance(stmt, StoreStmt):
        return (stmt.index, stmt.value)
    if isinstance(stmt, If):
        return (stmt.cond,)
    if isinstance(stmt, While):
        return (stmt.cond,)
    if isinstance(stmt, For):
        return (stmt.init, stmt.cond, stmt.update)
    if isinstance(stmt, Return) and stmt.value is not None:
        return (stmt.value,)
    if isinstance(stmt, ExprStmt):
        return (stmt.expr,)
    return ()
