"""Measurement noise, and why repetition cannot fix bias.

The paper distinguishes two failure modes of an experiment:

- **noise** — run-to-run variance in one setup (OS jitter, interrupts),
  which repetition + confidence intervals handle;
- **bias** — a systematic offset *shared by every run in the setup*,
  which repetition makes *worse*: more runs produce a tighter interval
  around the wrong value.

The simulator is deterministic, so noise is modelled explicitly: a
deterministic pseudo-random multiplicative jitter applied per repetition.
:func:`repeated_measurement` produces the classic single-setup evaluation
(n repetitions, t-interval); :func:`bias_vs_noise_demo` runs it in
several setups and shows the intervals exclude each other — the paper's
argument that per-setup intervals measure precision, not accuracy.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.experiment import Experiment
from repro.core.setup import ExperimentalSetup
from repro.core.stats import ConfidenceInterval, t_confidence_interval
from repro.workloads.base import lcg_stream


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative measurement jitter.

    ``magnitude`` is the maximum relative perturbation (e.g. 0.01 = ±1%,
    a typical quiet-machine run-to-run spread).  Jitter is deterministic
    given ``seed`` — experiments remain reproducible.
    """

    magnitude: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.magnitude < 1.0:
            raise ValueError("noise magnitude must be in [0, 1)")

    def jitter(self, true_value: float, repetition: int, setup_tag: int) -> float:
        """The observed value for one repetition."""
        if self.magnitude == 0.0:
            return true_value
        rng = lcg_stream(self.seed * 1_000_003 + setup_tag * 97 + repetition)
        unit = (rng() % 2_000_001 - 1_000_000) / 1_000_000  # [-1, 1]
        return true_value * (1.0 + self.magnitude * unit)


def _setup_tag(setup: ExperimentalSetup) -> int:
    """Stable per-setup jitter-stream tag.

    Must not use ``hash()``: string hashing is randomized per process,
    which would make the "deterministic" noise differ between runs.
    """
    text = (
        f"{setup.describe()}|sa{setup.stack_align}"
        f"|fa{setup.function_alignment}"
    )
    return zlib.crc32(text.encode("utf-8")) & 0xFFFF


@dataclass(frozen=True)
class RepeatedMeasurement:
    """n noisy repetitions of one setup, summarized the usual way."""

    setup: ExperimentalSetup
    observations: Tuple[float, ...]
    interval: ConfidenceInterval

    @property
    def mean(self) -> float:
        return self.interval.mean


def repeated_measurement(
    experiment: Experiment,
    setup: ExperimentalSetup,
    repetitions: int = 10,
    noise: NoiseModel = NoiseModel(),
) -> RepeatedMeasurement:
    """The conventional protocol: repeat, report mean ± t-interval.

    All repetitions share the setup's (deterministic) true cycle count;
    only the modelled noise varies.  That is exactly the situation on
    real hardware where the biased layout is frozen for the whole
    session.
    """
    if repetitions < 2:
        raise ValueError("need at least 2 repetitions")
    true_cycles = experiment.run(setup).cycles
    setup_tag = _setup_tag(setup)
    observations = tuple(
        noise.jitter(true_cycles, rep, setup_tag)
        for rep in range(repetitions)
    )
    return RepeatedMeasurement(
        setup=setup,
        observations=observations,
        interval=t_confidence_interval(list(observations)),
    )


@dataclass(frozen=True)
class BiasVsNoiseResult:
    """Per-setup repeated measurements of the same program."""

    measurements: Tuple[RepeatedMeasurement, ...]

    @property
    def disjoint_pairs(self) -> int:
        """Setup pairs whose confidence intervals do not overlap — each
        one is a statistically 'confident' contradiction."""
        count = 0
        ms = self.measurements
        for i in range(len(ms)):
            for j in range(i + 1, len(ms)):
                a, b = ms[i].interval, ms[j].interval
                if a.hi < b.lo or b.hi < a.lo:
                    count += 1
        return count

    @property
    def repetition_misleads(self) -> bool:
        """True when at least one pair of setups produces confidently
        different answers for the same program — the paper's point that
        within-setup statistics cannot detect bias."""
        return self.disjoint_pairs > 0


def bias_vs_noise_demo(
    experiment: Experiment,
    setups: Sequence[ExperimentalSetup],
    repetitions: int = 10,
    noise: NoiseModel = NoiseModel(),
) -> BiasVsNoiseResult:
    """Repeat-measure the same program under several setups.

    When the setup-induced bias exceeds the noise, the per-setup
    intervals are disjoint: every experimenter is *sure*, and they
    disagree.
    """
    if len(setups) < 2:
        raise ValueError("need at least 2 setups to contrast")
    measurements: List[RepeatedMeasurement] = [
        repeated_measurement(experiment, s, repetitions, noise) for s in setups
    ]
    return BiasVsNoiseResult(measurements=tuple(measurements))
