"""Public face of the structured error taxonomy.

The classes live in :mod:`repro._errors` (a leaf module, so the arch /
toolchain layers can raise them without importing ``repro.core``); this
module re-exports them and is the import site the rest of the library
and user code should use::

    from repro.core.errors import BuildError, RunTimeout, is_retryable

Taxonomy:

===================  =========  ============================================
class                default    meaning
===================  =========  ============================================
BuildError           fatal      compiler/linker failed (retryable when the
                                failure is crash-style, e.g. injected ICE)
SimulationError      fatal      simulated program trapped (retryable when
                                counter corruption is detected post-run)
VerificationError    retryable  wrong answer — re-measure, then quarantine
RunTimeout           retryable  cycle budget or wall-clock deadline blown
ArchiveCorruption    fatal      archive/journal failed validation
StorageWriteError    fatal      durable artifact could not be written
JournalWriteError    fatal      journal append failed (path + record index)
StatsError           fatal      degenerate sample handed to an inference
                                routine (n < 2, zero variance, bad level)
===================  =========  ============================================

See ``docs/robustness.md`` for how the sweep runner consumes the
retryable/fatal classification.
"""

from repro._errors import (
    ArchiveCorruption,
    BuildError,
    JournalWriteError,
    ReproError,
    RunTimeout,
    SimulationError,
    StatsError,
    StorageWriteError,
    VerificationError,
    classify,
    is_retryable,
)

__all__ = [
    "ArchiveCorruption",
    "BuildError",
    "JournalWriteError",
    "ReproError",
    "RunTimeout",
    "SimulationError",
    "StatsError",
    "StorageWriteError",
    "VerificationError",
    "classify",
    "is_retryable",
]
