"""Supervised worker pool: liveness-tracked processes with failover.

The bare ``ProcessPoolExecutor`` the sweep runner started with treats a
dead worker as a deadlocked future and a wedged worker as a busy one; a
5,000-setup sweep stalls at setup 4,817 and the campaign dies with it.
:class:`SupervisedPool` replaces it with long-lived worker processes the
parent actively supervises:

- **heartbeats** — each worker runs a daemon thread stamping
  ``time.monotonic()`` into a shared array slot every
  ``heartbeat_interval`` seconds; the parent reads the slots on every
  poll, so liveness is a property it *observes*, not one it assumes;
- **crash detection** — a dead PID (process sentinel) or a broken pipe
  is detected within one poll interval, whatever the worker was doing;
- **hang detection** — a busy worker whose heartbeat goes stale past
  ``hang_timeout`` is declared wedged and killed; the engine-level
  watchdogs catch a hung *task*, this catches a hung *process*;
- **failover** — the in-flight task of a failed worker is requeued at
  the head of the queue **at the same attempt number**: a worker death
  is an infrastructure fault and must not consume the measurement's
  retry budget (that distinction is what keeps a chaos-injected sweep's
  report byte-identical to a fault-free one);
- **bounded respawn** — each failed worker is replaced until
  ``max_respawns`` replacements have been spent; when the budget is
  exhausted and the last worker dies, the pool emits a ``degraded``
  event carrying every unfinished task so the caller can finish them
  in-process and report the degradation honestly.

The pool is deliberately generic: it moves opaque ``Task.payload``
values through ``task_fn`` and never imports the runner, so the
runner → supervisor dependency stays one-way.

Chaos testing: when a :class:`~repro.faults.FaultPlan` with
``worker_crash_rate`` / ``worker_hang_rate`` is installed, workers draw
those faults *on task receipt*, keyed by the task's fault key and its
parent-tracked **dispatch count** (first dispatch, first failover
re-dispatch, ...).  A transient chaos fault therefore clears when the
replacement worker re-receives the task, while a permanent one burns
respawns until the pool degrades — both paths deterministic, both
covered by tests.
"""

from __future__ import annotations

import collections
import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Deque, Dict, List, Optional

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: How long an injected ``worker_hang`` sleeps; far beyond any sane
#: ``hang_timeout``, so only the supervisor's deadline can end it.
_HANG_SLEEP = 3600.0

#: Hang threshold used while ``hang_timeout=None`` pools are still
#: collecting duration samples (and by pools that cannot adapt).
DEFAULT_HANG_TIMEOUT = 5.0

#: Adaptive mode: completed-task durations kept in the rolling window.
_ADAPTIVE_WINDOW = 64
#: Samples required before the adaptive threshold replaces the default.
_ADAPTIVE_MIN_SAMPLES = 5
#: The adaptive threshold is this multiple of the rolling p95 duration —
#: generous enough that a merely slow task is never declared hung.
_ADAPTIVE_MULTIPLIER = 10.0
#: Adaptive clamp: never below a few heartbeats, never above this.
_ADAPTIVE_CEILING = 120.0

#: A gap between liveness scans longer than this (and longer than a few
#: heartbeats) means the *parent* stalled — SIGSTOP, suspend/resume, a
#: debugger — and every heartbeat is stale by the same amount.
_PARENT_STALL_FLOOR = 1.0


def adaptive_deadline(
    configured: Optional[float],
    heartbeat_interval: float,
    durations: "obs_metrics.Histogram",
) -> float:
    """The liveness deadline in force given observed task durations.

    One policy, two consumers: :class:`SupervisedPool` uses it as the
    hang threshold for busy workers, and the sweep service's lease
    pool uses it as the lease expiry for dispatched setups — both are
    answers to "how long may this unit of work stay silent before we
    declare its executor gone?", so they must not drift apart.

    A ``configured`` value is used verbatim.  Otherwise the deadline
    adapts: :data:`_ADAPTIVE_MULTIPLIER` × the rolling p95 of completed
    durations in ``durations``, clamped below by a few heartbeat
    intervals (a stale heartbeat needs several missed beats to mean
    anything) and above by :data:`_ADAPTIVE_CEILING`; until
    :data:`_ADAPTIVE_MIN_SAMPLES` completions have been observed it
    falls back to :data:`DEFAULT_HANG_TIMEOUT`, also floored by the
    heartbeat interval.
    """
    if configured is not None:
        return configured
    floor = max(4 * heartbeat_interval, 1.0)
    if durations.count < _ADAPTIVE_MIN_SAMPLES:
        return max(DEFAULT_HANG_TIMEOUT, floor)
    p95 = durations.quantile(0.95)
    return min(_ADAPTIVE_CEILING, max(floor, _ADAPTIVE_MULTIPLIER * p95))


@dataclass
class Task:
    """One unit of work, with the identity failover accounting needs.

    Attributes:
        index: the request index; the pool tracks dispatch counts per
            index for chaos-fault draws.
        key: the measurement's fault-draw identity
            (:func:`repro.faults.fault_key`).
        attempt: the *measurement* attempt this payload encodes —
            preserved verbatim when the task is requeued after a worker
            failure, never incremented by the pool.
        payload: opaque value handed to the pool's ``task_fn``.
    """

    index: int
    key: str
    attempt: int
    payload: Any


@dataclass
class PoolEvent:
    """One supervision event from :meth:`DispatchPool.poll`.

    ``kind`` is one of:

    - ``"result"`` — ``task`` finished; ``result`` is ``task_fn``'s
      return value and ``records`` the worker's trace-span dicts (None
      when tracing is off);
    - ``"crash"`` — a worker died (dead PID / broken pipe; for remote
      pools: the connection was lost); ``task`` is the in-flight task
      that was requeued, or None if it was idle — remote pools, whose
      workers run several tasks at once, list every requeued task in
      ``tasks`` instead;
    - ``"hang"`` — a worker missed its heartbeat deadline and was
      killed (for remote pools: declared partitioned); ``task`` /
      ``tasks`` as for ``"crash"``;
    - ``"respawn"`` — a replacement worker was started in the failed
      worker's slot (for remote pools: the agent was reconnected);
    - ``"degraded"`` — the respawn (or reconnect) budget is spent and
      no workers remain; ``tasks`` holds every task the pool could not
      finish.

    ``label`` names the executor for human-facing output and trace-span
    aliases: empty for local worker pools, ``"host:port"`` for remote
    agents.
    """

    kind: str
    worker: int = -1
    task: Optional[Task] = None
    result: Any = None
    records: Optional[List[Dict[str, Any]]] = None
    tasks: List[Task] = field(default_factory=list)
    label: str = ""


class DispatchPool:
    """Transport-agnostic dispatch interface the sweep runner drives.

    A dispatch pool moves opaque :class:`Task` payloads to executors
    (local worker processes, remote agents over TCP, ...) and reports
    everything that happens as a stream of :class:`PoolEvent` values.
    The contract the runner relies on:

    - :meth:`submit` queues a task; dispatch happens inside
      :meth:`poll`, so a caller that stops polling stops supervision;
    - :meth:`poll` returns the next event, or None when the pool is
      drained (nothing queued, nothing in flight) or ``timeout``
      elapses;
    - a failed executor's in-flight tasks are requeued **at the same
      attempt number** — infrastructure failure never consumes a
      measurement's retry budget;
    - after a ``"degraded"`` event the pool is spent: the caller owns
      every task the event carries (plus any it still tracks as
      outstanding) and must finish them itself;
    - :meth:`close` releases every executor and is idempotent.
    """

    def submit(self, task: Task) -> None:
        """Queue ``task`` for dispatch on the next :meth:`poll`."""
        raise NotImplementedError

    def poll(self, timeout: Optional[float] = None) -> Optional[PoolEvent]:
        """The next supervision event (None: drained or timed out)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release every executor (idempotent)."""
        raise NotImplementedError

    def __enter__(self) -> "DispatchPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def _worker_main(
    slot: int,
    conn,
    heartbeats,
    interval: float,
    plan: Optional[faults.FaultPlan],
    task_fn: Callable[[Any], Any],
    tracing: bool,
    child_setup: Optional[Callable[[], None]] = None,
) -> None:
    """Worker process loop: beat, receive, (maybe) chaos, work, send."""
    if child_setup is not None:
        child_setup()
    # With a fork start method the child inherits the parent's active
    # tracer and fault plan; make both explicit.
    obs_trace.install(None)
    faults.install(plan)
    wedged = threading.Event()

    def beat() -> None:
        while True:
            if not wedged.is_set():
                heartbeats[slot] = time.monotonic()
            time.sleep(interval)

    threading.Thread(
        target=beat, daemon=True, name=f"heartbeat-{slot}"
    ).start()

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg is None:  # orderly shutdown
            return
        key, dispatch, payload = msg
        if plan is not None and plan.fires("worker_crash", key, dispatch):
            # Die the way a segfault or OOM kill would: no cleanup, no
            # exception, no goodbye on the pipe.
            os._exit(139)
        if plan is not None and plan.fires("worker_hang", key, dispatch):
            # Wedge the whole process: stop the heartbeat and never
            # produce a result.  Only the supervisor's missed-heartbeat
            # deadline can recover the sweep from this.
            wedged.set()
            time.sleep(_HANG_SLEEP)
        if tracing:
            tracer = obs_trace.Tracer(label=f"worker-{slot}")
            with obs_trace.tracing(tracer):
                result = task_fn(payload)
            records: Optional[List[Dict[str, Any]]] = tracer.to_dicts()
        else:
            result = task_fn(payload)
            records = None
        try:
            conn.send((result, records))
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """Parent-side handle: process, pipe, and what it is working on."""

    __slots__ = ("slot", "proc", "conn", "task", "dispatched_at")

    def __init__(self, slot: int, proc, conn) -> None:
        self.slot = slot
        self.proc = proc
        self.conn = conn
        self.task: Optional[Task] = None
        self.dispatched_at = 0.0


class SupervisedPool(DispatchPool):
    """A pool of supervised worker processes.

    Args:
        workers: worker process count (also the heartbeat slot count;
            replacements reuse their predecessor's slot).
        task_fn: module-level callable run on each task's payload in the
            worker.
        fault_plan: plan installed in every worker; also consulted there
            for ``worker_crash`` / ``worker_hang`` chaos draws.
        heartbeat_interval: seconds between worker heartbeat stamps.
        hang_timeout: a busy worker whose heartbeat is staler than this
            is declared hung and killed.  None (the default) adapts the
            threshold to the observed workload: a clamped multiple of
            the rolling p95 task duration (see
            :meth:`effective_hang_timeout`), so short-task sweeps detect
            a wedged worker in seconds while long-running measurements
            aren't falsely declared hung.
        max_respawns: total replacement workers the pool may start over
            its lifetime before degrading.
        tracing: when True, workers trace each task into a fresh tracer
            and ship the span records back with the result.
        poll_interval: parent-side supervision granularity (seconds).
        context: multiprocessing context (default: the platform's).
        child_setup: module-level callable run first thing in every
            worker child.  Fork-started children inherit every open file
            descriptor; a parent embedding the pool in a network server
            uses this to drop the child's copies of its sockets (see
            :func:`repro.core.distributed.close_inherited_sockets`) —
            otherwise a socket the parent closes never reaches EOF at
            the peer while any worker still holds the inherited fd.
    """

    def __init__(
        self,
        workers: int,
        task_fn: Callable[[Any], Any],
        fault_plan: Optional[faults.FaultPlan] = None,
        heartbeat_interval: float = 0.2,
        hang_timeout: Optional[float] = None,
        max_respawns: int = 8,
        tracing: bool = False,
        poll_interval: float = 0.05,
        context=None,
        child_setup: Optional[Callable[[], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.task_fn = task_fn
        self.fault_plan = fault_plan
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout = hang_timeout
        self.max_respawns = max_respawns
        self.tracing = tracing
        self.poll_interval = poll_interval
        self.child_setup = child_setup
        self._ctx = context if context is not None else mp.get_context()
        self._heartbeats = self._ctx.Array("d", workers, lock=False)
        #: Rolling window of completed-task wall times (adaptive mode):
        #: a windowed obs histogram, so the p95 the liveness scan uses is
        #: the same deterministic fixed-bin quantile the metrics layer
        #: reports everywhere else.
        self._durations = obs_metrics.Histogram(
            "supervisor.task_seconds", window=_ADAPTIVE_WINDOW
        )
        self._queue: Deque[Task] = collections.deque()
        self._events: Deque[PoolEvent] = collections.deque()
        self._dispatched: Dict[int, int] = {}
        self._workers: List[_Worker] = []
        self._respawns = 0
        self._closed = False
        #: Parent-side stalls detected (and credited back to workers).
        self.parent_stalls = 0
        self._last_scan = time.monotonic()
        for slot in range(workers):
            self._workers.append(self._spawn(slot))

    # -- introspection ----------------------------------------------------

    @property
    def respawns(self) -> int:
        """Replacement workers started so far."""
        return self._respawns

    def dispatch_count(self, index: int) -> int:
        """How many times task ``index`` has been sent to a worker."""
        return self._dispatched.get(index, 0)

    def alive_workers(self) -> int:
        return sum(1 for w in self._workers if w.proc.is_alive())

    def stats(self) -> Dict[str, int]:
        """Instantaneous utilisation for the metrics timeline: worker
        liveness/busyness and queued (undispatched) task depth."""
        return {
            "workers_alive": self.alive_workers(),
            "workers_busy": sum(
                1 for w in self._workers if w.task is not None
            ),
            "queue_depth": len(self._queue),
        }

    def effective_hang_timeout(self) -> float:
        """The hang threshold in force for the next liveness scan.

        A configured ``hang_timeout`` is used verbatim.  In adaptive
        mode (``hang_timeout=None``) the threshold is
        :data:`_ADAPTIVE_MULTIPLIER` × the rolling p95 of completed-task
        durations, clamped below by a few heartbeat intervals (a stale
        heartbeat needs several missed beats to mean anything) and above
        by :data:`_ADAPTIVE_CEILING`; until
        :data:`_ADAPTIVE_MIN_SAMPLES` tasks have completed it falls back
        to :data:`DEFAULT_HANG_TIMEOUT` — also floored by the heartbeat
        interval, so a slow-beating config cannot have healthy busy
        workers declared hung during warm-up.  (Policy shared with the
        sweep service's lease expiry; see :func:`adaptive_deadline`.)
        """
        return adaptive_deadline(
            self.hang_timeout, self.heartbeat_interval, self._durations
        )

    # -- lifecycle --------------------------------------------------------

    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        self._heartbeats[slot] = time.monotonic()  # grace until first beat
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                slot,
                child_conn,
                self._heartbeats,
                self.heartbeat_interval,
                self.fault_plan,
                self.task_fn,
                self.tracing,
                self.child_setup,
            ),
            daemon=True,
            name=f"repro-worker-{slot}",
        )
        proc.start()
        child_conn.close()
        return _Worker(slot, proc, parent_conn)

    def submit(self, task: Task) -> None:
        """Queue a task; it is dispatched on the next :meth:`poll`."""
        self._queue.append(task)

    def poll(self, timeout: Optional[float] = None) -> Optional[PoolEvent]:
        """The next supervision event.

        Returns None when the pool is drained — nothing queued, nothing
        in flight, no buffered events — or when ``timeout`` seconds pass
        without an event.  Dispatching, result collection, crash/hang
        detection and respawning all happen inside this call; a caller
        that stops polling stops supervision.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            if self._events:
                return self._events.popleft()
            if not self._queue and all(
                w.task is None for w in self._workers
            ):
                return None
            self._dispatch_queued()
            if self._events:
                continue  # a dispatch may have failed a worker
            self._wait_for_activity()
            self._reap_results()
            self._scan_liveness()
            if (
                deadline is not None
                and not self._events
                and time.monotonic() >= deadline
            ):
                return None

    def close(self) -> None:
        """Shut every worker down (politely, then not)."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            try:
                w.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        grace = time.monotonic() + 5.0
        for w in self._workers:
            w.proc.join(max(0.0, grace - time.monotonic()))
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(1.0)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(1.0)
            try:
                w.conn.close()
            except OSError:
                pass
        self._workers.clear()
        self._queue.clear()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- supervision internals --------------------------------------------

    def _dispatch_queued(self) -> None:
        for w in list(self._workers):
            if not self._queue:
                return
            if w.task is not None or not w.proc.is_alive():
                continue
            task = self._queue[0]  # pop only after a successful send
            count = self._dispatched.get(task.index, 0) + 1
            try:
                w.conn.send((task.key, count, task.payload))
            except (BrokenPipeError, OSError):
                self._fail(w, "crash")
                continue
            self._queue.popleft()
            self._dispatched[task.index] = count
            w.task = task
            w.dispatched_at = time.monotonic()
            # Reset the slot so a worker that beat long ago (idle wait)
            # gets a full hang_timeout for this task.
            self._heartbeats[w.slot] = w.dispatched_at

    def _wait_for_activity(self) -> None:
        handles = [w.conn for w in self._workers if w.task is not None]
        handles += [w.proc.sentinel for w in self._workers]
        if not handles:
            return
        try:
            mp_connection.wait(
                handles, min(self.poll_interval, self.heartbeat_interval)
            )
        except OSError:
            pass

    def _reap_results(self) -> None:
        for w in list(self._workers):
            if w.task is None:
                continue
            try:
                ready = w.conn.poll(0)
            except (BrokenPipeError, OSError):
                self._fail(w, "crash")
                continue
            if not ready:
                continue
            try:
                result, records = w.conn.recv()
            except (EOFError, OSError):
                self._fail(w, "crash")
                continue
            task, w.task = w.task, None
            self._durations.observe(time.monotonic() - w.dispatched_at)
            self._events.append(
                PoolEvent(
                    "result",
                    worker=w.slot,
                    task=task,
                    result=result,
                    records=records,
                )
            )

    def _scan_liveness(self) -> None:
        now = time.monotonic()
        deadline = self.effective_hang_timeout()
        gap = now - self._last_scan
        self._last_scan = now
        if gap > max(2 * self.heartbeat_interval, _PARENT_STALL_FLOOR):
            # The parent itself went dark between scans (SIGSTOP storm,
            # laptop suspend, a tracing debugger): a SIGSTOP of the whole
            # process group froze the workers' beat threads too, so on
            # resume every heartbeat looks ``gap`` seconds staler than
            # the worker deserves.  Credit the unobserved interval back
            # instead of declaring every busy worker hung — time the
            # supervisor wasn't watching must not count against the
            # watched.  Crash detection below is unaffected (a dead PID
            # is dead regardless of clocks); a genuinely hung worker is
            # still caught, at most one deadline later.
            self.parent_stalls += 1
            for w in self._workers:
                self._heartbeats[w.slot] = min(
                    now, self._heartbeats[w.slot] + gap
                )
            obs_trace.instant(
                "parent_stall_rebaseline",
                category="supervisor",
                gap=round(gap, 3),
            )
        for w in list(self._workers):
            if not w.proc.is_alive():
                self._fail(w, "crash")
            elif (
                w.task is not None
                and now - self._heartbeats[w.slot] > deadline
            ):
                self._fail(w, "hang")

    def _fail(self, w: _Worker, reason: str) -> None:
        """Tear down a failed worker: salvage, requeue, respawn."""
        if w not in self._workers:
            return
        # A worker that finished its task and *then* died must not cost
        # the sweep a measurement: drain anything buffered in the pipe
        # before tearing it down.
        try:
            while w.task is not None and w.conn.poll(0):
                result, records = w.conn.recv()
                task, w.task = w.task, None
                self._events.append(
                    PoolEvent(
                        "result",
                        worker=w.slot,
                        task=task,
                        result=result,
                        records=records,
                    )
                )
        except (EOFError, OSError):
            pass
        task, w.task = w.task, None
        if w.proc.is_alive():
            w.proc.terminate()
            w.proc.join(5.0)
        if w.proc.is_alive():
            w.proc.kill()
            w.proc.join(5.0)
        else:
            w.proc.join(5.0)
        try:
            w.conn.close()
        except OSError:
            pass
        self._workers.remove(w)
        if task is not None:
            # Failover, not retry: back to the head of the queue at the
            # same measurement attempt.
            self._queue.appendleft(task)
        self._events.append(PoolEvent(reason, worker=w.slot, task=task))
        if self._respawns < self.max_respawns:
            self._respawns += 1
            self._workers.append(self._spawn(w.slot))
            self._events.append(PoolEvent("respawn", worker=w.slot))
        elif not self._workers:
            # Budget spent and nobody left: hand every unfinished task
            # back so the caller can degrade honestly instead of
            # stalling forever.
            remaining = list(self._queue)
            self._queue.clear()
            self._events.append(PoolEvent("degraded", tasks=remaining))
