"""Measurement-bias metrics and studies.

The paper's core empirical instrument: hold the *system under study*
fixed, vary an "innocuous" setup parameter (environment size, link
order), and quantify how much the outcome moves.

Two layers:

- :func:`detect_bias` — turn a set of outcome values (cycles or speedups)
  observed across setups into a :class:`BiasReport`;
- :func:`env_size_study` / :func:`link_order_study` — run the paper's two
  headline sweeps against an :class:`~repro.core.experiment.Experiment`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.experiment import Experiment, Measurement
from repro.core.setup import ExperimentalSetup
from repro.core.stats import SummaryStats
from repro.workloads.base import lcg_stream


@dataclass(frozen=True)
class BiasReport:
    """How much an outcome moved across supposedly-equivalent setups.

    ``values[i]`` is the outcome under setup ``labels[i]``.  For speedup
    outcomes, ``flips`` says whether the *conclusion sign* (faster vs
    slower than 1.0) depends on the setup — the paper's "wrong data"
    case.
    """

    quantity: str
    values: Tuple[float, ...]
    labels: Tuple[str, ...]
    stats: SummaryStats

    @classmethod
    def from_values(
        cls,
        quantity: str,
        values: Sequence[float],
        labels: Optional[Sequence[str]] = None,
    ) -> "BiasReport":
        if labels is None:
            labels = [str(i) for i in range(len(values))]
        if len(labels) != len(values):
            raise ValueError("labels and values must align")
        return cls(
            quantity=quantity,
            values=tuple(float(v) for v in values),
            labels=tuple(labels),
            stats=SummaryStats.from_values(values),
        )

    @property
    def magnitude(self) -> float:
        """max/min across setups — 1.0 means no bias at all."""
        return self.stats.spread

    @property
    def flips(self) -> bool:
        """True when a speedup conclusion reverses across setups."""
        return self.stats.minimum < 1.0 < self.stats.maximum

    def relative_range(self) -> float:
        """(max - min) / median: bias size relative to the outcome."""
        if self.stats.median == 0:
            return float("inf")
        return (self.stats.maximum - self.stats.minimum) / abs(self.stats.median)

    def worst_setups(self) -> Tuple[str, str]:
        """(label of minimum, label of maximum)."""
        lo_i = min(range(len(self.values)), key=lambda i: self.values[i])
        hi_i = max(range(len(self.values)), key=lambda i: self.values[i])
        return self.labels[lo_i], self.labels[hi_i]

    def summary_line(self) -> str:
        return (
            f"{self.quantity}: min={self.stats.minimum:.4f} "
            f"max={self.stats.maximum:.4f} magnitude={self.magnitude:.4f}"
            + (" CONCLUSION FLIPS" if self.flips else "")
        )


def detect_bias(
    quantity: str,
    values: Sequence[float],
    labels: Optional[Sequence[str]] = None,
) -> BiasReport:
    """Build a :class:`BiasReport` for outcome ``values`` across setups."""
    return BiasReport.from_values(quantity, values, labels)


# --------------------------------------------------------------------------
# Studies


@dataclass
class StudyResult:
    """Outcome of a setup-parameter sweep for a base/treatment pair."""

    experiment: str
    parameter: str  # "env_bytes" | "link_order"
    points: List[str] = field(default_factory=list)
    base_cycles: List[float] = field(default_factory=list)
    treatment_cycles: List[float] = field(default_factory=list)
    base_measurements: List[Measurement] = field(default_factory=list)
    treatment_measurements: List[Measurement] = field(default_factory=list)

    @property
    def speedups(self) -> List[float]:
        """Per-point base/treatment cycle ratios (> 1: treatment wins)."""
        return [
            b / t for b, t in zip(self.base_cycles, self.treatment_cycles)
        ]

    def speedup_bias(self) -> BiasReport:
        """Bias report for the speedup conclusion."""
        return detect_bias(
            f"speedup across {self.parameter}", self.speedups, self.points
        )

    def base_bias(self) -> BiasReport:
        """Bias report for the base configuration's raw cycles."""
        return detect_bias(
            f"base cycles across {self.parameter}", self.base_cycles, self.points
        )

    def treatment_bias(self) -> BiasReport:
        return detect_bias(
            f"treatment cycles across {self.parameter}",
            self.treatment_cycles,
            self.points,
        )


def env_size_study(
    experiment: Experiment,
    base: ExperimentalSetup,
    treatment: ExperimentalSetup,
    env_sizes: Iterable[int],
) -> StudyResult:
    """The paper's Figure 3 protocol: sweep UNIX environment size,
    measuring base and treatment at each point."""
    result = StudyResult(
        experiment=repr(experiment), parameter="env_bytes"
    )
    for env in env_sizes:
        b = experiment.run(base.with_changes(env_bytes=env))
        t = experiment.run(treatment.with_changes(env_bytes=env))
        result.points.append(str(env))
        result.base_cycles.append(b.cycles)
        result.treatment_cycles.append(t.cycles)
        result.base_measurements.append(b)
        result.treatment_measurements.append(t)
    return result


def link_order_study(
    experiment: Experiment,
    base: ExperimentalSetup,
    treatment: ExperimentalSetup,
    orders: Optional[Iterable[Sequence[str]]] = None,
    max_orders: int = 33,
    seed: int = 0,
) -> StudyResult:
    """The paper's Figure 1/2 protocol: measure under many link orders.

    With ``orders=None``, uses the workload's default order plus sampled
    permutations (up to ``max_orders`` total, matching the paper's 33
    orders for perlbench).
    """
    modules = experiment.workload.module_names()
    if orders is None:
        orders = sample_link_orders(modules, max_orders, seed)
    result = StudyResult(experiment=repr(experiment), parameter="link_order")
    for order in orders:
        order_t = tuple(order)
        b = experiment.run(base.with_changes(link_order=order_t))
        t = experiment.run(treatment.with_changes(link_order=order_t))
        result.points.append(",".join(order_t))
        result.base_cycles.append(b.cycles)
        result.treatment_cycles.append(t.cycles)
        result.base_measurements.append(b)
        result.treatment_measurements.append(t)
    return result


def sample_link_orders(
    modules: Sequence[str], count: int, seed: int = 0
) -> List[Tuple[str, ...]]:
    """Default order first, then distinct sampled permutations.

    With few modules all permutations are enumerated (capped at
    ``count``); with many, Fisher-Yates-samples distinct orders using the
    suite's deterministic LCG.
    """
    modules = list(modules)
    total = 1
    for k in range(2, len(modules) + 1):
        total *= k
    if total <= count:
        return [tuple(p) for p in itertools.permutations(modules)]
    rng = lcg_stream(seed + 131)
    seen = {tuple(modules)}
    orders: List[Tuple[str, ...]] = [tuple(modules)]
    while len(orders) < count:
        perm = list(modules)
        for i in range(len(perm) - 1, 0, -1):
            j = rng() % (i + 1)
            perm[i], perm[j] = perm[j], perm[i]
        t = tuple(perm)
        if t not in seen:
            seen.add(t)
            orders.append(t)
    return orders


def suite_bias_table(
    experiments: Iterable[Experiment],
    base: ExperimentalSetup,
    treatment: ExperimentalSetup,
    parameter: str = "env_bytes",
    env_sizes: Optional[Sequence[int]] = None,
    max_orders: int = 12,
) -> Dict[str, StudyResult]:
    """Run one study per workload — the data for the paper's
    all-benchmarks figures (F2/F4)."""
    results: Dict[str, StudyResult] = {}
    for exp in experiments:
        if parameter == "env_bytes":
            sizes = env_sizes if env_sizes is not None else range(100, 1124, 64)
            results[exp.workload.name] = env_size_study(
                exp, base, treatment, sizes
            )
        elif parameter == "link_order":
            results[exp.workload.name] = link_order_study(
                exp, base, treatment, max_orders=max_orders
            )
        else:
            raise ValueError(f"unknown study parameter {parameter!r}")
    return results
