"""Statistics for performance evaluation.

Implements the statistical machinery the paper's "avoiding measurement
bias" section calls for: summary statistics, Student-t confidence
intervals over randomized setups, bootstrap intervals, and kernel-density
summaries (the data behind the paper's violin plots).

Distribution functions are implemented from first principles (incomplete
beta continued fraction, bisection inversion) so the library has no
third-party dependencies; the test suite cross-checks them against scipy.

This module is the *base* layer; the full inference layer — the
nonparametric tests, BCa bootstrap intervals, effect sizes, and
required-sample-size estimation Touati et al. call for — lives in
:mod:`repro.stats` and builds on the primitives here.

Degenerate samples (fewer than two observations, zero variance) raise a
typed :class:`~repro.core.errors.StatsError` rather than producing a
zero-width "confidence" interval: lending false certainty to a sample
with no observed variance is one of the benchmarking crimes
``repro audit`` exists to flag (see docs/statistics.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro._errors import StatsError

# --------------------------------------------------------------------------
# Distribution functions


def normal_cdf(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def normal_ppf(p: float) -> float:
    """Standard normal quantile via bisection on :func:`normal_cdf`."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    lo, hi = -40.0, 40.0
    for __ in range(200):
        mid = 0.5 * (lo + hi)
        if normal_cdf(mid) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function
    (Numerical-Recipes-style Lentz iteration)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_cdf(t: float, df: float) -> float:
    """Student-t CDF with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    x = df / (df + t * t)
    p = 0.5 * incomplete_beta(df / 2.0, 0.5, x)
    return 1.0 - p if t > 0 else p


def t_ppf(p: float, df: float) -> float:
    """Student-t quantile via bisection on :func:`t_cdf`."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    lo, hi = -1e6, 1e6
    for __ in range(400):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


# --------------------------------------------------------------------------
# Summaries and intervals


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float  # sample standard deviation (n-1)
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SummaryStats":
        if not values:
            raise ValueError("cannot summarize an empty sample")
        xs = sorted(float(v) for v in values)
        n = len(xs)
        mean = sum(xs) / n
        var = sum((v - mean) ** 2 for v in xs) / (n - 1) if n > 1 else 0.0
        return cls(
            n=n,
            mean=mean,
            std=math.sqrt(var),
            minimum=xs[0],
            q1=quantile(xs, 0.25),
            median=quantile(xs, 0.5),
            q3=quantile(xs, 0.75),
            maximum=xs[-1],
        )

    @property
    def spread(self) -> float:
        """max / min — the paper's bias-magnitude measure."""
        if self.minimum == 0:
            return math.inf
        return self.maximum / self.minimum


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    if not sorted_values:
        raise ValueError("empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    n = len(sorted_values)
    if n == 1:
        return float(sorted_values[0])
    pos = q * (n - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    a, b = sorted_values[lo], sorted_values[hi]
    # a + frac*(b-a) is exact when a == b, unlike the two-product lerp.
    return a + frac * (b - a)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval.

    ``method`` names the procedure that produced the interval ("t",
    "bootstrap", "BCa", ...), so every report row built from one is
    self-describing — an auditor reading an archived table can tell a
    normal-theory interval from a distribution-free one.
    """

    lo: float
    hi: float
    level: float
    mean: float
    method: str = "t"

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def __str__(self) -> str:
        return (
            f"[{self.lo:.4f}, {self.hi:.4f}] "
            f"({self.level:.0%}, {self.method})"
        )


def check_sample(
    values: Sequence[float], level: float, what: str
) -> SummaryStats:
    """Common degenerate-sample gate for interval constructors.

    Returns the sample summary; raises :class:`StatsError` for samples
    no interval procedure can answer for — fewer than two observations
    (no variance estimate exists) or zero variance (the interval would
    collapse to a zero-width point, false certainty) — and for a
    confidence level outside (0, 1).
    """
    if len(values) < 2:
        raise StatsError(
            f"need at least 2 observations for a {what}, got {len(values)}"
        )
    if not 0.0 < level < 1.0:
        raise StatsError(f"level must be in (0, 1), got {level}")
    stats = SummaryStats.from_values(values)
    if stats.std == 0.0:
        raise StatsError(
            f"zero-variance sample (all {stats.n} observations equal "
            f"{stats.mean:g}): a {what} would be a zero-width point, "
            "which states certainty the data cannot support"
        )
    return stats


def t_confidence_interval(
    values: Sequence[float], level: float = 0.95
) -> ConfidenceInterval:
    """Student-t CI for the mean — the interval the paper recommends
    reporting over randomized experimental setups.

    Raises :class:`StatsError` on degenerate samples (n < 2, zero
    variance) and out-of-range levels; see :func:`check_sample`.
    """
    stats = check_sample(values, level, "t interval")
    se = stats.std / math.sqrt(stats.n)
    crit = t_ppf(0.5 + level / 2.0, stats.n - 1)
    return ConfidenceInterval(
        lo=stats.mean - crit * se,
        hi=stats.mean + crit * se,
        level=level,
        mean=stats.mean,
        method="t",
    )


def bootstrap_confidence_interval(
    values: Sequence[float],
    level: float = 0.95,
    n_resamples: int = 2000,
    statistic: Optional[Callable[[Sequence[float]], float]] = None,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI (default statistic: mean).

    Deterministic given ``seed`` — uses the suite's LCG, not
    :mod:`random`.  Raises :class:`StatsError` on degenerate samples
    (n < 2, zero variance) and out-of-range levels, like
    :func:`t_confidence_interval`.  For a skew-corrected interval see
    :func:`repro.stats.bca_confidence_interval`.
    """
    check_sample(values, level, "bootstrap interval")
    from repro.workloads.base import lcg_stream

    stat = statistic if statistic is not None else (lambda xs: sum(xs) / len(xs))
    rng = lcg_stream(seed + 7919)
    n = len(values)
    estimates: List[float] = []
    for __ in range(n_resamples):
        sample = [values[rng() % n] for __ in range(n)]
        estimates.append(stat(sample))
    estimates.sort()
    alpha = (1.0 - level) / 2.0
    return ConfidenceInterval(
        lo=quantile(estimates, alpha),
        hi=quantile(estimates, 1.0 - alpha),
        level=level,
        mean=stat(list(values)),
        method="bootstrap",
    )


def skewness(values: Sequence[float]) -> float:
    """Adjusted Fisher–Pearson sample skewness (g1 with the n-bias
    correction) — the asymmetry measure the auditor uses to decide
    whether a normal-theory interval is defensible for a sample.

    Zero for perfectly symmetric data, positive when the right tail is
    long.  Degenerate samples (n < 3 or zero variance) return 0.0 —
    there is no asymmetry evidence to report.
    """
    n = len(values)
    if n < 3:
        return 0.0
    mean = sum(values) / n
    m2 = sum((v - mean) ** 2 for v in values) / n
    if m2 == 0.0:
        return 0.0
    m3 = sum((v - mean) ** 3 for v in values) / n
    g1 = m3 / m2 ** 1.5
    return g1 * math.sqrt(n * (n - 1)) / (n - 2)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional aggregate for speedups)."""
    if not values:
        raise ValueError("empty sample")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


# --------------------------------------------------------------------------
# Kernel density (violin-plot data)


@dataclass(frozen=True)
class ViolinSummary:
    """Density estimate + quartiles — the data behind a violin plot."""

    grid: Tuple[float, ...]
    density: Tuple[float, ...]
    stats: SummaryStats


def kernel_density(
    values: Sequence[float], points: int = 64, max_points: int = 4096
) -> ViolinSummary:
    """Gaussian KDE with Silverman's bandwidth on an even grid.

    The grid is refined (up to ``max_points``) until its step resolves
    the bandwidth, so the returned density integrates to ~1 except for
    pathologically outlier-dominated samples.  Degenerate (constant)
    samples get a single spike at the value.
    """
    if not values:
        raise ValueError("empty sample")
    stats = SummaryStats.from_values(values)
    if stats.std == 0.0 or len(values) == 1:
        return ViolinSummary(
            grid=(stats.mean,), density=(1.0,), stats=stats
        )
    n = len(values)
    iqr = stats.q3 - stats.q1
    sigma = min(stats.std, iqr / 1.349) if iqr > 0 else stats.std
    bandwidth = 0.9 * sigma * n ** (-0.2)
    if bandwidth <= 0:
        bandwidth = stats.std * n ** (-0.2)
    lo = stats.minimum - 3 * bandwidth
    hi = stats.maximum + 3 * bandwidth
    needed = int((hi - lo) / (bandwidth / 2.0)) + 1
    points = max(points, min(max_points, needed))
    step = (hi - lo) / (points - 1)
    grid = [lo + i * step for i in range(points)]
    norm = 1.0 / (n * bandwidth * math.sqrt(2 * math.pi))
    density = []
    for g in grid:
        acc = 0.0
        for v in values:
            z = (g - v) / bandwidth
            acc += math.exp(-0.5 * z * z)
        density.append(acc * norm)
    return ViolinSummary(grid=tuple(grid), density=tuple(density), stats=stats)
