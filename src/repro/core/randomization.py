"""Experimental setup randomization — the paper's prescription.

Section "Avoiding measurement bias" of the paper evaluates *setup
randomization*: instead of measuring one (arbitrary, possibly biased)
setup, sample many random setups — random link order, random environment
size — and report the mean outcome with a confidence interval.  A biased
single-setup experiment becomes one draw from the distribution this
protocol estimates.

:func:`evaluate_with_randomization` is the library's implementation;
:class:`RandomizedEvaluation` carries the estimate, its interval, and the
honest answer to "is the treatment beneficial?": yes / no / *can't tell*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.experiment import Experiment
from repro.core.setup import ExperimentalSetup
from repro.core.stats import ConfidenceInterval, t_confidence_interval
from repro.workloads.base import lcg_stream


@dataclass(frozen=True)
class RandomizedEvaluation:
    """Result of a randomized-setup evaluation of base vs treatment."""

    speedups: Tuple[float, ...]
    interval: ConfidenceInterval
    setups: Tuple[ExperimentalSetup, ...]

    @property
    def mean(self) -> float:
        return self.interval.mean

    @property
    def conclusive(self) -> bool:
        """True when the CI excludes 1.0 — the data supports a verdict."""
        return not self.interval.contains(1.0)

    @property
    def verdict(self) -> str:
        """"beneficial", "harmful", or "inconclusive"."""
        if not self.conclusive:
            return "inconclusive"
        return "beneficial" if self.interval.lo > 1.0 else "harmful"

    def summary_line(self) -> str:
        return (
            f"speedup {self.mean:.4f} {self.interval} over "
            f"{len(self.speedups)} random setups -> {self.verdict}"
        )

    @property
    def distinct_setups(self) -> int:
        """Number of *different* setups behind the sample.  Equal to
        ``len(speedups)`` for a clean randomized run; smaller when runs
        were replicated under a shared setup (pseudoreplication — see
        the ``repro audit`` crime taxonomy)."""
        return len(set(self.setups))

    def analysis(
        self, target_rel_width: float = 0.01, seed: int = 0
    ):
        """Full inference work-up of this evaluation's speedup sample.

        Returns a :class:`repro.stats.SpeedupAnalysis` — nonparametric
        test, BCa interval, effect size, and the sequential sample-size
        recommendation — built from the already-measured speedups (no
        re-measurement).  Raises
        :class:`~repro.core.errors.StatsError` on degenerate samples,
        like the interval constructors.
        """
        from repro.stats.speedup import analyze_speedups

        return analyze_speedups(
            self.speedups,
            distinct_setups=self.distinct_setups,
            level=self.interval.level,
            target_rel_width=target_rel_width,
            seed=seed,
        )


#: Parameters :func:`random_setups` knows how to randomize.  The paper's
#: protocol uses the first two; the rest are library extensions for
#: studies that also want loader/linker policies in the sampled space.
DIMENSIONS = ("link_order", "env_bytes", "stack_align", "function_alignment")

_STACK_ALIGN_CHOICES = (4, 8, 16)
_FUNCTION_ALIGN_CHOICES = (1, 4, 16, 64)


def random_setups(
    base: ExperimentalSetup,
    modules: Sequence[str],
    n: int,
    seed: int = 0,
    env_range: Tuple[int, int] = (100, 4096),
    dimensions: Sequence[str] = ("link_order", "env_bytes"),
) -> List[ExperimentalSetup]:
    """Sample ``n`` randomized variants of ``base``.

    By default randomizes exactly the two parameters the paper shows to
    be biased: the link order (uniform permutation) and the environment
    size (uniform in ``env_range``).  ``dimensions`` may add
    ``"stack_align"`` and ``"function_alignment"`` for studies that also
    randomize loader/linker policy.  Everything the experimenter
    *intends* to hold fixed (machine, compiler, O-level) is preserved.
    """
    unknown = set(dimensions) - set(DIMENSIONS)
    if unknown:
        raise ValueError(f"unknown randomization dimensions: {sorted(unknown)}")
    rng = lcg_stream(seed + 211)
    lo, hi = env_range
    if hi <= lo:
        raise ValueError(f"bad env_range {env_range}")
    out: List[ExperimentalSetup] = []
    for __ in range(n):
        changes = {}
        if "link_order" in dimensions:
            perm = list(modules)
            for i in range(len(perm) - 1, 0, -1):
                j = rng() % (i + 1)
                perm[i], perm[j] = perm[j], perm[i]
            changes["link_order"] = tuple(perm)
        if "env_bytes" in dimensions:
            changes["env_bytes"] = lo + rng() % (hi - lo)
        if "stack_align" in dimensions:
            changes["stack_align"] = _STACK_ALIGN_CHOICES[
                rng() % len(_STACK_ALIGN_CHOICES)
            ]
        if "function_alignment" in dimensions:
            changes["function_alignment"] = _FUNCTION_ALIGN_CHOICES[
                rng() % len(_FUNCTION_ALIGN_CHOICES)
            ]
        out.append(base.with_changes(**changes))
    return out


def _mirror_randomized_fields(
    treatment: ExperimentalSetup, setup: ExperimentalSetup
) -> ExperimentalSetup:
    """Apply a sampled setup's randomized parameters to the treatment so
    base and treatment are always measured under the *same* setup."""
    return treatment.with_changes(
        link_order=setup.link_order,
        env_bytes=setup.env_bytes,
        stack_align=setup.stack_align,
        function_alignment=setup.function_alignment,
    )


def paired_random_setups(
    experiment: Experiment,
    base: ExperimentalSetup,
    treatment: ExperimentalSetup,
    n_setups: int,
    seed: int = 0,
    env_range: Tuple[int, int] = (100, 4096),
    dimensions: Sequence[str] = ("link_order", "env_bytes"),
) -> List[Tuple[ExperimentalSetup, ExperimentalSetup]]:
    """The (base, treatment) setup pairs the randomized protocol will
    measure — exposed so callers (the CLI, the parallel sweep runner,
    the benchmark harness) can pre-measure them out of order and let
    :func:`evaluate_with_randomization` consume cache hits."""
    modules = experiment.workload.module_names()
    sampled = random_setups(
        base, modules, n_setups, seed=seed, env_range=env_range,
        dimensions=dimensions,
    )
    return [(s, _mirror_randomized_fields(treatment, s)) for s in sampled]


def evaluate_with_randomization(
    experiment: Experiment,
    base: ExperimentalSetup,
    treatment: ExperimentalSetup,
    n_setups: int = 20,
    seed: int = 0,
    level: float = 0.95,
    env_range: Tuple[int, int] = (100, 4096),
    dimensions: Sequence[str] = ("link_order", "env_bytes"),
    progress: Optional[Callable[[int, int], None]] = None,
) -> RandomizedEvaluation:
    """The paper's recommended protocol, end to end.

    For each of ``n_setups`` random setups, measure base and treatment
    under the *same* randomized setup and record the speedup; report the
    mean and its ``level`` Student-t confidence interval.

    ``dimensions`` selects what gets randomized (see
    :func:`random_setups`); ``progress`` is called as
    ``progress(done, total)``.
    """
    if n_setups < 2:
        raise ValueError("randomization needs at least 2 setups")
    pairs = paired_random_setups(
        experiment, base, treatment, n_setups, seed=seed,
        env_range=env_range, dimensions=dimensions,
    )
    speedups: List[float] = []
    for i, (setup, treat) in enumerate(pairs):
        speedups.append(
            experiment.run(setup).cycles / experiment.run(treat).cycles
        )
        if progress is not None:
            progress(i + 1, n_setups)
    interval = t_confidence_interval(speedups, level=level)
    return RandomizedEvaluation(
        speedups=tuple(speedups),
        interval=interval,
        setups=tuple(s for s, _ in pairs),
    )


def speedup_convergence(
    speedups: Sequence[float], level: float = 0.95
) -> List[Tuple[int, float]]:
    """Relative-half-width trajectory of a randomized run's speedup
    sample — the F8 convergence curve as plain data.

    ``(n, half_width / |mean|)`` for every prefix with n >= 2, computed
    sequentially as an experimenter adding setups would have seen it.
    Raises :class:`~repro.core.errors.StatsError` for samples shorter
    than 2 or out-of-range levels; all-identical prefixes contribute
    width 0.0 (already converged).
    """
    from repro.stats.samplesize import convergence_trajectory

    return convergence_trajectory(speedups, level=level)


def required_setup_count(
    speedups: Sequence[float],
    level: float = 0.95,
    target_rel_width: float = 0.01,
):
    """Project how many random setups this protocol needs in total.

    Delegates to :func:`repro.stats.required_setups`; returns its
    :class:`~repro.stats.SampleSizeEstimate` so the F8 report can print
    ``estimate.summary_line()`` next to the interval table.
    """
    from repro.stats.samplesize import required_setups

    return required_setups(
        speedups, level=level, target_rel_width=target_rel_width
    )


def interval_vs_setup_count(
    experiment: Experiment,
    base: ExperimentalSetup,
    treatment: ExperimentalSetup,
    counts: Sequence[int] = (4, 8, 12, 16, 24, 32),
    seed: int = 0,
    level: float = 0.95,
) -> List[Tuple[int, RandomizedEvaluation]]:
    """How the interval tightens as setups are added (Figure F8's x-axis).

    Prefixes of one sampled setup sequence, so the estimates are nested
    (as they would be for an experimenter adding runs).
    """
    max_n = max(counts)
    pairs = paired_random_setups(experiment, base, treatment, max_n, seed=seed)
    setups = [s for s, _ in pairs]
    speedups: List[float] = []
    for setup, treat in pairs:
        speedups.append(
            experiment.run(setup).cycles / experiment.run(treat).cycles
        )
    out: List[Tuple[int, RandomizedEvaluation]] = []
    for n in counts:
        if n < 2 or n > max_n:
            raise ValueError(f"count {n} out of range")
        out.append(
            (
                n,
                RandomizedEvaluation(
                    speedups=tuple(speedups[:n]),
                    interval=t_confidence_interval(speedups[:n], level=level),
                    setups=tuple(setups[:n]),
                ),
            )
        )
    return out
