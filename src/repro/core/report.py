"""Plain-text rendering of tables and figure series.

The benchmark harness prints each of the paper's tables and figures as
text: aligned tables, horizontal-bar series (for the speedup-vs-parameter
figures), and ASCII violins.  Keeping rendering in one module lets every
bench produce consistent, diff-able output.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.stats import ViolinSummary


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a header rule."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row} does not match headers {headers}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    xs: Sequence[object],
    ys: Sequence[float],
    title: str = "",
    width: int = 50,
    marker: str = "*",
    reference: Optional[float] = None,
) -> str:
    """Horizontal bar chart of ``ys`` against labels ``xs``.

    With ``reference`` set (e.g. speedup 1.0), a ``|`` column marks it so
    sign flips are visible at a glance.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    if not ys:
        return title
    lo = min(ys)
    hi = max(ys)
    if reference is not None:
        lo = min(lo, reference)
        hi = max(hi, reference)
    span = hi - lo or 1.0

    def col(v: float) -> int:
        return int(round((v - lo) / span * (width - 1)))

    ref_col = col(reference) if reference is not None else -1
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append(
            f"  scale: {lo:.4f} .. {hi:.4f}"
            + (f"  (| marks {reference})" if reference is not None else "")
        )
    label_w = max(len(str(x)) for x in xs)
    for x, y in zip(xs, ys):
        c = col(y)
        row = [" "] * width
        if 0 <= ref_col < width:
            row[ref_col] = "|"
        row[c] = marker
        lines.append(f"{str(x).rjust(label_w)}  {''.join(row)}  {y:.4f}")
    return "\n".join(lines)


def render_violin(
    summary: ViolinSummary, title: str = "", width: int = 40, rows: int = 9
) -> str:
    """ASCII violin: density silhouette over the value range."""
    lines: List[str] = []
    if title:
        lines.append(title)
    grid, density = summary.grid, summary.density
    if len(grid) == 1:
        lines.append(f"  all values = {grid[0]:.4f}")
        return "\n".join(lines)
    max_d = max(density) or 1.0
    step = max(1, len(grid) // rows)
    for i in range(0, len(grid), step):
        bar = int(round(density[i] / max_d * width))
        lines.append(f"  {grid[i]:>12.4f} {'#' * bar}")
    st = summary.stats
    lines.append(
        f"  n={st.n} min={st.minimum:.4f} q1={st.q1:.4f} "
        f"median={st.median:.4f} q3={st.q3:.4f} max={st.maximum:.4f}"
    )
    return "\n".join(lines)


def render_interval_row(
    label: str, lo: float, mean: float, hi: float, scale: Tuple[float, float],
    width: int = 50, reference: Optional[float] = None,
    method: Optional[str] = None,
) -> str:
    """One `(----*----)` confidence-interval row on a fixed scale.

    ``method`` names the procedure behind the interval ("t",
    "bootstrap", "BCa") so the rendered table is self-describing; omit
    it only for rows whose method is stated elsewhere in the report.
    """
    smin, smax = scale
    span = smax - smin or 1.0

    def col(v: float) -> int:
        return max(0, min(width - 1, int(round((v - smin) / span * (width - 1)))))

    row = [" "] * width
    if reference is not None:
        row[col(reference)] = "|"
    for i in range(col(lo), col(hi) + 1):
        if row[i] == " ":
            row[i] = "-"
    row[col(lo)] = "("
    row[col(hi)] = ")"
    row[col(mean)] = "*"
    suffix = f" ({method})" if method else ""
    return f"{label}  {''.join(row)}  [{lo:.4f}, {hi:.4f}]{suffix}"
