"""The paper's contribution: measurement-bias methodology.

- :mod:`~repro.core.setup` — experimental setups as first-class values,
- :mod:`~repro.core.experiment` — self-checking measurement harness,
- :mod:`~repro.core.bias` — bias metrics and the env-size / link-order
  study protocols,
- :mod:`~repro.core.randomization` — the paper's setup-randomization
  evaluation protocol,
- :mod:`~repro.core.errors` — the structured error taxonomy with its
  retryable/fatal classification,
- :mod:`~repro.core.runner` — fault-tolerant parallel sweep execution
  with retries, quarantine and resumable, compactable checkpoints,
- :mod:`~repro.core.supervisor` — the supervised worker pool behind
  parallel sweeps (heartbeats, crash/hang failover, respawn budget),
- :mod:`~repro.core.distributed` — multi-host sweeps: TCP sweep agents
  and the coordinator pool that dispatches to them (same supervision
  guarantees, same report bytes; see docs/distributed.md),
- :mod:`~repro.core.stats` — intervals, summaries, violin densities,
- :mod:`~repro.core.survey` — the 133-paper literature survey analysis,
- :mod:`~repro.core.report` — plain-text table/figure rendering.
"""

from repro.core.bias import (
    BiasReport,
    StudyResult,
    detect_bias,
    env_size_study,
    link_order_study,
    sample_link_orders,
    suite_bias_table,
)
from repro.core.errors import (
    ArchiveCorruption,
    BuildError,
    ReproError,
    RunTimeout,
    SimulationError,
    VerificationError,
    classify,
    is_retryable,
)
from repro.core.experiment import Experiment, Measurement
from repro.core.noise import (
    BiasVsNoiseResult,
    NoiseModel,
    RepeatedMeasurement,
    bias_vs_noise_demo,
    repeated_measurement,
)
from repro.core.randomization import (
    RandomizedEvaluation,
    evaluate_with_randomization,
    interval_vs_setup_count,
    paired_random_setups,
    random_setups,
)
from repro.core.runner import (
    CompactionStats,
    Journal,
    QuarantineEntry,
    RunnerConfig,
    SweepReport,
    SweepResult,
    SweepRunner,
    compact_journal,
    journal_needs_compaction,
)
from repro.core.setup import ExperimentalSetup
from repro.core.stats import (
    ConfidenceInterval,
    SummaryStats,
    ViolinSummary,
    bootstrap_confidence_interval,
    geometric_mean,
    kernel_density,
    t_confidence_interval,
)

__all__ = [
    "ArchiveCorruption",
    "BiasReport",
    "BiasVsNoiseResult",
    "BuildError",
    "CompactionStats",
    "Journal",
    "QuarantineEntry",
    "ReproError",
    "RunTimeout",
    "RunnerConfig",
    "SimulationError",
    "SweepReport",
    "SweepResult",
    "SweepRunner",
    "classify",
    "compact_journal",
    "is_retryable",
    "journal_needs_compaction",
    "paired_random_setups",
    "NoiseModel",
    "RepeatedMeasurement",
    "bias_vs_noise_demo",
    "repeated_measurement",
    "ConfidenceInterval",
    "Experiment",
    "ExperimentalSetup",
    "Measurement",
    "RandomizedEvaluation",
    "StudyResult",
    "SummaryStats",
    "VerificationError",
    "ViolinSummary",
    "bootstrap_confidence_interval",
    "detect_bias",
    "env_size_study",
    "evaluate_with_randomization",
    "geometric_mean",
    "interval_vs_setup_count",
    "kernel_density",
    "link_order_study",
    "random_setups",
    "sample_link_orders",
    "suite_bias_table",
    "t_confidence_interval",
]
