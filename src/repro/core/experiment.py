"""Experiments: measure a workload under explicit setups.

An :class:`Experiment` fixes a (workload, input) pair and measures it
under any number of :class:`~repro.core.setup.ExperimentalSetup`\\ s.
Every run is **self-checking** — the simulated exit value is compared
against the workload's Python reference — so a miscompilation can never
masquerade as a performance result.

Builds and measurements are memoized: sweeping 100 environment sizes
compiles twice (O2 and O3), not 200 times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro import faults
from repro._errors import BuildError, SimulationError, VerificationError
from repro.arch.counters import PerfCounters, RunResult
from repro.arch.engine import execute, fastpath_enabled
from repro.core.setup import ExperimentalSetup
from repro.isa.program import Executable
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs import trace as obs_trace
from repro.os.loader import load_process
from repro.toolchain.compiler import compile_program
from repro.toolchain.errors import ToolchainError
from repro.toolchain.linker import LinkLayout, link
from repro.workloads.base import Workload


@dataclass(frozen=True)
class Measurement:
    """One measured run."""

    workload: str
    size: str
    seed: int
    setup: ExperimentalSetup
    counters: PerfCounters
    exit_value: int
    function_cycles: Dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def cycles(self) -> float:
        """The headline quantity every experiment compares."""
        return self.counters.cycles

    def __repr__(self) -> str:
        return (
            f"Measurement({self.workload}/{self.size} @ {self.setup.describe()}: "
            f"{self.cycles:.0f} cycles)"
        )


class Experiment:
    """Measurement harness for one (workload, input) pair.

    Args:
        workload: the benchmark to measure.
        size: input class ("test", "train", "ref").
        seed: input generator seed.
        verify: check every run against the Python reference (default on;
            disable only in throughput-critical sweeps where the same
            binary/input pair was verified before).
    """

    def __init__(
        self,
        workload: Workload,
        size: str = "test",
        seed: int = 0,
        verify: bool = True,
    ) -> None:
        self.workload = workload
        self.size = size
        self.seed = seed
        self.verify = verify
        self._bindings = workload.input_for(size, seed)
        self._expected: Optional[int] = None
        self._build_cache: Dict[tuple, Executable] = {}
        self._run_cache: Dict[ExperimentalSetup, Measurement] = {}
        #: Optional content-addressed store (see :meth:`attach_store`).
        self._store = None

    def attach_store(self, store) -> None:
        """Back the build cache with a content-addressed store.

        ``store`` is a :class:`repro.store.MeasurementStore` (typed
        loosely to keep this module store-agnostic).  Once attached,
        :meth:`build` probes the store before compiling and publishes
        fresh executables to it, so a new process — or a new machine
        sharing the store directory — skips compilation for any build
        key some earlier run already paid for.  Measurement-level
        probing stays in the sweep runner; the experiment only ever
        sees the artifact side.
        """
        self._store = store

    @property
    def expected(self) -> int:
        """Reference exit value (computed lazily, once)."""
        if self._expected is None:
            self._expected = self.workload.expected(self._bindings)
        return self._expected

    # -- building ---------------------------------------------------------

    def _fault_key(self, setup: ExperimentalSetup) -> str:
        return faults.fault_key(self.workload.name, self.size, self.seed, setup)

    def build(self, setup: ExperimentalSetup) -> Executable:
        """Compile and link the workload for ``setup`` (memoized).

        Raises :class:`~repro.core.errors.BuildError` when the toolchain
        fails (retryable when the failure is crash-style, e.g. an
        injected internal compiler error).
        """
        if faults.should_inject("build", self._fault_key(setup)):
            raise BuildError(
                f"internal compiler error (injected) building "
                f"{self.workload.name} at {setup.describe()}",
                retryable=True,
            )
        key = setup.build_key()
        exe = self._build_cache.get(key)
        if exe is None and self._store is not None:
            exe = self._store.get_artifact(self, setup)
            if exe is not None:
                self._build_cache[key] = exe
        if exe is None:
            with obs_trace.span(
                "compile",
                category="toolchain",
                workload=self.workload.name,
                setup=setup.describe(),
            ):
                try:
                    modules = compile_program(
                        dict(self.workload.sources),
                        opt_level=setup.opt_level,
                        profile=setup.compiler,
                    )
                    layout = LinkLayout(
                        function_alignment=setup.function_alignment
                    )
                    with obs_trace.span(
                        "link", category="toolchain", modules=len(modules)
                    ):
                        exe = link(modules, order=setup.link_order, layout=layout)
                except ToolchainError as exc:
                    raise BuildError(
                        f"{self.workload.name} at {setup.describe()}: {exc}",
                        context={"workload": self.workload.name},
                    ) from exc
            self._build_cache[key] = exe
            obs_metrics.counter("experiment.builds").inc()
            if self._store is not None:
                self._store.put_artifact(self, setup, exe)
        else:
            obs_metrics.counter("experiment.build_cache_hits").inc()
        if fastpath_enabled():
            # Pre-compile the engine's block table at build time so the
            # one-time decode-cache cost never lands inside a measured
            # run (idempotent: a warm cache returns immediately).
            from repro.arch import blockcache

            with obs_trace.span(
                "blockcache-warm",
                category="toolchain",
                workload=self.workload.name,
            ):
                blockcache.warm(exe, setup.machine_config())
        return exe

    # -- running ----------------------------------------------------------

    def run(
        self,
        setup: ExperimentalSetup,
        profile_functions: bool = False,
        max_cycles: Optional[float] = None,
    ) -> Measurement:
        """Measure the workload under ``setup`` (memoized per setup).

        ``max_cycles`` arms the engine's cycle-budget watchdog (used by
        the sweep runner against hung runs); a blown budget raises
        :class:`~repro.core.errors.RunTimeout`.  Raises
        :class:`VerificationError` if the run's exit value differs from
        the Python reference.
        """
        if not profile_functions:
            cached = self._run_cache.get(setup)
            if cached is not None:
                obs_metrics.counter("experiment.run_cache_hits").inc()
                return cached
        fkey = self._fault_key(setup)
        exe = self.build(setup)
        image = load_process(
            exe,
            environment=setup.environment(),
            inputs=self._bindings,
            stack_align=setup.stack_align,
        )
        budget = max_cycles
        if faults.should_inject("hang", fkey):
            budget = faults.HANG_CYCLE_BUDGET
        with obs_trace.span(
            "run",
            category="engine",
            workload=self.workload.name,
            size=self.size,
            setup=setup.describe(),
        ) as run_span:
            wall_start = time.perf_counter()
            result: RunResult = execute(
                image,
                setup.machine_config().build(),
                profile_functions=profile_functions,
                max_cycles=budget,
                engine_profile=obs_perf.engine_profile(),
            )
            wall = time.perf_counter() - wall_start
            run_span.set(
                cycles=result.counters.cycles,
                instructions=result.counters.instructions,
            )
        reg = obs_metrics.registry()
        reg.counter("engine.runs").inc()
        reg.counter("engine.instructions").inc(result.counters.instructions)
        reg.counter("engine.simulated_cycles").inc(result.counters.cycles)
        reg.histogram("engine.run_seconds").observe(wall)
        if wall > 0:
            # Retirement rate of the most recent run: the headline
            # throughput figure for "how fast is the lab itself?".
            reg.gauge("engine.ips").set(
                round(result.counters.instructions / wall)
            )
        if faults.should_inject("counters", fkey):
            result.counters.cycles = -result.counters.cycles
        if not (
            result.counters.cycles > 0
            and result.counters.instructions > 0
            and result.counters.cycles != float("inf")
        ):
            raise SimulationError(
                f"{self.workload.name}/{self.size} under {setup.describe()}: "
                f"implausible counters (cycles={result.counters.cycles}) — "
                "corrupted measurement",
                retryable=True,
            )
        exit_value = result.exit_value
        if faults.should_inject("verify", fkey):
            exit_value = exit_value + 1
        if self.verify:
            obs_metrics.counter("experiment.verifications").inc()
            if exit_value != self.expected:
                raise VerificationError(
                    f"{self.workload.name}/{self.size} under {setup.describe()}: "
                    f"exit {exit_value} != expected {self.expected}"
                )
        measurement = Measurement(
            workload=self.workload.name,
            size=self.size,
            seed=self.seed,
            setup=setup,
            counters=result.counters,
            exit_value=exit_value,
            function_cycles=result.function_cycles,
        )
        if not profile_functions:
            self._run_cache[setup] = measurement
        return measurement

    def profile(
        self,
        setup: ExperimentalSetup,
        functions: bool = True,
        pcs: bool = False,
        max_cycles: Optional[float] = None,
    ) -> RunResult:
        """Instrumented, *uncached* run returning the raw engine result.

        Enables per-function cycle attribution (``functions``) and the
        per-PC profile hook (``pcs``) — the inputs to
        :mod:`repro.analysis.profilediff`.  Profiling runs skip the
        measurement cache and the verification/fault machinery: they
        explain a measurement, they are not one.
        """
        exe = self.build(setup)
        image = load_process(
            exe,
            environment=setup.environment(),
            inputs=self._bindings,
            stack_align=setup.stack_align,
        )
        with obs_trace.span(
            "profile",
            category="engine",
            workload=self.workload.name,
            setup=setup.describe(),
            pcs=pcs,
        ):
            return execute(
                image,
                setup.machine_config().build(),
                profile_functions=functions,
                profile_pcs=pcs,
                max_cycles=max_cycles,
                engine_profile=obs_perf.engine_profile(),
            )

    def prime(self, measurements: Iterable[Measurement]) -> None:
        """Seed the run cache with externally produced measurements.

        Used by the sweep runner: measurements made in worker processes
        (or reloaded from a checkpoint journal) are primed here so that
        subsequent :meth:`run` calls for the same setups are cache hits
        — the serial analysis code never re-measures what a parallel
        sweep already measured.
        """
        for m in measurements:
            if m is not None:
                self._run_cache.setdefault(m.setup, m)

    def sweep(self, setups: Iterable[ExperimentalSetup]) -> List[Measurement]:
        """Measure under every setup, in order."""
        return [self.run(s) for s in setups]

    def speedup(
        self, base: ExperimentalSetup, treatment: ExperimentalSetup
    ) -> float:
        """cycles(base) / cycles(treatment): > 1 means treatment wins."""
        return self.run(base).cycles / self.run(treatment).cycles

    def speedups(
        self,
        pairs: Iterable[Tuple[ExperimentalSetup, ExperimentalSetup]],
    ) -> List[float]:
        """Speedups for many (base, treatment) pairs."""
        return [self.speedup(b, t) for b, t in pairs]

    def clear_caches(self) -> None:
        """Drop memoized builds and runs (used by ablations that mutate
        global state between sweeps)."""
        self._build_cache.clear()
        self._run_cache.clear()

    def clear_run_cache(self) -> None:
        """Drop memoized measurements but keep compiled executables
        (used to time fresh runs of an already-built binary)."""
        self._run_cache.clear()

    def __repr__(self) -> str:
        return f"Experiment({self.workload.name}, size={self.size!r}, seed={self.seed})"
