"""The experimental setup abstraction.

The paper's thesis is that a performance conclusion is a function of the
*entire* experimental setup — including parts nobody reports, like the
UNIX environment size and the link order.  :class:`ExperimentalSetup`
makes every such parameter an explicit, first-class value, so studies can
vary, randomize and report them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from repro.arch.machines import MachineConfig, get_machine
from repro.os.environment import Environment

MachineLike = Union[str, MachineConfig]


@dataclass(frozen=True)
class ExperimentalSetup:
    """One complete configuration under which a program is measured.

    Attributes:
        machine: machine preset name ("core2", "pentium4", "m5_o3cpu") or
            a custom :class:`MachineConfig` (ablations).
        compiler: vendor profile name ("gcc" or "icc").
        opt_level: 0-3.
        link_order: module-name permutation handed to the linker; ``None``
            uses the workload's declared order.
        env_bytes: total UNIX environment size in bytes; ``None`` uses the
            unmodified baseline environment.
        env_base: the baseline environment grown to ``env_bytes``.
        stack_align: loader's final stack-pointer alignment.
        function_alignment: linker function alignment (ablation A1).
    """

    machine: MachineLike = "core2"
    compiler: str = "gcc"
    opt_level: int = 2
    link_order: Optional[Tuple[str, ...]] = None
    env_bytes: Optional[int] = None
    env_base: Environment = field(default_factory=Environment.typical)
    stack_align: int = 4
    function_alignment: int = 16

    def __post_init__(self) -> None:
        if self.opt_level not in (0, 1, 2, 3):
            raise ValueError(f"opt_level must be 0-3, got {self.opt_level}")
        if self.link_order is not None and not isinstance(self.link_order, tuple):
            object.__setattr__(self, "link_order", tuple(self.link_order))

    def with_changes(self, **changes) -> "ExperimentalSetup":
        """A copy with the given fields replaced (the idiomatic way to
        derive a treatment setup from a base setup)."""
        return replace(self, **changes)

    def machine_config(self) -> MachineConfig:
        """Resolve the machine field to a concrete configuration."""
        if isinstance(self.machine, MachineConfig):
            return self.machine
        return get_machine(self.machine)

    def environment(self) -> Environment:
        """Resolve the environment this setup runs under."""
        if self.env_bytes is None:
            return self.env_base
        return Environment.of_size(self.env_bytes, self.env_base)

    @property
    def machine_name(self) -> str:
        cfg = self.machine
        return cfg.name if isinstance(cfg, MachineConfig) else cfg

    def build_key(self) -> tuple:
        """Cache key for the *compiled and linked* artifact: every field
        that affects the executable (but not the run environment)."""
        return (
            self.compiler,
            self.opt_level,
            self.link_order,
            self.function_alignment,
        )

    def describe(self) -> str:
        """Compact human-readable description."""
        parts = [
            self.machine_name,
            self.compiler,
            f"O{self.opt_level}",
        ]
        if self.link_order is not None:
            parts.append("order=" + ",".join(self.link_order))
        if self.env_bytes is not None:
            parts.append(f"env={self.env_bytes}B")
        return " ".join(parts)

    def __str__(self) -> str:
        return self.describe()
