"""Literature survey: do papers control for measurement bias?

The paper surveys **133 recent papers from ASPLOS, PACT, PLDI and CGO**
and finds that none of them address the setup biases it demonstrates
(environment size, link order), and that the overwhelming majority
evaluate in a single experimental setup.

The original survey corpus is the authors' reading notes and is not
available, so this module ships a **synthetic corpus**: 133 records with
per-venue counts and attribute frequencies generated to be consistent
with the paper's stated aggregates (133 papers, 4 venues, zero papers
controlling for the two biases) and with plausible rates for the
attributes the paper discusses qualitatively.  Every record is marked
``synthetic=True``; the *analysis code* over the corpus is the
reproduced artifact, not the records themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Sequence, Tuple

from repro.workloads.base import lcg_stream

VENUES = ("ASPLOS", "PACT", "PLDI", "CGO")

#: Papers per venue, summing to the paper's 133.
_VENUE_COUNTS = {"ASPLOS": 32, "PACT": 29, "PLDI": 40, "CGO": 32}


@dataclass(frozen=True)
class PaperRecord:
    """One surveyed paper's experimental-setup reporting profile."""

    paper_id: int
    venue: str
    year: int
    uses_execution_time: bool
    uses_simulation: bool
    reports_compiler_version: bool
    reports_opt_flags: bool
    reports_hardware: bool
    reports_os_version: bool
    reports_environment_size: bool
    reports_link_order: bool
    num_hardware_platforms: int
    num_workload_suites: int
    uses_confidence_intervals: bool
    synthetic: bool = True


def _biased_coin(rng, percent: int) -> bool:
    return (rng() % 100) < percent


def generate_corpus(seed: int = 0) -> List[PaperRecord]:
    """The synthetic 133-paper corpus (deterministic for a given seed).

    Hard constraints (from the paper's text): 133 papers across the four
    venues; **no** paper reports environment size or link order.  Soft
    rates reflect the paper's qualitative discussion: most papers measure
    execution time, most report hardware and optimization flags, few
    report OS details, most use one hardware platform and no confidence
    intervals.
    """
    rng = lcg_stream(seed + 1033)
    records: List[PaperRecord] = []
    paper_id = 0
    for venue in VENUES:
        for __ in range(_VENUE_COUNTS[venue]):
            paper_id += 1
            uses_sim = _biased_coin(rng, 35 if venue in ("ASPLOS", "PACT") else 15)
            platforms = 1
            roll = rng() % 100
            if roll >= 85:
                platforms = 3
            elif roll >= 60:
                platforms = 2
            records.append(
                PaperRecord(
                    paper_id=paper_id,
                    venue=venue,
                    year=2006 + (rng() % 3),
                    uses_execution_time=_biased_coin(rng, 85),
                    uses_simulation=uses_sim,
                    reports_compiler_version=_biased_coin(rng, 45),
                    reports_opt_flags=_biased_coin(rng, 55),
                    reports_hardware=_biased_coin(rng, 80),
                    reports_os_version=_biased_coin(rng, 30),
                    reports_environment_size=False,
                    reports_link_order=False,
                    num_hardware_platforms=platforms,
                    num_workload_suites=1 + (rng() % 100 >= 70),
                    uses_confidence_intervals=_biased_coin(rng, 16),
                )
            )
    return records


# --------------------------------------------------------------------------
# Analyses (the reproduced artifact)


def papers_per_venue(corpus: Sequence[PaperRecord]) -> Dict[str, int]:
    counts = {v: 0 for v in VENUES}
    for rec in corpus:
        counts[rec.venue] += 1
    return counts


def attribute_rates(corpus: Sequence[PaperRecord]) -> Dict[str, float]:
    """Fraction of papers with each boolean reporting attribute."""
    bool_fields = [
        f.name
        for f in fields(PaperRecord)
        if f.type in (bool, "bool") and f.name != "synthetic"
    ]
    n = len(corpus)
    return {
        name: sum(1 for rec in corpus if getattr(rec, name)) / n
        for name in bool_fields
    }


def bias_blind_count(corpus: Sequence[PaperRecord]) -> int:
    """Papers controlling for NEITHER environment size nor link order —
    the paper's headline survey number (all 133 of 133)."""
    return sum(
        1
        for rec in corpus
        if not rec.reports_environment_size and not rec.reports_link_order
    )


def single_setup_fraction(corpus: Sequence[PaperRecord]) -> float:
    """Fraction evaluating on a single hardware platform."""
    return sum(1 for rec in corpus if rec.num_hardware_platforms == 1) / len(
        corpus
    )


def survey_table(corpus: Sequence[PaperRecord]) -> List[Tuple[str, str]]:
    """(metric, value) rows reproducing the survey's reported numbers."""
    rates = attribute_rates(corpus)
    venue_counts = papers_per_venue(corpus)
    rows: List[Tuple[str, str]] = [
        ("papers surveyed", str(len(corpus))),
        (
            "venues",
            ", ".join(f"{v}={venue_counts[v]}" for v in VENUES),
        ),
        (
            "report environment size",
            f"{int(rates['reports_environment_size'] * len(corpus))}",
        ),
        (
            "report link order",
            f"{int(rates['reports_link_order'] * len(corpus))}",
        ),
        ("blind to both biases", str(bias_blind_count(corpus))),
        (
            "single hardware platform",
            f"{single_setup_fraction(corpus):.0%}",
        ),
        (
            "use confidence intervals",
            f"{rates['uses_confidence_intervals']:.0%}",
        ),
        (
            "measure execution time",
            f"{rates['uses_execution_time']:.0%}",
        ),
    ]
    return rows
