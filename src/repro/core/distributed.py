"""Distributed multi-host sweeps: a coordinator/agent layer over TCP.

The paper's remedy for measurement bias is setup randomization *at
scale* — the more randomized setups a campaign can afford, the tighter
its confidence intervals.  One host caps that affordance; this module
removes the cap while preserving the lab's sacred invariant: **the
distributed report is byte-identical to the fault-free serial run**.

Two halves:

- an **agent** (``repro agent --listen HOST:PORT``) wraps a local
  :class:`~repro.core.supervisor.SupervisedPool` behind a TCP listener:
  it accepts one coordinator session at a time, receives setups, runs
  them across its worker processes, and streams results (and heartbeats)
  back;
- the **coordinator** (:class:`AgentPool`, reached via
  ``repro run ... --hosts host1:port,host2:port``) treats each agent as
  a super-worker with ``jobs`` capacity behind the same
  :class:`~repro.core.supervisor.DispatchPool` interface the local pool
  implements, so the sweep runner cannot tell local workers from remote
  hosts.

Failure philosophy (mirroring the supervised pool, one layer up):

- **framing** — every message is a length-prefixed frame whose payload
  carries its own SHA-256 (the checkpoint journal's record discipline,
  applied to the wire): a torn or corrupted frame is *detected*, never
  silently half-applied;
- **liveness** — agents heartbeat over the socket; an agent silent past
  ``hang_timeout`` is declared partitioned, whatever TCP thinks;
- **failover** — a lost agent's in-flight setups are requeued **at the
  same attempt number**; network loss never consumes a measurement's
  retry budget;
- **recovery** — the coordinator reconnects to lost agents within a
  bounded budget (a partition heals; a dead agent's refused connections
  spend the budget and drop it from the roster);
- **honest degradation** — when no agent remains the pool emits a
  ``degraded`` event and the runner finishes the sweep locally,
  naming every setup in the report; never a silent partial table.

Chaos testing: three network fault kinds (:mod:`repro.faults`) make
every path above deterministic and CI-pinnable — ``agent_crash`` (the
agent process dies on task receipt), ``net_partition`` (the connection
drops at dispatch), ``message_corrupt`` (a task frame is corrupted in
flight; the agent's checksum check rejects it and hangs up).  See
docs/distributed.md for the wire protocol, the failure matrix, and the
operator's runbook.
"""

from __future__ import annotations

import collections
import hashlib
import hmac
import json
import os
import queue
import secrets
import select
import socket
import struct
import threading
import time
import weakref
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro import __version__, faults
from repro._errors import ReproError
from repro.core import runner as _runner
from repro.core.session import (
    canonical_json,
    record_checksum,
    setup_from_dict,
    setup_to_dict,
)
from repro.core.supervisor import (
    DEFAULT_HANG_TIMEOUT,
    DispatchPool,
    PoolEvent,
    SupervisedPool,
    Task,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Wire protocol version; the handshake rejects a mismatch loudly
#: rather than let two releases talk past each other.  v2 added the
#: agent's ``challenge`` message ahead of the coordinator's ``hello``
#: (replay-proof challenge-response authentication).
PROTOCOL_VERSION = 2

#: Frame magic: 4 bytes ahead of every length prefix, so a socket that
#: drifted out of sync fails fast instead of mis-framing forever.
MAGIC = b"RPR1"

_HEADER = struct.Struct("!4sI")

#: Upper bound on one frame's payload; a length beyond this means the
#: stream is corrupt (no legitimate message is near it).
MAX_FRAME_BYTES = 16 << 20


class ProtocolError(ReproError):
    """A TCP frame failed validation (magic, length, JSON, or checksum).

    Retryable by classification: the *connection* is unusable, but the
    coordinator's failover re-dispatches the in-flight work elsewhere.
    """

    retryable = True


class AgentUnavailable(ReproError):
    """An agent named on the command line could not be reached.

    Fatal: a misspelled or unreachable ``--hosts`` entry is operator
    error and must fail the run loudly before any measurement starts.
    """

    retryable = False


# -- authentication ----------------------------------------------------------


def auth_proof(secret: str, nonce: str) -> str:
    """The hello's ``auth`` proof: HMAC-SHA256 of the agent's challenge
    nonce under the shared secret.

    The secret itself never crosses the wire, and neither does any
    replayable stand-in for it: the agent opens every session with a
    fresh random ``challenge`` nonce, the coordinator answers with this
    keyed digest over *that* nonce, and the agent compares with
    :func:`hmac.compare_digest` (so a byte-by-byte timing probe learns
    nothing).  A passive observer who captures a whole handshake holds
    a proof for a nonce that will never be issued again — unlike a
    static digest, it is not a password equivalent.  This authenticates
    *sessions*, not bytes — operators who need transport integrity
    against an active network attacker (who could hijack the TCP stream
    after the handshake) should tunnel agent traffic (ssh -L,
    WireGuard) as docs/distributed.md describes.
    """
    return hmac.new(
        secret.encode(), b"repro-agent-hello:" + nonce.encode(), hashlib.sha256
    ).hexdigest()


# -- fork hygiene ------------------------------------------------------------

#: Every TCP socket this module opens (listeners, sessions, links), so
#: fork-started pool workers can drop their inherited copies.
_process_sockets: "weakref.WeakSet[socket.socket]" = weakref.WeakSet()


def _track(sock: socket.socket) -> socket.socket:
    _process_sockets.add(sock)
    return sock


def close_inherited_sockets() -> None:
    """Close this process's copies of the distributed layer's sockets.

    The agent's :class:`~repro.core.supervisor.SupervisedPool` forks
    worker processes, and a forked child inherits every open file
    descriptor — the agent's listener, its session connection, and (when
    agent and coordinator share a process, as in loopback tests) the
    coordinator's link sockets too.  TCP only delivers EOF when the
    *last* copy of a socket closes, so a child that keeps those fds
    silently breaks close detection everywhere: a "crashed" agent's
    listener keeps accepting, a torn-down link never reads as closed,
    and sessions wedge instead of ending.  The agent passes this as the
    pool's ``child_setup`` so workers start with clean hands.
    """
    for sock in list(_process_sockets):
        try:
            sock.close()
        except OSError:
            pass


# -- addresses --------------------------------------------------------------


def parse_host(spec: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``; raises ValueError when malformed."""
    spec = spec.strip()
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"bad host spec {spec!r}: expected HOST:PORT")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"bad port in host spec {spec!r}") from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in host spec {spec!r}")
    return host, port


def parse_hosts(spec: str) -> List[Tuple[str, int]]:
    """Parse a ``--hosts`` list: ``"h1:p1,h2:p2"`` -> ``[(h1, p1), ...]``."""
    entries = [part for part in spec.split(",") if part.strip()]
    if not entries:
        raise ValueError("empty --hosts list")
    return [parse_host(part) for part in entries]


# -- framing ----------------------------------------------------------------


def encode_message(
    kind: str, data: Dict[str, Any], corrupt: bool = False
) -> bytes:
    """One checksummed, length-prefixed frame, ready to write.

    The payload is the canonical JSON of ``{"kind", "data", "sha256"}``
    where the checksum covers ``data`` — the same record discipline as
    the checkpoint journal, applied to the wire.  ``corrupt=True`` flips
    the payload's final byte (the ``message_corrupt`` chaos kind); the
    receiver's checksum validation must reject it.  Shared by the
    blocking socket path below and the service coordinator's asyncio
    transports, so every transport speaks byte-identical frames.
    """
    payload = canonical_json(
        {"kind": kind, "data": data, "sha256": record_checksum(data)}
    ).encode()
    frame = _HEADER.pack(MAGIC, len(payload)) + payload
    if corrupt:
        frame = frame[:-1] + bytes([frame[-1] ^ 0xFF])
    return frame


def decode_payload(payload: bytes) -> Tuple[str, Dict[str, Any]]:
    """Validate one frame payload; raises :class:`ProtocolError` on any
    corruption (JSON, shape, or checksum)."""
    try:
        message = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload is not an object")
    kind = message.get("kind")
    data = message.get("data")
    if not isinstance(kind, str) or not isinstance(data, dict):
        raise ProtocolError("frame payload missing kind/data")
    if message.get("sha256") != record_checksum(data):
        raise ProtocolError(f"frame checksum mismatch on {kind!r} message")
    return kind, data


def check_frame_header(magic: bytes, length: int) -> None:
    """Validate a frame's magic + declared length before reading it."""
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")


def send_message(
    sock: socket.socket, kind: str, data: Dict[str, Any], corrupt: bool = False
) -> None:
    """Send one checksummed, length-prefixed message (see
    :func:`encode_message`)."""
    sock.sendall(encode_message(kind, data, corrupt=corrupt))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; raises EOFError on a clean close."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError("connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Tuple[str, Dict[str, Any]]:
    """Receive one message; raises :class:`ProtocolError` on corruption,
    EOFError on a clean close, OSError/socket.timeout on transport loss."""
    magic, length = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    check_frame_header(magic, length)
    return decode_payload(_recv_exact(sock, length))


# -- task payload <-> wire --------------------------------------------------


def payload_to_wire(payload: Tuple) -> Dict[str, Any]:
    """A runner task payload (one measurement attempt) as JSON.

    The tuple layout is :func:`repro.core.runner._measure_task`'s
    contract; setups cross the wire as their archive-record dicts.
    """
    (index, workload, size, seed, setup, verify, attempt, timeout,
     max_cycles, delay) = payload
    return {
        "index": index,
        "workload": workload,
        "size": size,
        "seed": seed,
        "setup": setup_to_dict(setup),
        "verify": verify,
        "attempt": attempt,
        "timeout": timeout,
        "max_cycles": max_cycles,
        "delay": delay,
    }


def wire_to_payload(data: Dict[str, Any]) -> Tuple:
    """Inverse of :func:`payload_to_wire`."""
    return (
        data["index"],
        data["workload"],
        data["size"],
        data["seed"],
        setup_from_dict(data["setup"]),
        data["verify"],
        data["attempt"],
        data["timeout"],
        data["max_cycles"],
        data["delay"],
    )


# -- the agent --------------------------------------------------------------


class _AgentCrash(Exception):
    """Internal: an injected ``agent_crash`` fired; die like a process."""


class _SessionConfig:
    """Policy knobs for one agent session, parsed from the
    coordinator's ``hello`` (listen mode) or ``registered`` (dial-in
    mode) message — the two carry the same fields."""

    __slots__ = (
        "plan", "heartbeat_interval", "hang_timeout", "max_respawns",
        "tracing",
    )

    def __init__(self, plan, heartbeat_interval, hang_timeout,
                 max_respawns, tracing) -> None:
        self.plan = plan
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout = hang_timeout
        self.max_respawns = max_respawns
        self.tracing = tracing


def _parse_session_config(data: Dict[str, Any]) -> _SessionConfig:
    plan_dict = data.get("fault_plan")
    plan = faults.FaultPlan(**plan_dict) if plan_dict else None
    knobs = data.get("runner") or {}
    # None means "adapt": the agent's own pool derives its hang
    # threshold from observed task durations (see SupervisedPool).
    raw_hang = knobs.get("hang_timeout", DEFAULT_HANG_TIMEOUT)
    return _SessionConfig(
        plan=plan,
        heartbeat_interval=float(knobs.get("heartbeat_interval", 0.2)),
        hang_timeout=None if raw_hang is None else float(raw_hang),
        max_respawns=int(knobs.get("max_respawns", 8)),
        tracing=bool(data.get("tracing", False)),
    )


class AgentServer:
    """One sweep agent: a TCP listener wrapping a supervised pool.

    The agent is deliberately thin: every policy knob (fault plan,
    heartbeat cadence, hang deadline, respawn budget, tracing) arrives
    in the coordinator's ``hello``, so one command line controls the
    whole fleet.  Sessions are serial — one coordinator at a time — and
    the listener survives across sessions, which is what lets a
    partitioned coordinator reconnect and what an operator's process
    supervisor (systemd, runit) expects of a restartable service.

    Args:
        host: interface to bind.
        port: TCP port (0 picks a free one; see ``port_file``).
        jobs: local worker processes per session.
        port_file: when set, the bound port is written here after
            :meth:`bind` — the race-free way for scripts to use port 0.
        quiet: suppress the per-event log lines on stderr.
        secret: optional shared secret; when set, every hello must
            answer the session's ``challenge`` nonce with the matching
            :func:`auth_proof` or the session is refused before any
            task is accepted (``--secret`` / ``REPRO_AGENT_SECRET`` on
            both ends).  Unset = open agent, as before.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        port_file: Optional[str] = None,
        quiet: bool = False,
        poll_interval: float = 0.05,
        secret: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.port_file = port_file
        self.quiet = quiet
        self.poll_interval = poll_interval
        self.secret = secret
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        #: Set when an injected ``agent_crash`` killed the agent; the
        #: CLI exits non-zero so a process supervisor can tell a crash
        #: from an orderly shutdown.
        self.crashed = False

    # -- lifecycle --------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); valid after :meth:`bind`."""
        assert self._listener is not None, "agent not bound"
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    def bind(self) -> Tuple[str, int]:
        """Bind the listener (writing ``port_file`` if configured)."""
        listener = _track(socket.socket(socket.AF_INET, socket.SOCK_STREAM))
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(4)
        listener.settimeout(0.2)  # so stop() is honored promptly
        self._listener = listener
        if self.port_file:
            tmp = self.port_file + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(f"{self.address[1]}\n")
            os.replace(tmp, self.port_file)
        return self.address

    def stop(self) -> None:
        """Ask :meth:`serve_forever` to return after the current accept
        timeout (threads use this; the CLI uses SIGINT)."""
        self._stop.set()

    def serve_forever(self) -> None:
        """Accept coordinator sessions until :meth:`stop` or a crash.

        An injected ``agent_crash`` tears down the listener too — a
        crashed process takes its listening socket with it, so the
        coordinator's reconnect attempts are refused, exactly as they
        would be against a real dead host.
        """
        if self._listener is None:
            self.bind()
        try:
            while not self._stop.is_set():
                try:
                    conn, peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                _track(conn)
                self._log(f"session from {peer[0]}:{peer[1]}")
                try:
                    self._serve_session(conn)
                except _AgentCrash:
                    self.crashed = True
                    self._log("injected agent_crash: dying")
                    return
                except (ProtocolError, EOFError, OSError) as exc:
                    self._log(f"session lost: {exc}")
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass
        finally:
            self._close_listener()

    def serve_connect(
        self,
        host: str,
        port: int,
        backoff_base: float = 0.5,
        backoff_seed: int = 0,
        max_retries: Optional[int] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        """Dial-in rendezvous: register with a service coordinator and
        serve its sessions, reconnecting across coordinator restarts.

        This inverts :meth:`serve_forever`'s direction — the agent
        connects *out* to ``repro serve``'s rendezvous port, proves
        itself against the coordinator's ``challenge`` with
        :func:`auth_proof` (when a secret is configured), and then runs
        the exact same session body the listening mode does.  A
        coordinator that vanishes mid-session (SIGKILL, restart, net
        partition) is redialed on the shared seeded exponential backoff
        (:func:`repro.core.runner.seeded_backoff`), so a whole fleet of
        agents re-registers on a deterministic, de-synchronized
        schedule instead of stampeding the reborn service.

        Ends on: an orderly ``shutdown`` from the coordinator, an
        injected ``agent_crash`` (``self.crashed`` set, like listen
        mode), an authentication refusal (fatal — a wrong secret never
        heals), or a spent ``max_retries`` budget (None = unbounded).
        The per-outage budget resets whenever a session is established.
        """
        attempt = 0
        while not self._stop.is_set():
            attempt += 1
            if max_retries is not None and attempt > max_retries + 1:
                self._log(
                    f"coordinator {host}:{port}: reconnect budget spent "
                    f"({max_retries} retries)"
                )
                return
            delay = _runner.seeded_backoff(
                backoff_base,
                backoff_seed,
                f"rendezvous:{host}:{port}",
                attempt,
                cap=10.0,
            )
            if delay:
                time.sleep(delay)
            try:
                reason = self._dial_session(host, port, connect_timeout)
            except _AgentCrash:
                self.crashed = True
                self._log("injected agent_crash: dying")
                return
            except (ProtocolError, EOFError, OSError) as exc:
                self._log(f"coordinator {host}:{port}: {exc}")
                continue
            if reason == "shutdown":
                self._log("orderly shutdown")
                return
            # "closed": the coordinator went away mid-session.  Reset
            # the backoff so a healthy restart is re-joined promptly;
            # repeated failures then back off again from the start.
            attempt = 0

    def _dial_session(
        self, host: str, port: int, connect_timeout: float
    ) -> str:
        """One dial-in connection: handshake, then the session body."""
        sock = _track(socket.create_connection(
            (host, port), timeout=connect_timeout
        ))
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(30.0)
            kind, challenge = recv_message(sock)
            if kind != "challenge":
                raise ProtocolError(
                    f"coordinator {host}:{port} opened with {kind!r}, "
                    "expected a challenge"
                )
            nonce = challenge.get("nonce")
            if not isinstance(nonce, str) or not nonce:
                raise ProtocolError(
                    f"coordinator {host}:{port} sent a malformed challenge"
                )
            register = self._identity()
            register["auth"] = (
                auth_proof(self.secret, nonce) if self.secret else None
            )
            send_message(sock, "register", register)
            kind, data = recv_message(sock)
            if kind == "error":
                if data.get("code") == "auth":
                    # Fatal, not retried: a wrong secret is operator
                    # error, and redialing would never heal it.
                    raise AgentUnavailable(
                        f"coordinator {host}:{port} refused registration: "
                        f"{data.get('message')}"
                    )
                raise ProtocolError(
                    f"coordinator {host}:{port} refused registration: "
                    f"{data.get('message')}"
                )
            if kind != "registered" or data.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"coordinator {host}:{port} sent an unexpected "
                    f"handshake ({kind!r}, protocol "
                    f"{data.get('protocol')!r})"
                )
            self._log(f"registered with coordinator {host}:{port}")
            session = _parse_session_config(data)
            sock.settimeout(None)
            return self._session_body(sock, session)
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _close_listener(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None

    def _log(self, text: str) -> None:
        if not self.quiet:
            import sys

            print(f"[agent {self.host}:{self.address_or_port()}] {text}",
                  file=sys.stderr)

    def address_or_port(self) -> int:
        """The bound port, or the configured one before binding."""
        try:
            return self.address[1]
        except AssertionError:
            return self.port

    # -- one session ------------------------------------------------------

    def _serve_session(self, conn: socket.socket) -> None:
        conn.settimeout(30.0)
        # Challenge first: a fresh random nonce per session, so an auth
        # proof is only ever valid for the handshake it was minted for
        # (a captured hello replays as garbage against the next nonce).
        nonce = secrets.token_hex(16)
        send_message(conn, "challenge", {
            "protocol": PROTOCOL_VERSION,
            "nonce": nonce,
        })
        kind, hello = recv_message(conn)
        if kind != "hello":
            raise ProtocolError(f"expected hello, got {kind!r}")
        if hello.get("protocol") != PROTOCOL_VERSION:
            send_message(conn, "error", {
                "message": f"protocol mismatch: agent speaks "
                           f"{PROTOCOL_VERSION}, coordinator sent "
                           f"{hello.get('protocol')!r}",
            })
            raise ProtocolError("protocol version mismatch")
        if self.secret is not None:
            proof = hello.get("auth")
            expected = auth_proof(self.secret, nonce)
            if not (
                isinstance(proof, str)
                and hmac.compare_digest(proof, expected)
            ):
                # Refuse before reading policy knobs: an unauthenticated
                # coordinator configures nothing.  The error names its
                # code so the coordinator can count auth failures apart
                # from transport losses, but never echoes the digest.
                send_message(conn, "error", {
                    "code": "auth",
                    "message": "authentication failed: agent requires a "
                               "shared secret (--secret)",
                })
                raise ProtocolError("coordinator failed authentication")
        session = _parse_session_config(hello)
        send_message(conn, "hello_ack", self._identity())
        # The handshake had a deadline; the session does not — a
        # coordinator with nothing to say is idle, not dead (liveness
        # flows the other way, via our heartbeats).
        conn.settimeout(None)
        self._session_body(conn, session)

    def _identity(self) -> Dict[str, Any]:
        """The agent's self-description, sent in ``hello_ack`` (listen
        mode) and ``register`` (dial-in mode)."""
        return {
            "protocol": PROTOCOL_VERSION,
            "hostname": socket.gethostname(),
            "pid": os.getpid(),
            "agent_version": __version__,
            "jobs": self.jobs,
        }

    def _session_body(
        self, conn: socket.socket, session: "_SessionConfig"
    ) -> str:
        """Run one configured session until it ends; both the listening
        accept loop and the dial-in rendezvous loop land here after
        their handshakes, so the task/result/heartbeat protocol is one
        code path however the connection was established.  Returns the
        end reason: ``"shutdown"`` (orderly) or ``"closed"`` (the
        coordinator went away)."""
        plan = session.plan
        heartbeat_interval = session.heartbeat_interval
        inbox: "queue.Queue[Tuple[str, Any]]" = queue.Queue()

        def read_loop() -> None:
            while True:
                try:
                    inbox.put(recv_message(conn))
                except (ProtocolError, EOFError, OSError) as exc:
                    inbox.put(("closed", {"reason": str(exc)}))
                    return

        threading.Thread(target=read_loop, daemon=True).start()

        pool = SupervisedPool(
            workers=self.jobs,
            task_fn=_runner._measure_task,
            fault_plan=plan,
            heartbeat_interval=heartbeat_interval,
            hang_timeout=session.hang_timeout,
            max_respawns=session.max_respawns,
            tracing=session.tracing,
            child_setup=close_inherited_sockets,
        )
        degraded = False
        last_beat = time.monotonic()
        try:
            with faults.injected_faults(plan):
                while True:
                    reason = self._drain_inbox(
                        conn, inbox, pool, plan, degraded
                    )
                    if reason:
                        return reason
                    event = pool.poll(timeout=self.poll_interval)
                    if event is None:
                        time.sleep(self.poll_interval / 4)
                    elif event.kind == "result":
                        self._send_result(
                            conn, event.result, event.records
                        )
                    elif event.kind in ("crash", "hang"):
                        obs_metrics.counter(
                            f"agent.worker_{event.kind}s"
                        ).inc()
                        self._log(f"worker {event.worker} {event.kind}")
                    elif event.kind == "degraded":
                        # Local respawn budget spent: finish everything
                        # the pool hands back in-process, and run any
                        # later-arriving task the same way.  The
                        # coordinator never sees the difference — the
                        # agent's report obligations are per-result.
                        degraded = True
                        obs_metrics.counter("agent.degraded_sessions").inc()
                        self._log(
                            "worker pool degraded; running in-process"
                        )
                        for task in event.tasks:
                            self._run_inline(conn, task)
                    now = time.monotonic()
                    if now - last_beat >= heartbeat_interval:
                        send_message(conn, "heartbeat", {})
                        last_beat = now
        finally:
            pool.close()

    def _drain_inbox(self, conn, inbox, pool, plan, degraded) -> str:
        """Apply queued coordinator messages; returns the session's end
        reason (``"shutdown"``/``"closed"``) or ``""`` while it lives."""
        while True:
            try:
                kind, data = inbox.get_nowait()
            except queue.Empty:
                return ""
            if kind == "task":
                key = data.get("key", "")
                dispatch = int(data.get("dispatch", 1))
                if plan is not None and plan.fires(
                    "agent_crash", key, dispatch
                ):
                    # Die the way a power cut would: no result, no
                    # goodbye, listener gone (handled by serve_forever).
                    raise _AgentCrash(key)
                task = Task(
                    index=int(data["payload"]["index"]),
                    key=key,
                    attempt=int(data["payload"]["attempt"]),
                    payload=wire_to_payload(data["payload"]),
                )
                if degraded:
                    self._run_inline(conn, task)
                else:
                    pool.submit(task)
            elif kind == "shutdown":
                self._log("orderly shutdown")
                return "shutdown"
            elif kind == "closed":
                self._log(f"coordinator gone: {data.get('reason')}")
                return "closed"
            # Unknown kinds are ignored: forward-compatible by default.

    def _run_inline(self, conn: socket.socket, task: Task) -> None:
        """Degraded mode: measure on the agent's own thread."""
        if obs_trace.active().enabled:
            tracer = obs_trace.Tracer(label="agent-inline")
            with obs_trace.tracing(tracer):
                result = _runner._measure_task(task.payload)
            records: Optional[List[Dict[str, Any]]] = tracer.to_dicts()
        else:
            result = _runner._measure_task(task.payload)
            records = None
        self._send_result(conn, result, records)

    @staticmethod
    def _send_result(conn, result, records) -> None:
        send_message(conn, "result", {
            "outcome": list(result),
            "records": records,
        })


# -- the coordinator --------------------------------------------------------


class _Link:
    """Coordinator-side handle for one connected agent."""

    __slots__ = (
        "slot", "host", "port", "sock", "info", "in_flight", "last_recv",
    )

    def __init__(self, slot: int, host: str, port: int, sock, info) -> None:
        self.slot = slot
        self.host = host
        self.port = port
        self.sock = sock
        self.info = info
        self.in_flight: Dict[int, Task] = {}
        self.last_recv = time.monotonic()

    @property
    def label(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def capacity(self) -> int:
        return max(1, int(self.info.get("jobs", 1)))


class AgentPool(DispatchPool):
    """Remote agents behind the local pool's dispatch interface.

    Every agent is a super-worker with ``jobs`` capacity; dispatching,
    result collection, heartbeat-staleness partition detection, failover
    requeueing, and bounded reconnection all happen inside
    :meth:`poll`, mirroring :class:`SupervisedPool`'s contract exactly —
    the sweep runner drives both through
    :class:`~repro.core.supervisor.DispatchPool` and cannot tell them
    apart.

    Args:
        hosts: ``(host, port)`` pairs; every one must accept the initial
            connection (a bad roster is operator error and fails loudly
            as :class:`AgentUnavailable`).
        hello: session parameters sent to every agent (fault plan,
            runner knobs, tracing flag); see :func:`build_hello`.
        fault_plan: coordinator-side draws for the ``net_partition`` and
            ``message_corrupt`` chaos kinds (``agent_crash`` is drawn
            agent-side, where the dying happens).
        heartbeat_interval: how often agents beat (sent in the hello).
        hang_timeout: an agent silent past this is declared partitioned.
            None falls back to
            :data:`~repro.core.supervisor.DEFAULT_HANG_TIMEOUT` — link
            liveness is paced by heartbeats, not task durations, so the
            coordinator has nothing to adapt to (each agent's *local*
            pool still adapts; the hello forwards None).
        max_reconnects: reconnection attempts **per lost agent** before
            that agent is dropped for good.  Per-link (unlike the local
            pool's global respawn budget) because agent failures are
            independent: one dead host refusing connections must not
            spend the budget a merely-partitioned host needs to heal.
        connect_timeout: TCP connect + handshake deadline per attempt.
        secret: optional shared secret used to answer each agent's
            per-session ``challenge`` nonce (see :func:`auth_proof`).
            Held here rather than baked into the hello because the
            proof depends on the nonce — every connect (and reconnect)
            computes a fresh one.
        backoff_seed: seed for the deterministic reconnect jitter
            (:func:`repro.core.runner.seeded_backoff`); the runner
            forwards its ``backoff_seed`` so retries and reconnects
            share one reproducible schedule.
    """

    def __init__(
        self,
        hosts: Sequence[Tuple[str, int]],
        hello: Dict[str, Any],
        fault_plan: Optional[faults.FaultPlan] = None,
        heartbeat_interval: float = 0.2,
        hang_timeout: Optional[float] = None,
        max_reconnects: int = 8,
        connect_timeout: float = 10.0,
        poll_interval: float = 0.05,
        secret: Optional[str] = None,
        backoff_seed: int = 0,
    ) -> None:
        if not hosts:
            raise ValueError("AgentPool needs at least one host")
        self.hello = dict(hello)
        self.secret = secret
        self.fault_plan = fault_plan
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout = (
            DEFAULT_HANG_TIMEOUT if hang_timeout is None else hang_timeout
        )
        self.max_reconnects = max_reconnects
        self.connect_timeout = connect_timeout
        self.poll_interval = poll_interval
        self.backoff_seed = backoff_seed
        self._queue: Deque[Task] = collections.deque()
        self._events: Deque[PoolEvent] = collections.deque()
        self._dispatched: Dict[int, int] = {}
        self._links: List[_Link] = []
        self._down: List[Dict[str, Any]] = []  # reconnect work items
        self._reconnects = 0
        self._closed = False
        self._degraded = False
        #: Provenance: per-address agent identity + results served,
        #: aggregated across reconnects (feeds the manifest's ``hosts``).
        self._host_info: Dict[str, Dict[str, Any]] = {}
        for slot, (host, port) in enumerate(hosts):
            try:
                self._links.append(self._connect(slot, host, port))
            except (OSError, ProtocolError, EOFError) as exc:
                self.close()
                raise AgentUnavailable(
                    f"agent {host}:{port} is unreachable: {exc}"
                ) from exc

    # -- introspection ----------------------------------------------------

    @property
    def reconnects(self) -> int:
        """Reconnection attempts spent so far."""
        return self._reconnects

    def alive_agents(self) -> int:
        """Agents currently connected."""
        return len(self._links)

    def hosts_info(self) -> List[Dict[str, Any]]:
        """Per-host provenance for the manifest: every agent this pool
        ever spoke to, its identity, and the results it served."""
        return [dict(self._host_info[k]) for k in sorted(self._host_info)]

    # -- connection management --------------------------------------------

    def _connect(self, slot: int, host: str, port: int) -> _Link:
        sock = _track(socket.create_connection(
            (host, port), timeout=self.connect_timeout
        ))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            kind, challenge = recv_message(sock)
            if kind != "challenge":
                raise ProtocolError(
                    f"agent {host}:{port} opened with {kind!r}, expected "
                    f"a challenge (protocol < {PROTOCOL_VERSION}?)"
                )
            nonce = challenge.get("nonce")
            if not isinstance(nonce, str) or not nonce:
                raise ProtocolError(
                    f"agent {host}:{port} sent a malformed challenge"
                )
            hello = dict(self.hello)
            hello["auth"] = (
                auth_proof(self.secret, nonce) if self.secret else None
            )
            send_message(sock, "hello", hello)
            kind, info = recv_message(sock)
        except Exception:
            sock.close()
            raise
        if kind == "error":
            sock.close()
            if info.get("code") == "auth":
                # Counted apart from transport losses: a wrong secret is
                # an operator/configuration problem, and it spends the
                # same per-link budget a dead host would (initial
                # connects still fail fast as AgentUnavailable).
                obs_metrics.counter("distributed.auth_failures").inc()
            raise ProtocolError(
                f"agent {host}:{port} rejected the session: "
                f"{info.get('message')}"
            )
        if kind != "hello_ack" or info.get("protocol") != PROTOCOL_VERSION:
            sock.close()
            raise ProtocolError(
                f"agent {host}:{port} sent an unexpected handshake "
                f"({kind!r}, protocol {info.get('protocol')!r})"
            )
        sock.settimeout(max(self.connect_timeout, self.hang_timeout))
        link = _Link(slot, host, port, sock, info)
        entry = self._host_info.setdefault(link.label, {
            "host": host,
            "port": port,
            "results": 0,
            "sessions": 0,
        })
        entry.update(
            hostname=info.get("hostname"),
            pid=info.get("pid"),
            agent_version=info.get("agent_version"),
            jobs=info.get("jobs"),
        )
        entry["sessions"] += 1
        return link

    def _fail_link(self, link: _Link, reason: str) -> None:
        """Salvage, requeue, schedule reconnection — the failover path."""
        if link not in self._links:
            return
        # An agent that sent results and *then* died must not cost the
        # sweep measurements: drain whatever already reached our socket
        # buffer before tearing the link down.
        try:
            while link.in_flight and _readable(link.sock):
                kind, data = recv_message(link.sock)
                if kind == "result":
                    self._accept_result(link, data)
        except (ProtocolError, EOFError, OSError):
            pass
        self._links.remove(link)
        try:
            link.sock.close()
        except OSError:
            pass
        requeued = [link.in_flight[i] for i in sorted(link.in_flight)]
        link.in_flight.clear()
        for task in reversed(requeued):
            # Failover, not retry: head of the queue, same attempt.
            self._queue.appendleft(task)
        self._events.append(PoolEvent(
            reason,
            worker=link.slot,
            tasks=requeued,
            label=link.label,
        ))
        self._down.append({
            "slot": link.slot,
            "host": link.host,
            "port": link.port,
            "next_try": time.monotonic() + self.poll_interval,
            "failures": 0,
        })

    def _try_reconnects(self) -> None:
        now = time.monotonic()
        still_down: List[Dict[str, Any]] = []
        for item in self._down:
            if item["next_try"] > now:
                still_down.append(item)
                continue
            if item["failures"] >= self.max_reconnects:
                continue  # this agent's budget is spent: drop it
            self._reconnects += 1
            try:
                link = self._connect(
                    item["slot"], item["host"], item["port"]
                )
            except (OSError, ProtocolError, EOFError):
                item["failures"] += 1
                # Seeded exponential backoff with deterministic jitter
                # (the runner's retry policy, reused): repeated failures
                # against one address space out geometrically, capped at
                # 2s, and the per-address jitter keeps a pool that lost
                # several agents at once from redialing them in lockstep.
                item["next_try"] = now + _runner.seeded_backoff(
                    self.poll_interval,
                    self.backoff_seed,
                    f"reconnect:{item['host']}:{item['port']}",
                    item["failures"] + 1,
                    cap=2.0,
                )
                still_down.append(item)
                continue
            self._links.append(link)
            self._events.append(PoolEvent(
                "respawn", worker=link.slot, label=link.label
            ))
        self._down = still_down
        if not self._links and not self._down and not self._degraded:
            # No agent left, none coming back: hand every unfinished
            # task to the caller so it can degrade honestly.
            remaining = list(self._queue)
            self._queue.clear()
            self._degraded = True
            self._events.append(PoolEvent("degraded", tasks=remaining))

    # -- DispatchPool interface -------------------------------------------

    def submit(self, task: Task) -> None:
        """Queue a task; it is dispatched on the next :meth:`poll`."""
        self._queue.append(task)

    def poll(self, timeout: Optional[float] = None) -> Optional[PoolEvent]:
        """The next supervision event (see :class:`DispatchPool`)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._events:
                return self._events.popleft()
            if not self._queue and not any(
                link.in_flight for link in self._links
            ):
                return None
            self._dispatch_queued()
            if self._events:
                continue
            self._read_links()
            self._scan_liveness()
            self._try_reconnects()
            if (
                deadline is not None
                and not self._events
                and time.monotonic() >= deadline
            ):
                return None

    def close(self) -> None:
        """Hang up on every agent (they return to their accept loop)."""
        if self._closed:
            return
        self._closed = True
        for link in self._links:
            try:
                send_message(link.sock, "shutdown", {})
            except OSError:
                pass
            try:
                link.sock.close()
            except OSError:
                pass
        self._links.clear()
        self._queue.clear()
        self._down.clear()

    # -- supervision internals --------------------------------------------

    def _dispatch_queued(self) -> None:
        plan = self.fault_plan
        for link in list(self._links):
            while self._queue and len(link.in_flight) < link.capacity:
                task = self._queue[0]
                count = self._dispatched.get(task.index, 0) + 1
                if plan is not None and plan.fires(
                    "net_partition", task.key, count
                ):
                    # The network dies as we dispatch: nothing is sent,
                    # the dispatch is spent (so a transient partition
                    # clears on the re-dispatch), and the link fails
                    # over like any other loss.
                    self._dispatched[task.index] = count
                    self._fail_link(link, "crash")
                    break
                corrupt = plan is not None and plan.fires(
                    "message_corrupt", task.key, count
                )
                try:
                    send_message(
                        link.sock,
                        "task",
                        {
                            "key": task.key,
                            "dispatch": count,
                            "payload": payload_to_wire(task.payload),
                        },
                        corrupt=corrupt,
                    )
                except OSError:
                    self._fail_link(link, "crash")
                    break
                self._queue.popleft()
                self._dispatched[task.index] = count
                link.in_flight[task.index] = task
            if not self._queue:
                break

    def _read_links(self) -> None:
        socks = [link.sock for link in self._links]
        if not socks:
            time.sleep(self.poll_interval)
            return
        try:
            readable, _, _ = select.select(
                socks, [], [], min(self.poll_interval, self.heartbeat_interval)
            )
        except OSError:
            readable = []
        by_sock = {link.sock: link for link in self._links}
        for sock in readable:
            link = by_sock.get(sock)
            if link is None or link not in self._links:
                continue
            try:
                kind, data = recv_message(link.sock)
            except (ProtocolError, EOFError, OSError) as exc:
                del exc
                self._fail_link(link, "crash")
                continue
            link.last_recv = time.monotonic()
            if kind == "result":
                self._accept_result(link, data)
            # heartbeats only refresh last_recv; unknown kinds ignored.

    def _accept_result(self, link: _Link, data: Dict[str, Any]) -> None:
        outcome = data.get("outcome")
        if not isinstance(outcome, list) or len(outcome) != 4:
            raise ProtocolError("malformed result outcome")
        index = outcome[1]
        task = link.in_flight.pop(index, None)
        self._host_info[link.label]["results"] += 1
        self._events.append(PoolEvent(
            "result",
            worker=link.slot,
            task=task,
            result=tuple(outcome),
            records=data.get("records"),
            label=link.label,
        ))

    def _scan_liveness(self) -> None:
        now = time.monotonic()
        for link in list(self._links):
            if now - link.last_recv > self.hang_timeout:
                self._fail_link(link, "hang")


def _readable(sock: socket.socket) -> bool:
    try:
        readable, _, _ = select.select([sock], [], [], 0)
    except OSError:
        return False
    return bool(readable)


def build_hello(
    fault_plan: Optional[faults.FaultPlan],
    heartbeat_interval: float,
    hang_timeout: Optional[float],
    max_respawns: int,
    tracing: bool,
    note: str = "",
) -> Dict[str, Any]:
    """The coordinator's session-opening message.

    Carries every policy knob an agent needs, so the whole fleet is
    configured from one command line: the fault plan (as a plain dict —
    agents re-hydrate it), the supervision cadence for the agent's own
    worker pool (``hang_timeout=None`` asks each agent's pool to adapt
    its own threshold), and whether workers should trace their tasks.
    The ``auth`` field is deliberately absent here:
    :class:`AgentPool` fills it per connection, because the
    :func:`auth_proof` depends on the session's challenge nonce.
    """
    from dataclasses import asdict

    return {
        "protocol": PROTOCOL_VERSION,
        "fault_plan": asdict(fault_plan) if fault_plan is not None else None,
        "runner": {
            "heartbeat_interval": heartbeat_interval,
            "hang_timeout": hang_timeout,
            "max_respawns": max_respawns,
        },
        "tracing": tracing,
        "note": note,
    }
