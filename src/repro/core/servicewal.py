"""Durable study queue: the sweep service's write-ahead log.

The service coordinator (:mod:`repro.core.service`) promises that a
SIGKILL at *any* instant loses no submitted study and double-counts no
setup.  That promise is only as good as its persistence layer, so every
queue state transition is appended here **before** it is acted on:

``submit``
    a client's study entered the queue (``{"study", "spec"}``);
``lease``
    one setup was leased to an agent
    (``{"study", "index", "attempt", "agent"}``);
``requeue``
    a lease was released without a result — expiry, agent loss, or an
    injected fault — and the setup went back to the queue **at the same
    attempt** (``{"study", "index", "attempt", "reason"}``);
``complete``
    a setup reached a final measurement
    (``{"study", "index"}``);
``done``
    the study finished and its result document was published
    (``{"study", "report_sha256"}``).

On restart, :meth:`ServiceWAL.load` replays the log: studies with a
``done`` record are served from their result documents, everything else
re-enters the queue.  Outstanding leases are *not* resurrected — a
lease is a promise by the dead coordinator, and the new one simply
re-dispatches (the content-addressed store makes the re-run free for
every setup that already completed, which is what keeps the recovered
report byte-identical to an uninterrupted run).

File format: line 1 is a plain-JSON header carrying
:data:`WAL_FORMAT`; every following line is the checkpoint journal's
checksummed *aux* record shape — ``{"kind", "data", "sha256"}`` in
canonical JSON — so the journal's parser, compaction discipline, and
fsck tooling all apply unchanged.  Appends are durable (fsync through
the :mod:`repro.storageio` shim) before :meth:`ServiceWAL.append`
returns; a torn tail from a crash mid-append is detected by its
checksum, dropped, counted in the header, and compacted away exactly
like a torn journal record.

Chaos: the ``coordinator_crash`` fault kind fires *after* a record's
durable append and SIGKILLs the process — the WAL's whole recovery
story, exercised deterministically.  The per-record attempt for the
draw counts how many times that exact record content has ever been
appended (replayed from the log itself), so a transient crash clears
when the restarted coordinator re-appends the same transition.
"""

from __future__ import annotations

import collections
import json
import os
import signal
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro import faults, storageio
from repro._errors import ArchiveCorruption, JournalWriteError
from repro.core.runner import Journal, _header_torn_count
from repro.core.session import canonical_json, record_checksum

#: WAL header marker (first line of the file); the fsck classifier and
#: :func:`compact_wal` both key on it.
WAL_FORMAT = "repro-service-wal-v1"

#: Every record kind a service WAL may carry, in lifecycle order.
WAL_KINDS = ("submit", "lease", "requeue", "complete", "done")


@dataclass
class StudyRecord:
    """Replayed queue state for one submitted study."""

    study: str
    spec: Dict
    done: bool = False
    report_sha256: str = ""
    #: Setup indices with a ``complete`` record (informational — the
    #: store, not this set, is what makes re-runs free).
    completed: Set[int] = field(default_factory=set)
    leases: int = 0
    requeues: int = 0


@dataclass
class WalState:
    """Everything :meth:`ServiceWAL.load` recovered from disk."""

    #: Studies in first-submission order (the restart re-enqueue order).
    studies: "collections.OrderedDict[str, StudyRecord]"
    #: Record counts by kind — the chaos-soak tests assert on these
    #: (every requested setup completes exactly once, ever).
    counts: Dict[str, int]
    #: Torn/corrupt lines dropped during this load.
    torn_dropped: int

    def pending(self) -> List[StudyRecord]:
        """Studies that still need to run, in submission order."""
        return [rec for rec in self.studies.values() if not rec.done]


class ServiceWAL:
    """Append-only, checksummed, crash-recoverable study queue log.

    Thread-safe: the coordinator appends from both its HTTP thread
    (submissions) and its study-executor thread (leases, completions),
    serialized by one lock.  Every append is durable before it returns,
    and every append is a *prefix* property — replay never needs the
    tail to make sense of the head, so a torn final line costs exactly
    one transition, which the at-least-once dispatch re-derives.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = None
        self._lock = threading.Lock()
        #: Torn lines dropped across the file's lifetime (header field).
        self.recovered_torn = 0
        #: How many times each exact record content has been appended —
        #: the durable attempt dimension for ``coordinator_crash`` draws.
        self._appends: "collections.Counter[str]" = collections.Counter()

    # -- reading ----------------------------------------------------------

    def load(self) -> WalState:
        """Replay the log into queue state, dropping torn lines.

        Missing file = empty state (a fresh service).  A present file
        with a foreign or damaged header is refused loudly — silently
        treating someone else's file as an empty queue would *drop*
        studies, the exact failure this log exists to prevent.
        """
        state = WalState(
            studies=collections.OrderedDict(),
            counts={kind: 0 for kind in WAL_KINDS},
            torn_dropped=0,
        )
        if not os.path.exists(self.path):
            return state
        with open(self.path) as fh:
            lines = fh.read().splitlines()
        if not lines:
            return state
        header = _parse_header(lines[0], self.path)
        self.recovered_torn = _header_torn_count(header)
        valid_lines = [lines[0]]
        dropped = 0
        for line in lines[1:]:
            rec = Journal._parse_aux(line)
            if rec is None:
                if line.strip():
                    dropped += 1
                continue
            valid_lines.append(line)
            self._appends[record_checksum(rec["data"])] += 1
            _apply(state, rec["kind"], rec["data"])
        if dropped:
            # Compact in place (atomic replace) so later appends never
            # land after a corrupt line; the header keeps the running
            # recovery count, mirroring the journal's torn-tail story.
            self.recovered_torn += dropped
            state.torn_dropped = dropped
            header["torn_recovered"] = self.recovered_torn
            valid_lines[0] = json.dumps(header, sort_keys=True)
            tmp = self.path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write("\n".join(valid_lines) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        return state

    # -- writing ----------------------------------------------------------

    def open_for_append(self, note: str = "") -> None:
        """Open (creating the header if the file is fresh)."""
        fresh = (
            not os.path.exists(self.path)
            or os.path.getsize(self.path) == 0
        )
        self._fh = open(self.path, "a")
        if fresh:
            header = {
                "format": WAL_FORMAT,
                "note": note,
                "torn_recovered": self.recovered_torn,
            }
            self._write_line(json.dumps(header, sort_keys=True))

    def append(self, kind: str, data: Dict) -> None:
        """Durably log one queue transition (fsynced before returning).

        After the record is durable, the ``coordinator_crash`` chaos
        kind draws on ``(kind, checksum(data))`` at the record's
        cumulative append count and — when it fires — SIGKILLs the
        process, exactly the power cut the recovery path must survive.
        """
        if kind not in WAL_KINDS:
            raise ValueError(f"unknown WAL record kind {kind!r}")
        checksum = record_checksum(data)
        line = canonical_json(
            {"kind": kind, "data": data, "sha256": checksum}
        )
        with self._lock:
            assert self._fh is not None, "WAL not opened for append"
            self._write_line(line, key=f"wal:{kind}")
            self._appends[checksum] += 1
            attempt = self._appends[checksum]
        if faults.should_inject_at(
            "coordinator_crash", f"{kind}:{checksum}", attempt
        ):
            # Die the way a power cut would: no atexit, no flushing.
            os.kill(os.getpid(), signal.SIGKILL)

    def _write_line(self, line: str, key: Optional[str] = None) -> None:
        """One durable line through the fault-aware I/O shim; failures
        surface as :class:`~repro._errors.JournalWriteError`."""
        assert self._fh is not None
        try:
            storageio.durable_append_line(
                self._fh, line, key or self.path, path=self.path
            )
        except OSError as exc:
            raise JournalWriteError(str(exc), path=self.path) from exc

    def close(self) -> None:
        """Close the append handle (the file stays valid at any point)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


# -- replay internals --------------------------------------------------------


def _parse_header(line: str, path: str) -> Dict:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ArchiveCorruption(
            f"service WAL header is not valid JSON: {exc}", path=path
        ) from exc
    if not isinstance(header, dict) or header.get("format") != WAL_FORMAT:
        raise ArchiveCorruption(
            f"not a {WAL_FORMAT} write-ahead log; refusing to load",
            path=path,
        )
    return header


def _apply(state: WalState, kind: str, data: Dict) -> None:
    """Fold one record into the replayed state (unknown kinds and
    records for unknown studies are skipped, forward-compatibly)."""
    if kind not in state.counts:
        return
    study = data.get("study")
    if not isinstance(study, str):
        return
    if kind == "submit":
        state.counts[kind] += 1
        spec = data.get("spec")
        if study not in state.studies and isinstance(spec, dict):
            state.studies[study] = StudyRecord(study=study, spec=spec)
        return
    rec = state.studies.get(study)
    if rec is None:
        return  # orphaned record (submit line lost to a tear): skip
    state.counts[kind] += 1
    if kind == "lease":
        rec.leases += 1
    elif kind == "requeue":
        rec.requeues += 1
    elif kind == "complete":
        index = data.get("index")
        if isinstance(index, int):
            rec.completed.add(index)
    elif kind == "done":
        rec.done = True
        rec.report_sha256 = str(data.get("report_sha256", ""))


# -- compaction --------------------------------------------------------------


@dataclass(frozen=True)
class WalCompactionStats:
    """What one :func:`compact_wal` pass did."""

    path: str
    bytes_before: int
    bytes_after: int
    records_before: int
    records_after: int
    stale_leases_dropped: int
    dropped_corrupt: int

    def summary_line(self) -> str:
        line = (
            f"compacted {self.path}: "
            f"{self.records_before} -> {self.records_after} records, "
            f"dropped {self.stale_leases_dropped} stale lease record(s), "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )
        if self.dropped_corrupt:
            line += f", dropped {self.dropped_corrupt} corrupt line(s)"
        return line


def compact_wal(path: str) -> WalCompactionStats:
    """Atomically rewrite a service WAL down to its replay-relevant
    content (the journal's verified-compaction discipline, reused).

    A long-lived queue log accumulates stale state: lease and requeue
    records are promises of a coordinator that has since resolved them,
    and a finished study's per-setup ``complete`` records are subsumed
    by its ``done`` record.  Compaction keeps, per study in submission
    order, the ``submit`` record, then either the ``done`` record or
    (for unfinished studies) the latest ``complete`` record per index —
    and drops every lease/requeue line and everything corrupt, bumping
    the header's ``torn_recovered`` by the corrupt lines dropped.

    Crash-safe and verified exactly like
    :func:`repro.core.runner.compact_journal`: temp file, shim fsync,
    full re-read with every checksum re-verified, then ``os.replace``;
    on any verification failure the original is left untouched.
    """
    if not os.path.exists(path):
        raise ArchiveCorruption("service WAL does not exist", path=path)
    bytes_before = os.path.getsize(path)
    with open(path) as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ArchiveCorruption("service WAL is empty", path=path)
    header = _parse_header(lines[0], path)

    submits: "collections.OrderedDict[str, str]" = collections.OrderedDict()
    dones: Dict[str, str] = {}
    completes: Dict[str, Dict[int, str]] = {}
    records_before = stale = dropped = 0
    for line in lines[1:]:
        rec = Journal._parse_aux(line)
        if rec is None:
            if line.strip():
                dropped += 1
            continue
        records_before += 1
        kind, data = rec["kind"], rec["data"]
        study = data.get("study")
        if not isinstance(study, str):
            stale += 1
            continue
        if kind == "submit":
            submits.setdefault(study, line)
        elif kind == "done":
            dones[study] = line
        elif kind == "complete":
            index = data.get("index")
            if isinstance(index, int):
                completes.setdefault(study, {})[index] = line
            else:
                stale += 1
        else:  # lease / requeue / unknown: resolved promises, drop
            stale += 1

    header["torn_recovered"] = _header_torn_count(header) + dropped
    out = [json.dumps(header, sort_keys=True)]
    for study, submit_line in submits.items():
        out.append(submit_line)
        if study in dones:
            out.append(dones[study])
        else:
            by_index = completes.get(study, {})
            out.extend(by_index[i] for i in sorted(by_index))
    expected = len(out) - 1

    tmp = path + ".compact"
    with open(tmp, "w") as fh:
        fh.write("\n".join(out) + "\n")
        fh.flush()
        storageio.fsync(fh, f"compact:{os.path.basename(path)}")
    _verify_compacted_wal(tmp, expected)
    os.replace(tmp, path)
    return WalCompactionStats(
        path=path,
        bytes_before=bytes_before,
        bytes_after=os.path.getsize(path),
        records_before=records_before,
        records_after=expected,
        stale_leases_dropped=stale,
        dropped_corrupt=dropped,
    )


def _verify_compacted_wal(tmp: str, expect_records: int) -> None:
    """Integrity re-read before the atomic swap: every line must parse
    and every checksum must hold, or the original stays untouched."""
    with open(tmp) as fh:
        lines = fh.read().splitlines()
    problems: List[str] = []
    try:
        header = json.loads(lines[0]) if lines else None
    except json.JSONDecodeError:
        header = None
    if not isinstance(header, dict) or header.get("format") != WAL_FORMAT:
        problems.append("header failed to re-parse")
    ok = sum(1 for line in lines[1:] if Journal._parse_aux(line) is not None)
    if ok != expect_records or ok != len(lines) - 1:
        problems.append(
            f"expected {expect_records} records, re-read {ok} "
            f"of {len(lines) - 1} lines"
        )
    if problems:
        os.remove(tmp)
        raise ArchiveCorruption(
            "WAL compaction failed verification ("
            + "; ".join(sorted(set(problems)))
            + "); original left untouched",
            path=tmp,
        )
