"""Fault-tolerant sweep execution: parallel, retried, checkpointed.

The paper's remedy for measurement bias is *setup randomization* —
sample many experimental setups and report distributions — which makes
long many-setup sweeps the lab's hot path.  :class:`SweepRunner` turns
the serial, in-process :meth:`Experiment.sweep` into a production run:

- **parallel & supervised** — setups are measured across a
  :class:`~repro.core.supervisor.SupervisedPool` of long-lived worker
  processes (``jobs=N``) with heartbeat liveness tracking: a crashed
  worker (dead PID, broken pipe) or a hung one (missed-heartbeat past
  ``hang_timeout``) is detected, killed, and replaced within a bounded
  respawn budget, and its in-flight setup fails over to another worker
  *at the same attempt* — infrastructure failure never consumes a
  measurement's retry budget.  Result order is the *request* order,
  independent of completion order, so parallel and serial sweeps are
  byte-identical — even under injected worker crashes and hangs;
- **distributed** — with ``hosts`` set, the same event loop drives a
  :class:`~repro.core.distributed.AgentPool` of remote agents over TCP
  instead of local processes; both pools implement
  :class:`~repro.core.supervisor.DispatchPool`, so every supervision
  guarantee above (failover at the same attempt, bounded recovery,
  honest degradation, byte-identical reports) holds across machines
  exactly as it does across processes;
- **bounded** — every run is armed with the engine's cycle-budget
  watchdog (``max_cycles``) and a per-measurement wall-clock deadline
  (``timeout``), so a hung run becomes a :class:`RunTimeout`, not a
  hung sweep;
- **retried** — retryable faults (timeouts, transient corruption,
  verification flakes, injected compiler crashes) are re-attempted with
  seeded exponential backoff; setups that exhaust their retries are
  **quarantined** with their final error;
- **checkpointed** — every completed measurement is appended to an
  on-disk journal (format v2 records with per-record SHA-256 checksums)
  the moment it lands, so an interrupted sweep re-run with the same
  journal resumes with **zero re-measurement**; very large or
  much-resumed journals are compacted (:func:`compact_journal`) to one
  record per setup via an atomic, integrity-verified rewrite;
- **accounted** — the :class:`SweepReport` enumerates every requested
  setup as measured, resumed-from-journal, or quarantined; partial
  coverage is never silent (van der Kouwe et al.'s "benchmarking
  crimes" include silently dropped results).  If the pool exhausts its
  respawn budget, the remaining setups are finished serially in-process
  and the report is marked **degraded**, naming each of them.

Fault injection (:mod:`repro.faults`) rides behind the substrate, so
every recovery path here is itself testable and deterministic —
including the supervision paths, via the process-level chaos kinds
(``worker_crash``, ``worker_hang``, ``journal_torn_write``).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import faults, storageio, workloads
from repro._errors import (
    ArchiveCorruption,
    JournalWriteError,
    ReproError,
    RunTimeout,
    classify,
    is_retryable,
)
from repro.core.experiment import Experiment, Measurement
from repro.core.session import (
    FORMAT_V2,
    canonical_json,
    load_measurement_record,
    measurement_to_dict,
    record_checksum,
    setup_to_dict,
)
from repro.core.setup import ExperimentalSetup
from repro.core import supervisor
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs import progress as obs_progress
from repro.obs import trace as obs_trace

#: Journal header marker: a v2 archive streamed as JSON Lines.
JOURNAL_FORMAT = FORMAT_V2 + "-journal"


# -- configuration ----------------------------------------------------------


def seeded_backoff(
    base: float,
    seed: int,
    key: str,
    attempt: int,
    cap: Optional[float] = None,
) -> float:
    """Seeded exponential backoff with deterministic jitter.

    The delay before (1-based) ``attempt`` is
    ``base * 2**(attempt-2) * (0.5 + U)`` where ``U`` is the
    deterministic :func:`repro.faults._uniform` draw on
    ``(seed, "backoff:attempt", key)`` — so two runs of the same faulted
    sweep (or two restarts of the same reconnecting agent) back off on
    exactly the same schedule, and the jitter still de-synchronizes
    *different* keys so a fleet never stampedes in lockstep.  The first
    attempt (and a non-positive ``base``) waits nothing; ``cap`` bounds
    the delay so an exponent never waits unboundedly long.

    This is the one backoff policy shared by measurement retries
    (:meth:`RunnerConfig.backoff_delay`), coordinator reconnects to
    lost agents (:class:`~repro.core.distributed.AgentPool`), and
    dial-in agents re-registering with a restarted service coordinator
    (:meth:`~repro.core.distributed.AgentServer.serve_connect`).
    """
    if attempt <= 1 or base <= 0:
        return 0.0
    jitter = 0.5 + faults._uniform(seed, f"backoff:{attempt}", key)
    delay = base * (2 ** (attempt - 2)) * jitter
    if cap is not None:
        delay = min(cap, delay)
    return delay


@dataclass(frozen=True)
class RunnerConfig:
    """Execution policy for one sweep.

    Attributes:
        jobs: worker processes; 1 runs serially in-process (reusing the
            experiment's memoized builds directly).
        timeout: wall-clock seconds allowed per measurement attempt
            (None: unlimited).
        max_cycles: simulated-cycle budget per run (None: unlimited);
            the engine's own watchdog enforces it.
        max_retries: re-attempts allowed *after* the first try of a
            retryable fault before the setup is quarantined.
        backoff_base: first retry delay in seconds; attempt *k* waits
            ``backoff_base * 2**(k-1)``, jittered.
        backoff_seed: seed for the deterministic backoff jitter.
        heartbeat_interval: seconds between worker heartbeat stamps
            (parallel mode only).
        hang_timeout: a busy worker whose heartbeat is staler than this
            is declared hung, killed, and its setup failed over.  None
            (the default) lets the supervised pool *adapt* the threshold
            to observed task durations — a clamped multiple of the
            rolling p95 (see
            :meth:`~repro.core.supervisor.SupervisedPool.effective_hang_timeout`);
            the distributed coordinator, which cannot observe remote
            task durations directly, falls back to
            :data:`~repro.core.supervisor.DEFAULT_HANG_TIMEOUT` for its
            own link liveness while each agent's local pool adapts.
        max_respawns: replacement workers the supervised pool may start
            before the sweep degrades to in-process execution; with
            ``hosts`` set it is the coordinator's *reconnection* budget
            across lost agents instead.
        journal_max_records: auto-compact the checkpoint journal after a
            completed sweep when it holds more than this many
            (measurement + aux) records; None disables.
        journal_max_bytes: likewise, by file size; None disables.
        hosts: ``"host1:port1,host2:port2"`` roster of remote sweep
            agents (``repro agent``); when set the sweep is dispatched
            over TCP and ``jobs`` is ignored (each agent's capacity is
            its own ``--jobs``).  None (the default) runs locally.
        connect_timeout: TCP connect + handshake deadline per agent
            connection attempt (distributed mode only).
        secret: shared secret for the agent hello handshake (distributed
            mode only); must match each agent's ``--secret`` /
            ``REPRO_AGENT_SECRET``.  None connects unauthenticated,
            which secret-requiring agents reject.
        trace_sample: keep per-setup trace spans for 1 in N setups
            (deterministic by setup fault key —
            :func:`repro.obs.perf.trace_sampled`); 1 (the default) keeps
            every span.  Sampling bounds trace volume on very large
            sweeps without touching measurements: canonical report JSON
            is byte-identical at any rate, and the rate is recorded in
            the manifest's runner section.
        timeline_interval: seconds between metrics-timeline samples when
            the sweep is given a timeline path (see
            :class:`~repro.obs.perf.TimelineRecorder`).
    """

    jobs: int = 1
    timeout: Optional[float] = None
    max_cycles: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_seed: int = 0
    heartbeat_interval: float = 0.2
    hang_timeout: Optional[float] = None
    max_respawns: int = 8
    journal_max_records: Optional[int] = None
    journal_max_bytes: Optional[int] = None
    hosts: Optional[str] = None
    connect_timeout: float = 10.0
    secret: Optional[str] = None
    trace_sample: int = 1
    timeline_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.hosts is not None:
            from repro.core import distributed

            distributed.parse_hosts(self.hosts)  # fail loudly, early
        if self.connect_timeout <= 0:
            raise ValueError("connect_timeout must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if (
            self.hang_timeout is not None
            and self.hang_timeout <= self.heartbeat_interval
        ):
            raise ValueError(
                "hang_timeout must exceed heartbeat_interval "
                f"({self.hang_timeout} <= {self.heartbeat_interval})"
            )
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        for name in ("journal_max_records", "journal_max_bytes"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None")
        if self.trace_sample < 1:
            raise ValueError(
                f"trace_sample must be >= 1, got {self.trace_sample}"
            )
        if self.timeline_interval <= 0:
            raise ValueError(
                f"timeline_interval must be > 0, got {self.timeline_interval}"
            )

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Seeded exponential backoff before (1-based) ``attempt``.

        Deterministic in (seed, key, attempt) so two runs of the same
        faulted sweep retry on the same schedule.
        """
        return seeded_backoff(self.backoff_base, self.backoff_seed, key, attempt)


# -- accounting -------------------------------------------------------------


@dataclass(frozen=True)
class QuarantineEntry:
    """One setup that exhausted its retries (or failed fatally)."""

    index: int
    setup: str  # describe() string — human-facing, stable
    error_type: str
    message: str
    fate: str  # "retryable" (exhausted) | "fatal"
    attempts: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "setup": self.setup,
            "error_type": self.error_type,
            "message": self.message,
            "fate": self.fate,
            "attempts": self.attempts,
        }


@dataclass
class SweepReport:
    """Full accounting of one sweep: every requested setup has a fate.

    ``measured + resumed + quarantined == requested`` always holds
    (asserted by :meth:`accounted`); ``statuses[i]`` names setup *i*'s
    fate so partial coverage is attributable, not just countable.
    """

    requested: int = 0
    measured: int = 0
    resumed: int = 0
    retries: int = 0
    quarantined: List[QuarantineEntry] = field(default_factory=list)
    statuses: List[str] = field(default_factory=list)
    #: Sweep-scoped metrics snapshot (deterministic event counters only —
    #: accounted in the parent process, so serial and parallel sweeps of
    #: the same plan snapshot identically; wall-clock metrics live in the
    #: provenance manifest instead).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: True when the sweep finished in a degraded mode — the supervised
    #: pool exhausted its respawn budget (``degraded_setups`` names each
    #: setup finished serially in-process) and/or the storage layer
    #: failed underneath the sweep (``degraded_storage`` names each
    #: durability loss: journal fallen back to memory, store writes
    #: disabled).  Never silent: the measurements are still complete and
    #: correct, but their persistence guarantees are not.
    degraded: bool = False
    degraded_setups: List[str] = field(default_factory=list)
    degraded_storage: List[str] = field(default_factory=list)

    def accounted(self) -> bool:
        return (
            self.measured + self.resumed + len(self.quarantined)
            == self.requested
            == len(self.statuses)
        )

    @property
    def complete(self) -> bool:
        """Every requested setup has a measurement."""
        return self.measured + self.resumed == self.requested

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requested": self.requested,
            "measured": self.measured,
            "resumed": self.resumed,
            "retries": self.retries,
            "quarantined": [q.to_dict() for q in self.quarantined],
            "statuses": list(self.statuses),
            "metrics": dict(self.metrics),
            "degraded": self.degraded,
            "degraded_setups": list(self.degraded_setups),
            "degraded_storage": list(self.degraded_storage),
        }

    def to_json(self) -> str:
        """Canonical serialization — byte-identical across runs of the
        same (setups, fault plan, config), whatever the completion
        order, which is what the determinism tests assert."""
        return canonical_json(self.to_dict())

    def summary_line(self) -> str:
        line = (
            f"sweep: {self.requested} requested = {self.measured} measured "
            f"+ {self.resumed} resumed + {len(self.quarantined)} quarantined "
            f"({self.retries} retries)"
        )
        for q in self.quarantined:
            line += (
                f"\n  QUARANTINED [{q.index}] {q.setup}: {q.error_type} "
                f"({q.fate}, {q.attempts} attempts): {q.message}"
            )
        if self.degraded_setups:
            line += (
                f"\n  DEGRADED: worker respawn budget exhausted; "
                f"{len(self.degraded_setups)} setup(s) finished serially "
                "in-process:"
            )
            for setup in self.degraded_setups:
                line += f"\n    {setup}"
        if self.degraded_storage:
            line += "\n  STORAGE DEGRADED:"
            for loss in self.degraded_storage:
                line += f"\n    {loss}"
        return line


@dataclass
class SweepResult:
    """Measurements in request order (None where quarantined) + report."""

    measurements: List[Optional[Measurement]]
    report: SweepReport

    @property
    def ok(self) -> List[Measurement]:
        return [m for m in self.measurements if m is not None]


# -- checkpoint journal -----------------------------------------------------


def sweep_id(
    workload: str, size: str, seed: int, setups: Sequence[ExperimentalSetup]
) -> str:
    """Identity of a sweep: workload, input, and the full setup list.

    A journal records measurements *for one sweep*; resuming with a
    different setup list must be rejected, not silently misapplied.
    """
    payload = {
        "workload": workload,
        "size": size,
        "seed": seed,
        "setups": [setup_to_dict(s) for s in setups],
    }
    return record_checksum(payload)


class Journal:
    """Append-only JSONL checkpoint for one sweep.

    Line 1 is a header (format marker + sweep id); each further line is
    one measurement record — the v2 archive record schema (payload +
    per-record SHA-256) plus the setup's index in the sweep.  Records
    are flushed and fsynced as they land, so a killed sweep loses at
    most the record being written; a truncated trailing line is detected
    by its checksum, dropped, and the journal compacted on resume.
    """

    def __init__(self, path: str, sweep: str) -> None:
        self.path = path
        self.sweep = sweep
        self._fh = None  # type: Optional[Any]
        #: Auxiliary (non-measurement) records found by :meth:`load`,
        #: e.g. metrics snapshots appended at the end of each run.
        self.aux: List[Dict] = []
        #: Cumulative count of torn/corrupt lines this journal has ever
        #: dropped, persisted in the header across rewrites.  Also the
        #: attempt dimension for ``journal_torn_write`` fault draws, so
        #: a *transient* injected tear stops re-firing once recovered.
        self.recovered_torn = 0

    # -- reading ----------------------------------------------------------

    def load(self) -> Dict[int, Dict]:
        """Measurement dicts by sweep index from an existing journal.

        Returns {} when the journal does not exist yet.  Raises
        :class:`ArchiveCorruption` when the journal belongs to a
        different sweep or its header is damaged; a corrupt *record*
        (torn final write) is dropped and the file compacted.
        """
        if not os.path.exists(self.path):
            return {}
        with open(self.path) as fh:
            lines = fh.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ArchiveCorruption(
                f"journal header is not valid JSON: {exc}", path=self.path
            ) from exc
        if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
            raise ArchiveCorruption(
                f"not a {JOURNAL_FORMAT} journal "
                f"(got {header.get('format') if isinstance(header, dict) else header!r})",
                path=self.path,
            )
        if header.get("sweep") != self.sweep:
            raise ArchiveCorruption(
                "journal belongs to a different sweep (workload/input/"
                "setup list changed); refusing to resume from it",
                path=self.path,
            )
        self.recovered_torn = _header_torn_count(header)
        done: Dict[int, Dict] = {}
        self.aux = []
        valid_lines = [lines[0]]
        dropped = 0
        for lineno, line in enumerate(lines[1:], start=1):
            rec = self._parse_record(line)
            if rec is not None:
                index, data = rec
                done[index] = data
                valid_lines.append(line)
                continue
            aux = self._parse_aux(line)
            if aux is not None:
                self.aux.append(aux)
                valid_lines.append(line)
                continue
            dropped += 1
        if dropped:
            # Compact: rewrite without torn records so later appends
            # don't land after a corrupt line (atomic replace).  The
            # header keeps the running recovery count.
            self.recovered_torn += dropped
            header["torn_recovered"] = self.recovered_torn
            valid_lines[0] = json.dumps(header, sort_keys=True)
            tmp = self.path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write("\n".join(valid_lines) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        return done

    @staticmethod
    def _parse_record(line: str) -> Optional[Tuple[int, Dict]]:
        """(index, measurement dict) — or None for a torn/corrupt line."""
        line = line.strip()
        if not line:
            return None
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(rec, dict):
            return None
        data = rec.get("measurement")
        index = rec.get("index")
        if not isinstance(data, dict) or not isinstance(index, int):
            return None
        if rec.get("sha256") != record_checksum(data):
            return None
        return index, data

    @staticmethod
    def _parse_aux(line: str) -> Optional[Dict]:
        """A checksummed auxiliary record — or None for anything else."""
        line = line.strip()
        if not line:
            return None
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(rec, dict):
            return None
        kind = rec.get("kind")
        data = rec.get("data")
        if not isinstance(kind, str) or not isinstance(data, dict):
            return None
        if rec.get("sha256") != record_checksum(data):
            return None
        return {"kind": kind, "data": data}

    # -- writing ----------------------------------------------------------

    def open_for_append(self, note: str = "") -> None:
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        self._fh = open(self.path, "a")
        if fresh:
            header = {
                "format": JOURNAL_FORMAT,
                "sweep": self.sweep,
                "note": note,
                "torn_recovered": self.recovered_torn,
            }
            self._write_line(json.dumps(header, sort_keys=True))

    def append(
        self, index: int, data: Dict, fault_key: Optional[str] = None
    ) -> None:
        """Journal one completed measurement (durable before returning).

        ``fault_key`` opts the append into storage fault injection:

        - ``journal_torn_write`` — half the record reaches disk and
          :class:`~repro.faults.TornWrite` unwinds the sweep, exactly
          what a crash mid-append does;
        - ``journal_torn_tail`` — a truncated line lands *silently*
          (flushed, never fsynced — a power cut after the page-cache
          write) and the sweep continues believing the record durable;
        - ``disk_full`` — the write fails with a deterministic ENOSPC
          before any bytes land, surfaced as
          :class:`~repro._errors.JournalWriteError`.

        Both tear kinds draw on the journal's cumulative recovery count,
        so a transient tear fires once and clears on the resumed run.
        """
        assert self._fh is not None, "journal not opened for append"
        rec = {
            "index": index,
            "measurement": data,
            "sha256": record_checksum(data),
        }
        line = canonical_json(rec)
        if fault_key is not None and faults.should_inject_at(
            "journal_torn_write", fault_key, self.recovered_torn + 1
        ):
            self._fh.write(line[: len(line) // 2])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            raise faults.TornWrite(
                f"injected torn journal write at setup {index}"
            )
        if fault_key is not None and storageio.torn_tail_fires(
            fault_key, self.recovered_torn + 1
        ):
            # Truncated line, flushed but never synced: the record is
            # lost to a later crash, and nothing tells the sweep so.
            self._fh.write(line[: len(line) // 2] + "\n")
            self._fh.flush()
            return
        self._write_line(line, key=fault_key, record=index)

    def append_aux(self, kind: str, data: Dict) -> None:
        """Journal a checksummed non-measurement record (e.g. the
        sweep's closing metrics snapshot).  Aux records are preserved
        across resumes and ignored by measurement loading."""
        assert self._fh is not None, "journal not opened for append"
        rec = {
            "kind": kind,
            "data": data,
            "sha256": record_checksum(data),
        }
        self._write_line(canonical_json(rec))

    def _write_line(
        self, line: str, key: Optional[str] = None, record: Optional[int] = None
    ) -> None:
        """One durable journal line through the fault-aware I/O shim.

        Real *and* injected write failures surface as
        :class:`~repro._errors.JournalWriteError` carrying the journal
        path and record index — never a raw ``OSError`` traceback.
        ``key`` (the record's fault key) opts the write into ``disk_full``
        injection and names the ``journal_fsync_stall`` draw.
        """
        assert self._fh is not None
        try:
            if key is not None:
                storageio.check_disk_full(key, path=self.path)
            self._fh.write(line + "\n")
            self._fh.flush()
            storageio.fsync(self._fh, key or self.path)
        except OSError as exc:
            raise JournalWriteError(
                str(exc), path=self.path, record=record
            ) from exc

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _header_torn_count(header: Dict) -> int:
    try:
        return max(0, int(header.get("torn_recovered", 0) or 0))
    except (TypeError, ValueError):
        return 0


class MemoryJournal:
    """Typed in-memory stand-in after the on-disk journal failed.

    Same append surface as :class:`Journal`, zero durability: records
    accumulate in memory so in-process consumers (metrics aux, tests)
    still see them, but a crash loses everything — which is why the
    fallback is always accompanied by a loud degraded event and a
    ``degraded_storage`` entry in the report.
    """

    def __init__(self, path: str, sweep: str) -> None:
        self.path = path
        self.sweep = sweep
        self.records: Dict[int, Dict] = {}
        self.aux: List[Dict] = []

    def append(
        self, index: int, data: Dict, fault_key: Optional[str] = None
    ) -> None:
        """Record a measurement in memory (latest write per index wins)."""
        self.records[index] = data

    def append_aux(self, kind: str, data: Dict) -> None:
        """Record an auxiliary event in memory."""
        self.aux.append({"kind": kind, "data": data})

    def close(self) -> None:
        """No-op: there is nothing durable to flush."""
        pass


class ResilientJournal:
    """Journal facade that degrades instead of crashing the sweep.

    Wraps a :class:`Journal`; the first
    :class:`~repro._errors.JournalWriteError` (ENOSPC, I/O error —
    injected or real) swaps in a :class:`MemoryJournal` for the rest of
    the sweep and reports the loss once via ``on_degrade``.  Measurements
    keep landing; only their durability is gone.  :class:`TornWrite`
    is *not* caught — an injected crash must unwind the sweep exactly
    like a real one.
    """

    def __init__(
        self,
        journal: Journal,
        on_degrade: Optional[Callable[[JournalWriteError], None]] = None,
    ) -> None:
        self._disk = journal
        self._memory: Optional[MemoryJournal] = None
        self._on_degrade = on_degrade
        #: The write error that forced the fallback, or None.
        self.failure: Optional[JournalWriteError] = None

    # Delegated identity: callers treat this exactly like a Journal.
    @property
    def path(self) -> str:
        """The on-disk journal path (even after a memory fallback)."""
        return self._disk.path

    @property
    def sweep(self) -> str:
        """The sweep id the journal belongs to."""
        return self._disk.sweep

    @property
    def recovered_torn(self) -> int:
        """Torn lines dropped when the journal was last loaded."""
        return self._disk.recovered_torn

    @property
    def aux(self) -> List[Dict]:
        """Auxiliary records parsed from the on-disk journal."""
        return self._disk.aux

    @property
    def degraded(self) -> bool:
        """Has the journal fallen back to memory?"""
        return self._memory is not None

    def load(self) -> Dict[int, Dict]:
        """Load prior records from disk (resume path; never degraded)."""
        return self._disk.load()

    def open_for_append(self, note: str = "") -> None:
        """Open the disk journal; a write failure degrades to memory."""
        try:
            self._disk.open_for_append(note=note)
        except JournalWriteError as exc:
            self._degrade(exc)

    def append(
        self, index: int, data: Dict, fault_key: Optional[str] = None
    ) -> None:
        """Append a record, falling back to memory on the first failure."""
        if self._memory is not None:
            self._memory.append(index, data, fault_key=fault_key)
            return
        try:
            self._disk.append(index, data, fault_key=fault_key)
        except JournalWriteError as exc:
            self._degrade(exc)
            assert self._memory is not None
            self._memory.append(index, data, fault_key=fault_key)

    def append_aux(self, kind: str, data: Dict) -> None:
        """Append an aux record, falling back to memory on failure."""
        if self._memory is not None:
            self._memory.append_aux(kind, data)
            return
        try:
            self._disk.append_aux(kind, data)
        except JournalWriteError as exc:
            self._degrade(exc)
            assert self._memory is not None
            self._memory.append_aux(kind, data)

    def close(self) -> None:
        """Close the disk journal, swallowing late I/O errors."""
        try:
            self._disk.close()
        except OSError:
            pass

    def _degrade(self, exc: JournalWriteError) -> None:
        self.failure = exc
        try:
            self._disk.close()
        except OSError:
            pass
        self._memory = MemoryJournal(self._disk.path, self._disk.sweep)
        obs_metrics.counter("storage.journal_fallbacks").inc()
        obs_trace.instant(
            "journal_degraded",
            category="runner",
            path=self._disk.path,
            record=exc.record,
        )
        if self._on_degrade is not None:
            self._on_degrade(exc)


# -- journal compaction -----------------------------------------------------


@dataclass(frozen=True)
class CompactionStats:
    """What one :func:`compact_journal` pass did."""

    path: str
    bytes_before: int
    bytes_after: int
    records_before: int
    records_after: int
    aux_before: int
    aux_after: int
    dropped_corrupt: int

    def summary_line(self) -> str:
        line = (
            f"compacted {self.path}: "
            f"{self.records_before} -> {self.records_after} records, "
            f"{self.aux_before} -> {self.aux_after} aux, "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )
        if self.dropped_corrupt:
            line += f", dropped {self.dropped_corrupt} corrupt line(s)"
        return line


def journal_needs_compaction(
    path: str,
    max_records: Optional[int] = None,
    max_bytes: Optional[int] = None,
) -> bool:
    """Does the journal at ``path`` exceed either growth threshold?"""
    if not os.path.exists(path):
        return False
    if max_bytes is not None and os.path.getsize(path) > max_bytes:
        return True
    if max_records is not None:
        with open(path) as fh:
            lines = sum(1 for line in fh if line.strip())
        return lines - 1 > max_records  # header excluded
    return False


def compact_journal(path: str) -> CompactionStats:
    """Atomically rewrite a journal down to its resume-relevant content.

    A much-resumed (or fault-ridden) journal accumulates stale lines:
    one metrics aux record per completed run, superseded duplicates,
    torn fragments.  Compaction keeps the **latest** valid measurement
    record per setup index (sorted by index) and the latest aux record
    per kind, drops everything corrupt, and bumps the header's
    ``torn_recovered`` count by the lines dropped.

    The rewrite is crash-safe and verified: the compacted journal is
    written to a temp file, fsynced, re-read with every checksum
    re-verified, and only then moved over the original with
    ``os.replace``.  On any verification failure the original journal is
    left untouched.
    """
    if not os.path.exists(path):
        raise ArchiveCorruption("journal does not exist", path=path)
    bytes_before = os.path.getsize(path)
    with open(path) as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ArchiveCorruption("journal is empty", path=path)
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ArchiveCorruption(
            f"journal header is not valid JSON: {exc}", path=path
        ) from exc
    if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
        raise ArchiveCorruption(
            f"not a {JOURNAL_FORMAT} journal; refusing to compact",
            path=path,
        )
    latest: Dict[int, str] = {}
    latest_aux: Dict[str, str] = {}
    records_before = aux_before = dropped = 0
    for line in lines[1:]:
        rec = Journal._parse_record(line)
        if rec is not None:
            records_before += 1
            latest[rec[0]] = line
            continue
        aux = Journal._parse_aux(line)
        if aux is not None:
            aux_before += 1
            latest_aux[aux["kind"]] = line
            continue
        if line.strip():
            dropped += 1
    header["torn_recovered"] = _header_torn_count(header) + dropped
    out = [json.dumps(header, sort_keys=True)]
    out += [latest[index] for index in sorted(latest)]
    out += [latest_aux[kind] for kind in sorted(latest_aux)]
    tmp = path + ".compact"
    with open(tmp, "w") as fh:
        fh.write("\n".join(out) + "\n")
        fh.flush()
        # Through the shim: an injected journal_fsync_stall delays the
        # sync, and the verification re-read below guarantees a rewrite
        # whose sync never completed can't be published over the
        # original.
        storageio.fsync(fh, f"compact:{os.path.basename(path)}")
    _verify_compacted_journal(tmp, len(latest), len(latest_aux))
    os.replace(tmp, path)
    return CompactionStats(
        path=path,
        bytes_before=bytes_before,
        bytes_after=os.path.getsize(path),
        records_before=records_before,
        records_after=len(latest),
        aux_before=aux_before,
        aux_after=len(latest_aux),
        dropped_corrupt=dropped,
    )


def _verify_compacted_journal(
    tmp: str, expect_records: int, expect_aux: int
) -> None:
    """Integrity re-read before the atomic swap: every line must parse
    and every checksum must hold, or the original stays untouched."""
    with open(tmp) as fh:
        lines = fh.read().splitlines()
    problems: List[str] = []
    try:
        header = json.loads(lines[0]) if lines else None
    except json.JSONDecodeError:
        header = None
    if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
        problems.append("header failed to re-parse")
    ok_records = ok_aux = 0
    for line in lines[1:]:
        if Journal._parse_record(line) is not None:
            ok_records += 1
        elif Journal._parse_aux(line) is not None:
            ok_aux += 1
        else:
            problems.append("a rewritten line failed its checksum")
    if ok_records != expect_records or ok_aux != expect_aux:
        problems.append(
            f"expected {expect_records} records + {expect_aux} aux, "
            f"re-read {ok_records} + {ok_aux}"
        )
    if problems:
        os.remove(tmp)
        raise ArchiveCorruption(
            "journal compaction failed verification ("
            + "; ".join(sorted(set(problems)))
            + "); original left untouched",
            path=tmp,
        )


# -- worker side ------------------------------------------------------------

_WORKER_EXPERIMENTS: Dict[Tuple[str, str, int, bool], Experiment] = {}


def _pool_initializer(plan: Optional[faults.FaultPlan]) -> None:
    faults.install(plan)


def _worker_experiment(
    workload: str, size: str, seed: int, verify: bool
) -> Experiment:
    key = (workload, size, seed, verify)
    exp = _WORKER_EXPERIMENTS.get(key)
    if exp is None:
        exp = Experiment(workloads.get(workload), size=size, seed=seed, verify=verify)
        _WORKER_EXPERIMENTS[key] = exp
    return exp


@contextmanager
def _wall_clock_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Arm a SIGALRM-based deadline raising :class:`RunTimeout`.

    Only effective on the main thread of a process with SIGALRM (i.e.
    POSIX) — exactly where sweep measurement runs; elsewhere it is a
    no-op and the cycle-budget watchdog remains the backstop.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"wall-clock timeout after {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _error_info(exc: BaseException) -> Dict[str, Any]:
    return {
        "error_type": type(exc).__name__,
        "message": str(exc),
        "fate": classify(exc),
        "retryable": is_retryable(exc),
    }


def _measure_task(payload: Tuple) -> Tuple:
    """One measurement attempt in a worker process.

    Returns ``("ok", index, attempt, measurement_dict)`` or
    ``("err", index, attempt, error_info)`` — exceptions never cross the
    process boundary raw, so the parent's accounting is uniform.
    """
    (index, workload, size, seed, setup, verify, attempt, timeout,
     max_cycles, delay) = payload
    if delay > 0:
        time.sleep(delay)
    exp = _worker_experiment(workload, size, seed, verify)
    key = faults.fault_key(workload, size, seed, setup)
    faults.begin_attempt(key, attempt)
    try:
        with _wall_clock_deadline(timeout):
            m = exp.run(setup, max_cycles=max_cycles)
        return ("ok", index, attempt, measurement_to_dict(m))
    except Exception as exc:  # noqa: BLE001 — classified, not swallowed
        return ("err", index, attempt, _error_info(exc))


# -- the runner -------------------------------------------------------------


class SweepRunner:
    """Fault-tolerant executor for one experiment's setup sweep.

    Args:
        experiment: the measurement harness (workload/input identity is
            taken from it; with ``jobs=1`` its memoized caches are used
            directly, and in every mode its run cache is primed with the
            sweep's results, so downstream serial analysis re-measures
            nothing).
        config: execution policy (parallelism, deadlines, retry budget).
        journal_path: append-only checkpoint; pass the same path again
            to resume an interrupted sweep with zero re-measurement.
        fault_plan: optional deterministic fault injection, installed in
            workers (and scoped around serial sweeps).
        progress: per-setup event sink
            (:class:`~repro.obs.progress.ProgressReporter`); default is
            the no-op reporter, so long sweeps are only as chatty as the
            caller asks for.  Measured/retried/quarantined events are
            emitted the moment they happen, in the parent process.
        timeline_path: when set, a :class:`~repro.obs.perf.TimelineRecorder`
            streams periodic sweep-health samples (progress, throughput,
            worker utilisation, store hits) to this JSONL file for the
            sweep's duration, at ``config.timeline_interval`` seconds per
            sample — wall-clock telemetry beside the journal, rendered by
            ``repro obs timeline``, never part of the report.
        store: optional content-addressed measurement store
            (:class:`repro.store.MeasurementStore`).  Before dispatching,
            every setup is probed against the store; hits skip execution
            entirely — locally *and* remotely: probing happens before the
            worker/agent pool is even created, so agents are never asked
            for work the store already holds — while the report, journal
            records, and statuses stay byte-identical to a cold run.
            Fresh measurements (and journal-resumed ones) are published
            back, and the experiment's build cache is backed by the
            store's artifact side.
        sleep: serial-mode backoff sleeper (injectable for tests).
    """

    def __init__(
        self,
        experiment: Experiment,
        config: Optional[RunnerConfig] = None,
        journal_path: Optional[str] = None,
        fault_plan: Optional[faults.FaultPlan] = None,
        progress: Optional[obs_progress.ProgressReporter] = None,
        timeline_path: Optional[str] = None,
        store=None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.experiment = experiment
        self.config = config or RunnerConfig()
        self.journal_path = journal_path
        self.fault_plan = fault_plan
        self.progress = progress or obs_progress.NULL_PROGRESS
        self.timeline_path = timeline_path
        self.store = store
        if store is not None:
            experiment.attach_store(store)
        self._sleep = sleep
        #: The pool currently dispatching (parallel mode); read by the
        #: timeline sampler for utilisation, never mutated through here.
        self._active_pool: Optional[supervisor.DispatchPool] = None
        #: Per-host provenance from the last distributed run (one dict
        #: per agent address: hostname, pid, agent version, jobs,
        #: results served); empty for local runs.  Feeds the manifest.
        self.hosts_served: List[Dict[str, Any]] = []

    # -- public API -------------------------------------------------------

    def run(self, setups: Sequence[ExperimentalSetup]) -> SweepResult:
        """Measure every setup; never raises for per-setup faults.

        Fatal faults and exhausted retries quarantine the setup; the
        report accounts for 100% of requests.  Raises only for harness
        misuse (e.g. a journal from a different sweep).
        """
        setups = list(setups)
        exp = self.experiment
        report = SweepReport(requested=len(setups))
        results: List[Optional[Measurement]] = [None] * len(setups)
        sid = sweep_id(exp.workload.name, exp.size, exp.seed, setups)
        # Sweep-scoped metrics, accounted in the *parent* process at the
        # same event points in both execution modes — so a serial and a
        # parallel sweep of the same plan snapshot identically (the
        # report-determinism tests compare to_json() bytes).
        mreg = obs_metrics.MetricsRegistry()

        with obs_trace.span(
            "sweep",
            category="runner",
            workload=exp.workload.name,
            size=exp.size,
            setups=len(setups),
            jobs=self.config.jobs,
        ) as sweep_span, faults.injected_faults(
            # Scoped here (not per-path) so parent-side journal appends
            # see the plan too — journal_torn_write fires identically in
            # serial and parallel sweeps.
            self.fault_plan if self.fault_plan is not None else faults.active()
        ):
            def _journal_degraded(exc: JournalWriteError) -> None:
                # Loud, attributed, and in the report: the sweep keeps
                # measuring, but resume durability is gone from here on.
                report.degraded = True
                report.degraded_storage.append(
                    f"journal fell back to memory: {exc}"
                )
                self.progress.worker_event(
                    "degraded",
                    -1,
                    detail=(
                        "journal write failed; continuing with an "
                        f"in-memory journal: {exc}"
                    ),
                )

            journal: Optional[ResilientJournal] = None
            resumed_indices: set = set()
            if self.journal_path is not None:
                journal = ResilientJournal(
                    Journal(self.journal_path, sid),
                    on_degrade=_journal_degraded,
                )
                for index, data in journal.load().items():
                    if 0 <= index < len(setups) and results[index] is None:
                        m = load_measurement_record(
                            data, path=journal.path, record=index
                        )
                        # Re-anchor on the caller's setup object: identical
                        # by construction (the sweep id pins the setup list)
                        # and equality-compatible with the run cache.
                        results[index] = replace(m, setup=setups[index])
                        resumed_indices.add(index)
                        report.resumed += 1
                        mreg.counter("sweep.setups_resumed").inc()
                journal.open_for_append(note=f"sweep of {len(setups)} setups")

            self.progress.sweep_started(
                len(setups), report.resumed, sweep=sid[:12]
            )
            timeline: Optional[obs_perf.TimelineRecorder] = None
            if self.timeline_path is not None:
                timeline = obs_perf.TimelineRecorder(
                    self.timeline_path,
                    interval=self.config.timeline_interval,
                )
                timeline.start(self._timeline_sampler(report, mreg))
            if self.store is not None:
                self._probe_store(setups, results, report, journal, mreg)
            pending = [i for i in range(len(setups)) if results[i] is None]
            try:
                if not pending:
                    pass  # everything resumed; nothing to dispatch
                elif self.config.jobs == 1 and not self.config.hosts:
                    self._run_serial(
                        setups, pending, results, report, journal, mreg
                    )
                else:
                    self._run_parallel(
                        setups, pending, results, report, journal, mreg,
                        sweep_span,
                    )
                report.metrics = mreg.counters()
                if journal is not None:
                    journal.append_aux(
                        "metrics",
                        {"sweep": sid, "snapshot": mreg.snapshot()},
                    )
            finally:
                if timeline is not None:
                    timeline.stop()
                if journal is not None:
                    journal.close()

            if self.store is not None and getattr(
                self.store, "write_disabled", False
            ):
                report.degraded = True
                report.degraded_storage.append(
                    "store writes disabled for this sweep: "
                    + self.store.disabled_reason
                )

            if journal is not None and not journal.degraded and (
                journal_needs_compaction(
                    journal.path,
                    self.config.journal_max_records,
                    self.config.journal_max_bytes,
                )
            ):
                stats = compact_journal(journal.path)
                obs_trace.instant(
                    "journal_compacted",
                    category="runner",
                    records=stats.records_after,
                    bytes=stats.bytes_after,
                )

            report.statuses = [
                "resumed"
                if i in resumed_indices
                else ("quarantined" if m is None else "measured")
                for i, m in enumerate(results)
            ]
            sweep_span.set(
                measured=report.measured,
                resumed=report.resumed,
                quarantined=len(report.quarantined),
                retries=report.retries,
            )
        exp.prime(results)
        assert report.accounted(), "sweep accounting is incomplete"
        self.progress.sweep_finished(report)
        return SweepResult(measurements=results, report=report)

    # -- metrics timeline -------------------------------------------------

    def _timeline_sampler(
        self, report: SweepReport, mreg: obs_metrics.MetricsRegistry
    ) -> Callable[[], Dict[str, Any]]:
        """Build the periodic health sample the timeline thread takes.

        Reads shared state (sweep-scoped counters, the live pool, store
        tallies) without locks: every field is a monotonic int updated
        under the GIL, and a sample that is one event stale is still a
        correct point on the timeline.
        """
        store = self.store

        def sample() -> Dict[str, Any]:
            counters = mreg.counters()
            measured = counters.get("sweep.setups_measured", 0)
            quarantined = counters.get("sweep.setups_quarantined", 0)
            record: Dict[str, Any] = {
                "requested": report.requested,
                "measured": measured,
                "resumed": report.resumed,
                "quarantined": quarantined,
                "retries": counters.get("sweep.retries", 0),
                "attempts": counters.get("sweep.attempts", 0),
                "pending": max(
                    0,
                    report.requested
                    - report.resumed
                    - measured
                    - quarantined,
                ),
            }
            pool = self._active_pool
            stats = getattr(pool, "stats", None)
            if callable(stats):
                record.update(stats())
            else:
                # Serial mode (or between pools): the coordinator is the
                # only worker, busy exactly while setups remain.
                record["workers_alive"] = 1
                record["workers_busy"] = 1 if record["pending"] else 0
                record["queue_depth"] = 0
            if store is not None:
                record["store_hits"] = int(getattr(store, "hits", 0))
                record["store_misses"] = int(getattr(store, "misses", 0))
            return record

        return sample

    # -- store probing ----------------------------------------------------

    def _probe_store(
        self,
        setups: Sequence[ExperimentalSetup],
        results: List[Optional[Measurement]],
        report: SweepReport,
        journal: Optional[ResilientJournal],
        mreg: obs_metrics.MetricsRegistry,
    ) -> None:
        """Incremental scheduling: resolve every setup the store already
        holds before anything is dispatched.

        A hit is accounted *exactly* like a fresh measurement — statuses
        say ``measured``, the sweep-scoped counters advance by one
        attempt and one measured setup, and the journal receives the
        same canonical record a cold run would append — so a warm
        report is byte-identical to the cold one that seeded the store.
        ``store.*`` tallies go only to the global obs registry (manifest
        territory), never into the sweep-scoped registry snapshotted
        into the report.  Because probing precedes pool construction,
        a fully-warm sweep never spawns a worker or dials an agent.
        """
        exp = self.experiment
        store = self.store
        hits = 0
        for index, setup in enumerate(setups):
            if results[index] is not None:
                # Resumed from the journal: publish to the store so the
                # next run no longer needs this journal to go warm.
                store.put_measurement(exp, results[index])
                continue
            m = store.get_measurement(exp, setup)
            if m is None:
                continue
            # Re-anchor on the caller's setup object (equality-compatible
            # with the run cache), exactly as journal resume does.
            m = replace(m, setup=setup)
            results[index] = m
            hits += 1
            report.measured += 1
            mreg.counter("sweep.attempts").inc()
            mreg.counter("sweep.setups_measured").inc()
            if journal is not None:
                key = faults.fault_key(
                    exp.workload.name, exp.size, exp.seed, setup
                )
                journal.append(index, measurement_to_dict(m), fault_key=key)
            obs_trace.instant("store_hit", category="store", index=index)
            self.progress.setup_finished(
                index, setup.describe(), "measured", attempts=1
            )
        if hits:
            self.progress.store_hits(hits, len(setups))

    # -- serial path ------------------------------------------------------

    def _run_serial(
        self,
        setups: Sequence[ExperimentalSetup],
        pending: List[int],
        results: List[Optional[Measurement]],
        report: SweepReport,
        journal: Optional[ResilientJournal],
        mreg: obs_metrics.MetricsRegistry,
        start_attempts: Optional[Dict[int, int]] = None,
    ) -> None:
        cfg = self.config
        exp = self.experiment
        for index in pending:
            setup = setups[index]
            key = faults.fault_key(
                exp.workload.name, exp.size, exp.seed, setup
            )
            # A degraded sweep hands over each setup's in-flight attempt
            # number, so its remaining retry budget carries across the
            # failover instead of resetting (the double-count fix).
            attempt = (start_attempts or {}).get(index, 1)
            # Trace sampling: unsampled setups still measure and journal
            # identically — they just open no span (deterministic by
            # fault key, so serial and parallel keep the same span set).
            span_cm = (
                obs_trace.span(
                    "setup",
                    category="runner",
                    index=index,
                    setup=setup.describe(),
                )
                if obs_perf.trace_sampled(key, cfg.trace_sample)
                else obs_trace.NULL_SPAN
            )
            with span_cm as setup_span:
                while True:
                    faults.begin_attempt(key, attempt)
                    mreg.counter("sweep.attempts").inc()
                    delay = cfg.backoff_delay(key, attempt)
                    if delay > 0:
                        self._sleep(delay)
                    try:
                        with _wall_clock_deadline(cfg.timeout):
                            m = exp.run(setup, max_cycles=cfg.max_cycles)
                    except Exception as exc:  # noqa: BLE001
                        if is_retryable(exc) and attempt <= cfg.max_retries:
                            report.retries += 1
                            mreg.counter("sweep.retries").inc()
                            self.progress.retry(
                                index,
                                setup.describe(),
                                attempt,
                                type(exc).__name__,
                                str(exc),
                            )
                            attempt += 1
                            continue
                        entry = QuarantineEntry(
                            index=index,
                            setup=setup.describe(),
                            error_type=type(exc).__name__,
                            message=str(exc),
                            fate=classify(exc),
                            attempts=attempt,
                        )
                        report.quarantined.append(entry)
                        mreg.counter("sweep.setups_quarantined").inc()
                        setup_span.set(
                            status="quarantined", attempts=attempt
                        )
                        self.progress.quarantined(
                            index,
                            entry.setup,
                            entry.error_type,
                            entry.fate,
                            entry.attempts,
                            entry.message,
                        )
                        break
                    results[index] = m
                    report.measured += 1
                    mreg.counter("sweep.setups_measured").inc()
                    if journal is not None:
                        journal.append(
                            index, measurement_to_dict(m), fault_key=key
                        )
                    if self.store is not None:
                        self.store.put_measurement(exp, m)
                    setup_span.set(status="measured", attempts=attempt)
                    self.progress.setup_finished(
                        index, setup.describe(), "measured", attempts=attempt
                    )
                    break

    # -- parallel path ----------------------------------------------------

    def _run_parallel(
        self,
        setups: Sequence[ExperimentalSetup],
        pending: List[int],
        results: List[Optional[Measurement]],
        report: SweepReport,
        journal: Optional[ResilientJournal],
        mreg: obs_metrics.MetricsRegistry,
        sweep_span: Optional[obs_trace.Span] = None,
    ) -> None:
        cfg = self.config
        exp = self.experiment
        wl, size, seed, verify = (
            exp.workload.name,
            exp.size,
            exp.seed,
            exp.verify,
        )
        tracer = obs_trace.active()

        def key_of(index: int) -> str:
            return faults.fault_key(wl, size, seed, setups[index])

        def make_task(index: int, attempt: int) -> supervisor.Task:
            key = key_of(index)
            payload = (
                index, wl, size, seed, setups[index], verify, attempt,
                cfg.timeout, cfg.max_cycles,
                cfg.backoff_delay(key, attempt),
            )
            return supervisor.Task(
                index=index, key=key, attempt=attempt, payload=payload
            )

        pool = self._make_pool(len(pending), tracer.enabled)
        self._active_pool = pool
        outstanding = set(pending)
        # In-flight attempt per still-outstanding setup; feeds the
        # degraded serial fallback so failover never re-runs or
        # double-counts a retry.
        attempts_now: Dict[int, int] = {i: 1 for i in pending}
        seen: set = set()  # (index, attempt) outcomes already handled
        try:
            for index in pending:
                pool.submit(make_task(index, 1))
            while outstanding:
                event = pool.poll()
                if event is None or event.kind == "degraded":
                    break
                if event.kind in ("crash", "hang"):
                    self._worker_failed(event)
                    continue
                if event.kind == "respawn":
                    if event.label:
                        obs_metrics.counter("distributed.reconnects").inc()
                        obs_trace.instant(
                            "agent_reconnect",
                            category="distributed",
                            worker=event.worker,
                            label=event.label,
                        )
                        self.progress.worker_event(
                            "respawn", event.worker, detail=event.label
                        )
                    else:
                        obs_metrics.counter("supervisor.respawns").inc()
                        obs_trace.instant(
                            "worker_respawn",
                            category="supervisor",
                            worker=event.worker,
                        )
                        self.progress.worker_event("respawn", event.worker)
                    continue
                kind, index, attempt, data = event.result
                if index not in outstanding or (index, attempt) in seen:
                    continue  # salvaged duplicate after failover
                seen.add((index, attempt))
                # Attempts are counted as outcomes arrive: a crashed
                # dispatch yields no outcome and is re-dispatched at the
                # same attempt, so the counter matches the serial sweep
                # (where every try produces exactly one outcome).
                mreg.counter("sweep.attempts").inc()
                if event.records and obs_perf.trace_sampled(
                    key_of(index), cfg.trace_sample
                ):
                    # Remote spans are re-rooted under a host-qualified
                    # alias so one trace tells which machine measured
                    # which setup attempt.  An unsampled setup's records
                    # are dropped here — same deterministic draw as the
                    # serial path, so both modes keep identical span sets.
                    alias = f"setup@{index}.{attempt}"
                    if event.label:
                        alias = f"{event.label}/{alias}"
                    tracer.graft(
                        event.records, parent=sweep_span, alias=alias
                    )
                if kind == "ok":
                    m = load_measurement_record(data, record=index)
                    m = replace(m, setup=setups[index])
                    results[index] = m
                    report.measured += 1
                    mreg.counter("sweep.setups_measured").inc()
                    if journal is not None:
                        journal.append(index, data, fault_key=key_of(index))
                    if self.store is not None:
                        self.store.put_measurement(exp, m)
                    obs_trace.instant(
                        "measured", category="runner", index=index
                    )
                    self.progress.setup_finished(
                        index,
                        setups[index].describe(),
                        "measured",
                        attempts=attempt,
                    )
                    outstanding.discard(index)
                    attempts_now.pop(index, None)
                    continue
                if data["retryable"] and attempt <= cfg.max_retries:
                    report.retries += 1
                    mreg.counter("sweep.retries").inc()
                    self.progress.retry(
                        index,
                        setups[index].describe(),
                        attempt,
                        data["error_type"],
                        data["message"],
                    )
                    attempts_now[index] = attempt + 1
                    pool.submit(make_task(index, attempt + 1))
                    continue
                entry = QuarantineEntry(
                    index=index,
                    setup=setups[index].describe(),
                    error_type=data["error_type"],
                    message=data["message"],
                    fate=data["fate"],
                    attempts=attempt,
                )
                report.quarantined.append(entry)
                mreg.counter("sweep.setups_quarantined").inc()
                obs_trace.instant(
                    "quarantined", category="runner", index=index
                )
                self.progress.quarantined(
                    index,
                    entry.setup,
                    entry.error_type,
                    entry.fate,
                    entry.attempts,
                    entry.message,
                )
                outstanding.discard(index)
                attempts_now.pop(index, None)
        finally:
            self._active_pool = None
            hosts_info = getattr(pool, "hosts_info", None)
            if hosts_info is not None:
                self.hosts_served = hosts_info()
            pool.close()
        if outstanding:
            # Respawn (or reconnection) budget exhausted: degrade
            # honestly — name every setup the pool failed to measure and
            # finish them serially in-process, never publish a silent
            # partial table.
            remaining = sorted(outstanding)
            report.degraded = True
            report.degraded_setups = [setups[i].describe() for i in remaining]
            obs_metrics.counter("supervisor.degraded_sweeps").inc()
            obs_trace.instant(
                "degraded", category="supervisor", remaining=len(remaining)
            )
            self.progress.worker_event(
                "degraded",
                -1,
                detail=(
                    f"finishing {len(remaining)} setup(s) serially "
                    "in-process"
                ),
            )
            self._run_serial(
                setups,
                remaining,
                results,
                report,
                journal,
                mreg,
                start_attempts={i: attempts_now.get(i, 1) for i in remaining},
            )
        report.quarantined.sort(key=lambda q: q.index)

    def _make_pool(
        self, pending_count: int, tracing: bool
    ) -> supervisor.DispatchPool:
        """Local worker pool, or a remote agent pool when ``hosts`` is
        set — the event loop above drives either through the shared
        :class:`~repro.core.supervisor.DispatchPool` interface."""
        cfg = self.config
        if cfg.hosts:
            from repro.core import distributed

            plan = faults.active()
            return distributed.AgentPool(
                hosts=distributed.parse_hosts(cfg.hosts),
                hello=distributed.build_hello(
                    plan,
                    heartbeat_interval=cfg.heartbeat_interval,
                    hang_timeout=cfg.hang_timeout,
                    max_respawns=cfg.max_respawns,
                    tracing=tracing,
                ),
                fault_plan=plan,
                heartbeat_interval=cfg.heartbeat_interval,
                hang_timeout=cfg.hang_timeout,
                max_reconnects=cfg.max_respawns,
                connect_timeout=cfg.connect_timeout,
                secret=cfg.secret,
                backoff_seed=cfg.backoff_seed,
            )
        return supervisor.SupervisedPool(
            workers=min(cfg.jobs, max(1, pending_count)),
            task_fn=_measure_task,
            fault_plan=faults.active(),
            heartbeat_interval=cfg.heartbeat_interval,
            hang_timeout=cfg.hang_timeout,
            max_respawns=cfg.max_respawns,
            tracing=tracing,
        )

    def _worker_failed(self, event: supervisor.PoolEvent) -> None:
        remote = bool(event.label)
        name = {
            "crash": "distributed.agent_losses"
            if remote
            else "supervisor.worker_crashes",
            "hang": "distributed.agent_partitions"
            if remote
            else "supervisor.worker_hangs",
        }[event.kind]
        obs_metrics.counter(name).inc()
        # Local workers run one task; a lost agent hands back every
        # in-flight task it was serving.
        if event.tasks:
            indices: List[int] = sorted(t.index for t in event.tasks)
        elif event.task is not None:
            indices = [event.task.index]
        else:
            indices = []
        index = indices[0] if indices else None
        extra: Dict[str, Any] = (
            {"label": event.label, "indices": indices} if remote else {}
        )
        obs_trace.instant(
            ("agent_" if remote else "worker_") + event.kind,
            category="distributed" if remote else "supervisor",
            worker=event.worker,
            index=index,
            **extra,
        )
        self.progress.worker_event(
            event.kind,
            event.worker,
            index=index,
            detail=event.label if remote else "",
        )
