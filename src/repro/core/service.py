"""Sweep-as-a-service: a resilient coordinator for shared bias studies.

The CLI runs one study per invocation and dials a static ``--hosts``
roster.  That inverts badly at fleet scale: agents come and go, several
clients want the same studies, and a coordinator that dies mid-sweep
must not cost anyone a measurement.  This module is the long-lived
answer — ``repro serve`` — built from three cooperating pieces:

**Agent rendezvous** (dial-in).  Instead of the coordinator dialing
agents, agents dial the coordinator (``repro agent --connect``) over
the same checksummed framing and HMAC challenge/response the listen
mode uses, and reconnect with seeded exponential backoff when the
coordinator restarts.  Registered agents form a shared pool that
successive studies lease work from; nothing about a study names an
agent up front.

**Durable study queue** (:mod:`repro.core.servicewal`).  Every
submission, lease grant, requeue, completion, and study finish is
appended to a write-ahead log *before* it takes effect, so a SIGKILLed
coordinator restarts into exactly the queue it lost.  Recovery leans on
the content-addressed store rather than journal replay: re-running a
half-finished study finds every pre-crash measurement as a store hit —
accounted identically to a fresh measurement — so the finished report
is byte-identical to one from an uninterrupted (or serial) run.

**Lease-based dispatch** (:class:`LeasePool`).  Setups are leased to
agents at-least-once: a lease whose agent disconnects, goes silent past
the adaptive expiry (the supervisor's deadline policy, shared via
:func:`~repro.core.supervisor.adaptive_deadline`), or draws the
``lease_expire`` chaos kind is requeued **at the same attempt**, so
infrastructure loss never spends a measurement's retry budget; late
duplicate results are discarded by attempt identity.  Idle agents steal
queued-up leases from overloaded ones, and when every agent is gone
past a grace window the pool degrades honestly — the runner finishes
the remainder in-process, exactly like the local pools do.

Clients talk to the service over a deliberately small local HTTP/JSON
API (``repro submit`` / ``repro status``; see docs/service.md):
submissions are admission-controlled by a bounded queue with a typed
``queue_full`` rejection, identical specs dedup to one study, drain
shuts the service down gracefully, and storage degradation is surfaced
in status documents the same way ``SweepReport.degraded_storage``
already is.

Chaos kinds owned here: ``lease_expire`` (drawn per lease grant),
``client_disconnect`` (the API drops a submission response after the
WAL append — retries dedup), and ``coordinator_crash`` (SIGKILL after
a durable WAL append; see the WAL module).  All three are deterministic
draws from the installed :class:`~repro.faults.FaultPlan`.
"""

from __future__ import annotations

import asyncio
import collections
import hmac
import http.client
import json
import os
import queue
import secrets
import signal
import sys
import threading
import time
from dataclasses import dataclass, field, fields as dc_fields
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro import faults, workloads
from repro.arch import available_machines
from repro.core import Experiment, ExperimentalSetup
from repro.core.bias import env_size_study, link_order_study, sample_link_orders
from repro.core.distributed import (
    PROTOCOL_VERSION,
    ProtocolError,
    _HEADER,
    auth_proof,
    build_hello,
    decode_payload,
    check_frame_header,
    encode_message,
    payload_to_wire,
)
from repro.core.errors import ReproError
from repro.core.report import render_series
from repro.core.runner import RunnerConfig, SweepRunner
from repro.core.servicewal import ServiceWAL
from repro.core.session import record_checksum
from repro.core import supervisor
from repro.core.supervisor import DispatchPool, PoolEvent, Task
from repro._errors import JournalWriteError
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro import storageio

#: Format marker of the per-study result documents under
#: ``<workdir>/results/``.
RESULT_FORMAT = "repro-service-result-v1"

#: Default agent-silence grace before a pool with work but no agents
#: degrades to in-process execution (tests shrink this).
DEFAULT_AGENTLESS_GRACE = 30.0

#: Cap on an HTTP request body; submissions are tiny spec documents.
_MAX_BODY = 1 << 20

_HTTP_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


# -- study specifications ----------------------------------------------------


@dataclass(frozen=True)
class StudySpec:
    """One bias study, as a value — the unit clients submit.

    Mirrors ``repro study``'s arguments field for field (same defaults),
    so a spec and a CLI invocation describe the same sweep and must
    produce byte-identical reports.  ``tag`` is part of the *study's*
    identity but not of any measurement's: two submissions differing
    only by tag are distinct queue entries whose setups content-address
    to the same store keys, so the second runs entirely store-served.
    """

    workload: str
    parameter: str = "env"
    base_opt: int = 2
    treatment_opt: int = 3
    env_start: int = 100
    env_stop: int = 356
    env_step: int = 16
    orders: int = 6
    machine: str = "core2"
    compiler: str = "gcc"
    size: str = "test"
    seed: int = 0
    tag: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (canonicalised by the checksum/WAL layers)."""
        return {f.name: getattr(self, f.name) for f in dc_fields(self)}

    def study_id(self) -> str:
        """Content address of this spec — the service's study key.

        A pure function of the spec, so identical submissions from any
        number of clients dedup to one queue entry, one WAL lifecycle,
        and one result document.
        """
        return record_checksum(self.to_dict())

    @classmethod
    def from_dict(cls, data: Any) -> "StudySpec":
        """Validated parse; raises ``ValueError`` on anything malformed
        (the API layer turns that into a 400, never a crashed study)."""
        if not isinstance(data, dict):
            raise ValueError("study spec must be a JSON object")
        known = {f.name for f in dc_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown spec field(s): {', '.join(unknown)}")
        if "workload" not in data:
            raise ValueError("spec is missing required field 'workload'")
        merged = {f.name: getattr(cls, f.name, None) for f in dc_fields(cls)
                  if f.name != "workload"}
        merged.update(data)
        spec = cls(**merged)
        if spec.workload not in workloads.all_names():
            raise ValueError(f"unknown workload {spec.workload!r}")
        if spec.parameter not in ("env", "link"):
            raise ValueError("parameter must be 'env' or 'link'")
        for name in ("base_opt", "treatment_opt"):
            if getattr(spec, name) not in (0, 1, 2, 3):
                raise ValueError(f"{name} must be an opt level 0-3")
        if spec.machine not in available_machines():
            raise ValueError(f"unknown machine {spec.machine!r}")
        if spec.compiler not in ("gcc", "icc"):
            raise ValueError("compiler must be 'gcc' or 'icc'")
        if spec.size not in ("test", "train", "ref"):
            raise ValueError("size must be test, train, or ref")
        for name in ("env_start", "env_stop", "env_step", "orders", "seed"):
            if not isinstance(getattr(spec, name), int):
                raise ValueError(f"{name} must be an integer")
        if spec.env_step < 1:
            raise ValueError("env_step must be >= 1")
        if spec.parameter == "env" and spec.env_stop <= spec.env_start:
            raise ValueError("env sweep is empty (env_stop <= env_start)")
        if spec.orders < 1:
            raise ValueError("orders must be >= 1")
        if not isinstance(spec.tag, str):
            raise ValueError("tag must be a string")
        return spec

    def build(self) -> Tuple[Experiment, List[ExperimentalSetup],
                             ExperimentalSetup, ExperimentalSetup, list]:
        """Materialise the experiment and setup list, exactly as
        ``repro study`` does (same construction order, same setups —
        this equivalence is what the byte-identity tests pin)."""
        exp = Experiment(
            workloads.get(self.workload), size=self.size, seed=self.seed
        )
        base = ExperimentalSetup(
            machine=self.machine, compiler=self.compiler,
            opt_level=self.base_opt,
        )
        treatment = ExperimentalSetup(
            machine=self.machine, compiler=self.compiler,
            opt_level=self.treatment_opt,
        )
        if self.parameter == "env":
            points = list(range(self.env_start, self.env_stop, self.env_step))
            setups = [
                s.with_changes(env_bytes=env)
                for env in points
                for s in (base, treatment)
            ]
        else:
            points = sample_link_orders(
                exp.workload.module_names(), self.orders, seed=0
            )
            setups = [
                s.with_changes(link_order=tuple(order))
                for order in points
                for s in (base, treatment)
            ]
        return exp, setups, base, treatment, points


# -- agent registry (asyncio side) -------------------------------------------


class ServiceLink:
    """Coordinator-side handle for one registered (dialed-in) agent."""

    __slots__ = (
        "slot", "label", "info", "writer", "last_recv", "lost",
        "in_flight", "results",
    )

    def __init__(self, slot: int, label: str, info: Dict[str, Any],
                 writer: asyncio.StreamWriter) -> None:
        self.slot = slot
        self.label = label
        self.info = info
        self.writer = writer
        self.last_recv = time.monotonic()
        self.lost = False
        #: Tasks currently leased to this agent (index -> Task); owned
        #: by the executor thread's :class:`LeasePool`.
        self.in_flight: Dict[int, Task] = {}
        self.results = 0

    @property
    def capacity(self) -> int:
        """Concurrent tasks this agent advertises (its ``--jobs``)."""
        return max(1, int(self.info.get("jobs", 1)))


class AgentRegistry:
    """The set of live agent links, shared between the asyncio side
    (which owns every socket) and the executor thread's lease pool.

    All socket I/O stays on the event loop: the pool *sends* by
    scheduling a write with ``call_soon_threadsafe`` and *receives*
    through the thread-safe :attr:`inbox` queue the reader coroutines
    feed (``("joined", link)`` / ``("result", link, data)`` /
    ``("lost", link)``).  Links survive across studies — one rendezvous
    serves any number of lease pools.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._links: List[ServiceLink] = []
        self._slots = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.inbox: "queue.Queue[Tuple]" = queue.Queue()

    def attach_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind the event loop that owns every link's socket."""
        self._loop = loop

    def next_slot(self) -> int:
        """A fresh worker-slot number for a registering agent."""
        with self._lock:
            self._slots += 1
            return self._slots

    def register(self, link: ServiceLink) -> None:
        """Add a freshly handshaken link (loop thread only)."""
        with self._lock:
            self._links.append(link)
        self.inbox.put(("joined", link))

    def discard(self, link: ServiceLink) -> None:
        """Drop a dead link and tell the pool (loop thread only)."""
        link.lost = True
        with self._lock:
            if link in self._links:
                self._links.remove(link)
        self.inbox.put(("lost", link))

    def live_links(self) -> List[ServiceLink]:
        """Snapshot of currently registered links (any thread)."""
        with self._lock:
            return list(self._links)

    def send(self, link: ServiceLink, kind: str, data: Dict[str, Any],
             corrupt: bool = False) -> bool:
        """Queue one frame to ``link`` from any thread.

        Returns False if the link is already known lost; otherwise the
        write is scheduled on the loop and failures surface as a
        ``("lost", link)`` inbox event — the lease pool's expiry path
        covers anything a silent loss swallows.
        """
        if link.lost or self._loop is None:
            return False
        payload = encode_message(kind, data, corrupt=corrupt)

        def _write() -> None:
            if link.lost or link.writer.is_closing():
                return
            try:
                link.writer.write(payload)
            except (ConnectionError, OSError, RuntimeError):
                self.discard(link)

        self._loop.call_soon_threadsafe(_write)
        return True

    def kill(self, link: ServiceLink) -> None:
        """Force-close a link's transport from any thread (used by the
        ``net_partition`` draw and staleness scans); the reader
        coroutine then observes EOF and discards the link."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(link.writer.close)

    def agents_doc(self) -> List[Dict[str, Any]]:
        """Status-endpoint view of every live agent."""
        docs = []
        for link in self.live_links():
            docs.append({
                "label": link.label,
                "hostname": link.info.get("hostname"),
                "pid": link.info.get("pid"),
                "jobs": link.capacity,
                "in_flight": len(link.in_flight),
                "results": link.results,
            })
        return docs


# -- lease-based dispatch ----------------------------------------------------


class _Lease:
    """One granted setup: which agents hold it and since when."""

    __slots__ = ("task", "links", "granted", "forced")

    def __init__(self, task: Task, link: ServiceLink, now: float) -> None:
        self.task = task
        self.links: List[ServiceLink] = [link]
        self.granted = now
        #: Set when the ``lease_expire`` chaos kind fired at grant time;
        #: the next scan expires the lease regardless of age.
        self.forced = False


class LeasePool(DispatchPool):
    """Registered-agent dispatch behind the runner's pool interface.

    The sweep runner drives this exactly like :class:`SupervisedPool`
    or ``AgentPool`` — submit tasks, poll events — but executors are
    whatever agents have *dialed in*, and every dispatch is a **lease**:

    - a lease expires when its agent disconnects, goes silent past
      :meth:`effective_lease_timeout` (the supervisor's adaptive
      deadline over observed lease durations), or draws the
      ``lease_expire`` chaos kind — and the setup requeues at the head
      of the queue **at the same attempt number**;
    - results are matched by ``(index, attempt)``: a late duplicate
      from an expired lease is counted and dropped, so at-least-once
      dispatch stays exactly-once in the report;
    - an idle agent steals the newest solely-held lease of any agent
      sitting on more than one, re-dispatching it — first result wins;
    - with work outstanding but no agents at all, the pool waits
      ``agentless_grace`` seconds for a rendezvous, then emits
      ``degraded`` so the runner finishes in-process, honestly.

    ``on_lease(index, attempt, agent)`` and
    ``on_requeue(index, attempt, reason)`` fire *before* the action
    they describe takes effect — the coordinator points them at the
    WAL, which is what makes the queue durable.
    """

    def __init__(
        self,
        registry: AgentRegistry,
        fault_plan: Optional[faults.FaultPlan] = None,
        lease_timeout: Optional[float] = None,
        heartbeat_interval: float = 0.2,
        poll_interval: float = 0.05,
        agentless_grace: float = DEFAULT_AGENTLESS_GRACE,
        on_lease: Optional[Callable[[int, int, str], None]] = None,
        on_requeue: Optional[Callable[[int, int, str], None]] = None,
    ) -> None:
        self.registry = registry
        self.fault_plan = fault_plan
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.agentless_grace = agentless_grace
        self._on_lease = on_lease or (lambda index, attempt, agent: None)
        self._on_requeue = on_requeue or (lambda index, attempt, reason: None)
        self._queue: Deque[Task] = collections.deque()
        self._events: Deque[PoolEvent] = collections.deque()
        self._leases: Dict[int, _Lease] = {}
        self._dispatched: Dict[int, int] = {}
        self._lost: Set[int] = set()  # id()s of links already failed
        self._durations = obs_metrics.Histogram(
            "service.lease_seconds", window=supervisor._ADAPTIVE_WINDOW
        )
        self._agentless_since: Optional[float] = None
        self._degraded = False
        self._closed = False

    # -- introspection ----------------------------------------------------

    def effective_lease_timeout(self) -> float:
        """Current lease expiry: the supervisor's adaptive deadline over
        observed lease durations (a configured value is used verbatim).
        """
        return supervisor.adaptive_deadline(
            self.lease_timeout, self.heartbeat_interval, self._durations
        )

    def stats(self) -> Dict[str, int]:
        """Utilisation sample for the metrics timeline (the runner's
        sampler merges any numeric fields, so ``leases`` rides along
        with the standard worker gauges)."""
        links = self.registry.live_links()
        return {
            "workers_alive": len(links),
            "workers_busy": sum(1 for l in links if l.in_flight),
            "queue_depth": len(self._queue),
            "leases": len(self._leases),
        }

    # -- DispatchPool interface -------------------------------------------

    def submit(self, task: Task) -> None:
        """Queue a task; it is leased out on the next :meth:`poll`."""
        self._queue.append(task)

    def poll(self, timeout: Optional[float] = None) -> Optional[PoolEvent]:
        """The next supervision event (None: drained or timed out)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._events:
                return self._events.popleft()
            if not self._queue and not self._leases:
                return None
            self._drain_inbox()
            self._dispatch_queued()
            self._scan_leases()
            self._scan_links()
            self._steal_work()
            self._check_agentless()
            if self._events:
                continue
            try:
                item = self.registry.inbox.get(timeout=self.poll_interval)
            except queue.Empty:
                item = None
            if item is not None:
                self._handle(item)
            if (
                deadline is not None
                and not self._events
                and time.monotonic() >= deadline
            ):
                return None

    def close(self) -> None:
        """Release every lease, keep every agent (links are owned by the
        registry and serve the next study's pool)."""
        if self._closed:
            return
        self._closed = True
        for lease in self._leases.values():
            for link in lease.links:
                link.in_flight.pop(lease.task.index, None)
        self._leases.clear()
        self._queue.clear()

    # -- inbox ------------------------------------------------------------

    def _drain_inbox(self) -> None:
        while True:
            try:
                item = self.registry.inbox.get_nowait()
            except queue.Empty:
                return
            self._handle(item)

    def _handle(self, item: Tuple) -> None:
        kind = item[0]
        if kind == "joined":
            self._agentless_since = None
        elif kind == "lost":
            self._lose_link(item[1], "crash")
        elif kind == "result":
            self._accept_result(item[1], item[2])

    # -- dispatch and leases ----------------------------------------------

    def _dispatch_queued(self) -> None:
        plan = self.fault_plan
        for link in self.registry.live_links():
            if link.lost:
                continue
            while self._queue and len(link.in_flight) < link.capacity:
                task = self._queue[0]
                count = self._dispatched.get(task.index, 0) + 1
                if plan is not None and plan.fires(
                    "net_partition", task.key, count
                ):
                    # Same semantics as AgentPool: the dispatch is spent
                    # (transient partitions clear on re-dispatch) and
                    # the link fails over.
                    self._dispatched[task.index] = count
                    self._lose_link(link, "crash")
                    self.registry.kill(link)
                    break
                corrupt = plan is not None and plan.fires(
                    "message_corrupt", task.key, count
                )
                if not self._send_task(link, task, count, corrupt):
                    self._lose_link(link, "crash")
                    break
                self._queue.popleft()
                self._dispatched[task.index] = count
                self._grant(task, link, count)
            if not self._queue:
                break

    def _send_task(self, link: ServiceLink, task: Task, count: int,
                   corrupt: bool = False) -> bool:
        return self.registry.send(link, "task", {
            "key": task.key,
            "dispatch": count,
            "payload": payload_to_wire(task.payload),
        }, corrupt=corrupt)

    def _grant(self, task: Task, link: ServiceLink, count: int) -> None:
        """Record a lease — WAL first, then bookkeeping."""
        self._on_lease(task.index, task.attempt, link.label)
        obs_metrics.counter("service.leases").inc()
        lease = self._leases.get(task.index)
        if lease is None:
            lease = _Lease(task, link, time.monotonic())
            self._leases[task.index] = lease
        else:
            lease.links.append(link)
        if self.fault_plan is not None and self.fault_plan.fires(
            "lease_expire", task.key, count
        ):
            lease.forced = True
        link.in_flight[task.index] = task

    def _expire(self, index: int, reason: str, kind: str) -> None:
        """Requeue a leased setup at the same attempt (WAL first)."""
        lease = self._leases.pop(index, None)
        if lease is None:
            return
        self._on_requeue(index, lease.task.attempt, reason)
        obs_metrics.counter("service.requeues").inc()
        label = lease.links[0].label if lease.links else ""
        slot = lease.links[0].slot if lease.links else -1
        for link in lease.links:
            link.in_flight.pop(index, None)
        self._queue.appendleft(lease.task)
        self._events.append(PoolEvent(
            kind, worker=slot, tasks=[lease.task], label=label,
        ))

    def _scan_leases(self) -> None:
        now = time.monotonic()
        timeout = self.effective_lease_timeout()
        for index in sorted(self._leases):
            lease = self._leases[index]
            if lease.forced:
                obs_metrics.counter("service.leases_expired").inc()
                self._expire(index, "lease_expire", "hang")
            elif now - lease.granted > timeout:
                obs_metrics.counter("service.leases_expired").inc()
                self._expire(index, "lease_timeout", "hang")

    def _scan_links(self) -> None:
        """An agent silent past the lease deadline is partitioned: kill
        the link; its leases requeue through the loss path."""
        now = time.monotonic()
        timeout = max(
            self.effective_lease_timeout(), 4 * self.heartbeat_interval
        )
        for link in self.registry.live_links():
            if now - link.last_recv > timeout:
                self._lose_link(link, "hang")
                self.registry.kill(link)

    def _lose_link(self, link: ServiceLink, reason: str) -> None:
        """Requeue every lease held *solely* by a lost agent."""
        if id(link) in self._lost:
            return
        self._lost.add(id(link))
        requeued: List[Task] = []
        for index in sorted(list(link.in_flight)):
            task = link.in_flight.pop(index)
            lease = self._leases.get(index)
            if lease is None:
                continue
            if link in lease.links:
                lease.links.remove(link)
            if lease.links:
                continue  # a stolen copy is still out; the lease lives
            self._on_requeue(index, task.attempt, "agent_lost")
            obs_metrics.counter("service.requeues").inc()
            del self._leases[index]
            requeued.append(task)
        for task in reversed(requeued):
            # Failover, not retry: head of the queue, same attempt.
            self._queue.appendleft(task)
        self._events.append(PoolEvent(
            reason, worker=link.slot, tasks=requeued, label=link.label,
        ))

    def _accept_result(self, link: ServiceLink, data: Dict[str, Any]) -> None:
        outcome = data.get("outcome")
        if not isinstance(outcome, list) or len(outcome) != 4:
            self._lose_link(link, "crash")
            self.registry.kill(link)
            return
        index, attempt = outcome[1], outcome[2]
        link.results += 1
        lease = self._leases.get(index)
        if lease is None or lease.task.attempt != attempt:
            # A lease that expired (or was stolen and already served)
            # still computes; its late twin is dropped by identity —
            # at-least-once dispatch, exactly-once accounting.
            obs_metrics.counter("service.duplicate_results").inc()
            return
        self._durations.observe(time.monotonic() - lease.granted)
        del self._leases[index]
        for holder in lease.links:
            holder.in_flight.pop(index, None)
        self._events.append(PoolEvent(
            "result",
            worker=link.slot,
            task=lease.task,
            result=tuple(outcome),
            records=data.get("records"),
            label=link.label,
        ))

    def _steal_work(self) -> None:
        """Rebalance: an idle agent takes the newest solely-held lease
        of any agent holding several; the first result wins."""
        if self._queue or self._degraded:
            return
        links = [l for l in self.registry.live_links() if not l.lost]
        idle = [l for l in links if not l.in_flight]
        if not idle:
            return
        for thief in idle:
            candidates = [
                lease for lease in self._leases.values()
                if len(lease.links) == 1
                and lease.links[0] is not thief
                and len(lease.links[0].in_flight) >= 2
            ]
            if not candidates:
                return
            lease = max(candidates, key=lambda l: l.granted)
            task = lease.task
            count = self._dispatched.get(task.index, 0) + 1
            if not self._send_task(thief, task, count):
                continue
            self._dispatched[task.index] = count
            obs_metrics.counter("service.steals").inc()
            self._grant(task, thief, count)

    def _check_agentless(self) -> None:
        """Degrade honestly when work is stuck with nobody to do it."""
        if self.registry.live_links():
            self._agentless_since = None
            return
        now = time.monotonic()
        if self._agentless_since is None:
            self._agentless_since = now
            return
        if now - self._agentless_since <= self.agentless_grace:
            return
        if self._degraded:
            return
        self._degraded = True
        remaining: List[Task] = []
        for index in sorted(self._leases):
            lease = self._leases[index]
            self._on_requeue(index, lease.task.attempt, "no_agents")
            remaining.append(lease.task)
        self._leases.clear()
        remaining.extend(self._queue)
        self._queue.clear()
        obs_metrics.counter("service.degraded_studies").inc()
        self._events.append(PoolEvent("degraded", tasks=remaining))


# -- the coordinator ---------------------------------------------------------


@dataclass
class _StudyState:
    """In-memory lifecycle of one submitted study."""

    sid: str
    spec: StudySpec
    state: str = "queued"  # queued | running | done | failed
    error: str = ""
    tables: str = ""
    report_json: str = ""
    report_sha256: str = ""
    #: Setup indices with a WAL ``complete`` record (guards the WAL
    #: against duplicate completes across crash-recovery re-runs).
    completed: Set[int] = field(default_factory=set)
    requested: int = 0
    submits: int = 0
    #: Setups served from the content-addressed store before dispatch —
    #: a fully warmed rerun reports ``store_hits == requested``.
    store_hits: int = 0


class _WalProgress(obs_progress.ProgressReporter):
    """Progress sink that journals completions into the study WAL.

    ``setup_finished`` fires for fresh measurements *and* store hits
    (the runner's store probe reports hits through the same method), so
    after a crash-recovery re-run the WAL still converges on exactly
    one ``complete`` record per setup — the ``completed`` set replayed
    from the WAL suppresses re-appends.
    """

    def __init__(self, coordinator: "ServiceCoordinator",
                 state: _StudyState) -> None:
        self._coordinator = coordinator
        self._state = state

    def setup_finished(self, index: int, setup: str, status: str,
                       attempts: int = 1) -> None:
        if status != "measured":
            return
        if index in self._state.completed:
            return
        self._state.completed.add(index)
        self._coordinator.wal_append("complete", {
            "study": self._state.sid, "index": index,
        })

    def store_hits(self, hits: int, total: int) -> None:
        """Record how much of the study the store served — the figure
        that proves a recovered (or deduped) run re-measured nothing."""
        self._state.store_hits = hits


class _ServiceSweepRunner(SweepRunner):
    """A sweep runner whose pool is the service's shared lease pool."""

    def __init__(self, *args, pool_factory: Callable[[int, bool],
                 DispatchPool], **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pool_factory = pool_factory

    def _make_pool(self, pending_count: int, tracing: bool) -> DispatchPool:
        return self._pool_factory(pending_count, tracing)


class ServiceCoordinator:
    """The ``repro serve`` process: rendezvous + queue + executor.

    One asyncio event loop owns both listeners (agent rendezvous and
    the HTTP API) and every agent socket; a single executor thread runs
    one study at a time through :class:`_ServiceSweepRunner`.  All
    durable state lives under ``workdir``:

    - ``queue.wal`` — the study queue's write-ahead log,
    - ``store/`` — the content-addressed measurement store (the crash
      recovery *and* cross-client dedup layer),
    - ``results/<study>.json`` — finished result documents.

    Crash contract: kill this process at any instant, restart it on the
    same workdir, resubmit nothing — every queued study still runs, and
    every report matches a serial ``repro study`` byte for byte.
    """

    def __init__(
        self,
        workdir: str,
        http_addr: Tuple[str, int] = ("127.0.0.1", 0),
        agent_addr: Tuple[str, int] = ("127.0.0.1", 0),
        secret: Optional[str] = None,
        fault_plan: Optional[faults.FaultPlan] = None,
        max_queue: int = 16,
        max_retries: int = 2,
        timeout: Optional[float] = None,
        heartbeat_interval: float = 0.2,
        lease_timeout: Optional[float] = None,
        agentless_grace: float = DEFAULT_AGENTLESS_GRACE,
        port_file: Optional[str] = None,
        quiet: bool = False,
        note: str = "",
    ) -> None:
        self.workdir = workdir
        self.http_addr = http_addr
        self.agent_addr = agent_addr
        self.secret = secret
        self.fault_plan = fault_plan
        self.max_queue = max_queue
        self.max_retries = max_retries
        self.timeout = timeout
        self.heartbeat_interval = heartbeat_interval
        self.lease_timeout = lease_timeout
        self.agentless_grace = agentless_grace
        self.port_file = port_file
        self.quiet = quiet
        self.note = note
        self.registry = AgentRegistry()
        self.http_port: Optional[int] = None
        self.agent_port: Optional[int] = None
        self._lock = threading.Lock()
        self._studies: "collections.OrderedDict[str, _StudyState]" = (
            collections.OrderedDict()
        )
        self._runq: "queue.Queue[Optional[str]]" = queue.Queue()
        self._wal: Optional[ServiceWAL] = None
        self._wal_ok = True
        self._degraded: List[str] = []
        self._draining = False
        self._running_sid: Optional[str] = None
        self._store = None

    # -- logging / shared state -------------------------------------------

    def _log(self, text: str) -> None:
        if not self.quiet:
            print(f"serve: {text}", file=sys.stderr, flush=True)

    def wal_append(self, kind: str, data: Dict[str, Any]) -> None:
        """Append one queue transition, degrading loudly (not fatally)
        when the log itself cannot be written — the queue keeps serving
        from memory, and the status API says so, mirroring how sweeps
        surface ``degraded_storage``."""
        if self._wal is None or not self._wal_ok:
            return
        try:
            self._wal.append(kind, data)
        except JournalWriteError as exc:
            self._wal_ok = False
            with self._lock:
                self._degraded.append(
                    f"study queue WAL fell back to memory: {exc}"
                )
            self._log(f"WAL degraded: {exc}")

    def _results_path(self, sid: str) -> str:
        return os.path.join(self.workdir, "results", f"{sid}.json")

    # -- lifecycle --------------------------------------------------------

    def run(self) -> int:
        """Serve until drained (or interrupted); returns an exit code."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:
            self._log("interrupted")
            return 0
        return 0

    async def _main(self) -> None:
        os.makedirs(self.workdir, exist_ok=True)
        os.makedirs(os.path.join(self.workdir, "results"), exist_ok=True)
        previous_plan = faults.active()
        faults.install(self.fault_plan)
        from repro.store import open_store

        self._store = open_store(os.path.join(self.workdir, "store"))
        self._wal = ServiceWAL(os.path.join(self.workdir, "queue.wal"))
        self._recover(self._wal.load())
        self._wal.open_for_append(note=self.note or "repro serve")

        loop = asyncio.get_running_loop()
        self.registry.attach_loop(loop)
        agent_server = await asyncio.start_server(
            self._handle_agent, self.agent_addr[0], self.agent_addr[1]
        )
        http_server = await asyncio.start_server(
            self._handle_http, self.http_addr[0], self.http_addr[1]
        )
        self.agent_port = agent_server.sockets[0].getsockname()[1]
        self.http_port = http_server.sockets[0].getsockname()[1]
        if self.port_file:
            storageio.atomic_write_text(self.port_file, json.dumps(
                {"http": self.http_port, "agents": self.agent_port},
                sort_keys=True,
            ) + "\n")
        self._log(
            f"api on {self.http_addr[0]}:{self.http_port}, agent "
            f"rendezvous on {self.agent_addr[0]}:{self.agent_port}, "
            f"workdir {self.workdir}"
        )
        try:
            loop.add_signal_handler(signal.SIGTERM, self._begin_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread (tests) or platform without signals

        executor = threading.Thread(
            target=self._executor_loop, name="study-executor", daemon=True
        )
        executor.start()
        try:
            while executor.is_alive():
                await asyncio.sleep(0.1)
            self._log("drained; shutting down")
        finally:
            agent_server.close()
            http_server.close()
            for link in self.registry.live_links():
                self.registry.send(link, "shutdown", {})
            await asyncio.sleep(0.05)  # let shutdown frames flush
            self._wal.close()
            faults.install(previous_plan)

    def _recover(self, state) -> None:
        """Rebuild the queue from the WAL: finished studies load their
        result documents, everything else re-enters the queue in
        submission order (the store makes the re-runs cheap)."""
        for rec in state.studies.values():
            try:
                spec = StudySpec.from_dict(rec.spec)
            except ValueError as exc:
                self._log(f"dropping unparseable study {rec.study[:12]}: {exc}")
                continue
            st = _StudyState(sid=rec.study, spec=spec,
                             completed=set(rec.completed))
            if rec.done:
                doc = self._load_result(rec.study)
                if doc is not None:
                    st.state = doc.get("state", "done")
                    st.error = doc.get("error", "")
                    st.tables = doc.get("tables", "")
                    st.report_json = doc.get("report", "")
                    st.report_sha256 = doc.get("report_sha256", "")
                    st.store_hits = int(doc.get("store_hits", 0))
                    self._studies[st.sid] = st
                    continue
                # done in the WAL but the result doc is gone: re-run
                # (fully store-served, so this is cheap and identical).
            self._studies[st.sid] = st
            self._runq.put(st.sid)
        pending = sum(
            1 for s in self._studies.values() if s.state == "queued"
        )
        if self._studies:
            self._log(
                f"recovered {len(self._studies)} study(ies) from the WAL "
                f"({pending} still to run)"
            )

    def _load_result(self, sid: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._results_path(sid)) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or doc.get("format") != RESULT_FORMAT:
            return None
        return doc

    def _begin_drain(self) -> None:
        """Stop admitting, finish the queue, then exit (graceful)."""
        if not self._draining:
            self._draining = True
            self._log("draining: no new submissions; finishing the queue")

    # -- executor thread --------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            if self._draining and self._runq.empty():
                return
            try:
                sid = self._runq.get(timeout=0.2)
            except queue.Empty:
                continue
            if sid is None:
                return
            self._execute(sid)

    def _execute(self, sid: str) -> None:
        with self._lock:
            st = self._studies.get(sid)
            if st is None or st.state not in ("queued",):
                return
            st.state = "running"
            self._running_sid = sid
        self._log(f"study {sid[:12]} running ({st.spec.workload}, "
                  f"{st.spec.parameter})")
        try:
            tables, report_json = self._run_study(st)
        except ReproError as exc:
            self._finish(st, error=f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 - the queue must survive
            self._finish(st, error=f"{type(exc).__name__}: {exc}")
        else:
            self._finish(st, tables=tables, report_json=report_json)
        finally:
            with self._lock:
                self._running_sid = None

    def _run_study(self, st: _StudyState) -> Tuple[str, str]:
        """One study through the lease pool; returns (tables, report)."""
        spec = st.spec
        exp, setups, base, treatment, points = spec.build()
        with self._lock:
            st.requested = len(setups)
        config = RunnerConfig(
            jobs=2,  # forces the parallel path; the pool is the fleet
            max_retries=self.max_retries,
            timeout=self.timeout,
            heartbeat_interval=self.heartbeat_interval,
        )

        def pool_factory(pending: int, tracing: bool) -> DispatchPool:
            return LeasePool(
                self.registry,
                fault_plan=faults.active(),
                lease_timeout=self.lease_timeout,
                heartbeat_interval=self.heartbeat_interval,
                agentless_grace=self.agentless_grace,
                on_lease=lambda index, attempt, agent: self.wal_append(
                    "lease", {"study": st.sid, "index": index,
                              "attempt": attempt, "agent": agent},
                ),
                on_requeue=lambda index, attempt, reason: self.wal_append(
                    "requeue", {"study": st.sid, "index": index,
                                "attempt": attempt, "reason": reason},
                ),
            )

        runner = _ServiceSweepRunner(
            exp,
            config,
            fault_plan=faults.active(),
            progress=_WalProgress(self, st),
            store=self._store,
            pool_factory=pool_factory,
        )
        result = runner.run(setups)
        report = result.report
        if report.quarantined:
            raise ReproError(
                f"{len(report.quarantined)} setup(s) quarantined — the "
                "study needs every point"
            )
        if spec.parameter == "env":
            study = env_size_study(exp, base, treatment, points)
        else:
            study = link_order_study(exp, base, treatment, orders=points)
        tables = render_series(
            study.points,
            study.speedups,
            title=(
                f"speedup of O{spec.treatment_opt} over O{spec.base_opt} "
                f"across {spec.parameter} ({spec.workload}, {spec.machine})"
            ),
            reference=1.0,
        ) + "\n\n" + study.speedup_bias().summary_line() + "\n"
        return tables, report.to_json()

    def _finish(self, st: _StudyState, tables: str = "",
                report_json: str = "", error: str = "") -> None:
        """Publish the result document, then mark the study done in the
        WAL (doc first: a crash between the two re-runs the study, a
        cheap store-served no-op; the reverse order could mark done
        with no document to serve)."""
        sha = record_checksum({"report": report_json}) if report_json else ""
        doc = {
            "format": RESULT_FORMAT,
            "study": st.sid,
            "spec": st.spec.to_dict(),
            "state": "failed" if error else "done",
            "error": error,
            "tables": tables,
            "report": report_json,
            "report_sha256": sha,
            "store_hits": st.store_hits,
        }
        try:
            storageio.atomic_write_text(
                self._results_path(st.sid),
                json.dumps(doc, sort_keys=True) + "\n",
            )
        except OSError as exc:
            with self._lock:
                self._degraded.append(
                    f"result document for {st.sid[:12]} not persisted: {exc}"
                )
        self.wal_append("done", {
            "study": st.sid, "report_sha256": sha,
            **({"error": error} if error else {}),
        })
        with self._lock:
            st.state = "failed" if error else "done"
            st.error = error
            st.tables = tables
            st.report_json = report_json
            st.report_sha256 = sha
        self._log(
            f"study {st.sid[:12]} {'failed: ' + error if error else 'done'}"
        )

    # -- agent rendezvous (asyncio) ---------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader,
                          timeout: Optional[float] = None
                          ) -> Tuple[str, Dict[str, Any]]:
        async def _read() -> Tuple[str, Dict[str, Any]]:
            header = await reader.readexactly(_HEADER.size)
            magic, length = _HEADER.unpack(header)
            check_frame_header(magic, length)
            return decode_payload(await reader.readexactly(length))

        if timeout is None:
            return await _read()
        return await asyncio.wait_for(_read(), timeout)

    async def _handle_agent(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        """One dialed-in agent: challenge handshake, then a read loop
        feeding the registry inbox until the connection dies."""
        peer = writer.get_extra_info("peername") or ("?", 0)
        label = f"{peer[0]}:{peer[1]}"
        link: Optional[ServiceLink] = None
        try:
            nonce = secrets.token_hex(16)
            writer.write(encode_message("challenge", {
                "protocol": PROTOCOL_VERSION, "nonce": nonce,
            }))
            await writer.drain()
            kind, data = await self._read_frame(reader, timeout=30.0)
            if kind != "register":
                raise ProtocolError(f"expected register, got {kind!r}")
            if data.get("protocol") != PROTOCOL_VERSION:
                writer.write(encode_message("error", {
                    "message": f"protocol mismatch: coordinator speaks "
                               f"{PROTOCOL_VERSION}",
                }))
                await writer.drain()
                raise ProtocolError("protocol version mismatch")
            if self.secret is not None:
                proof = data.get("auth")
                expected = auth_proof(self.secret, nonce)
                if not (isinstance(proof, str)
                        and hmac.compare_digest(proof, expected)):
                    obs_metrics.counter("service.auth_failures").inc()
                    writer.write(encode_message("error", {
                        "code": "auth",
                        "message": "authentication failed: coordinator "
                                   "requires a shared secret (--secret)",
                    }))
                    await writer.drain()
                    raise ProtocolError("agent failed authentication")
            writer.write(encode_message("registered", self._session_doc()))
            await writer.drain()
            link = ServiceLink(self.registry.next_slot(), label, data, writer)
            self.registry.register(link)
            self._log(
                f"agent {label} registered "
                f"({link.capacity} job(s), pid {data.get('pid')})"
            )
            while True:
                kind, data = await self._read_frame(reader)
                link.last_recv = time.monotonic()
                if kind == "result":
                    self.registry.inbox.put(("result", link, data))
                # heartbeats only refresh last_recv; others are ignored.
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                ProtocolError, asyncio.TimeoutError) as exc:
            if link is not None:
                self._log(f"agent {label} lost: {exc}")
        except asyncio.CancelledError:
            pass  # loop teardown at shutdown; cleanup happens below
        finally:
            if link is not None:
                self.registry.discard(link)
            writer.close()

    def _session_doc(self) -> Dict[str, Any]:
        """The ``registered`` payload: :func:`build_hello`'s shape, so
        the agent's session parser is one code path for both modes."""
        return build_hello(
            faults.active(),
            heartbeat_interval=self.heartbeat_interval,
            hang_timeout=None,  # each agent's local pool adapts
            max_respawns=8,
            tracing=False,
            note=self.note or "repro serve",
        )

    # -- HTTP API (asyncio) -----------------------------------------------

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_http_request(reader), timeout=10.0
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError, OSError, ValueError):
                return
            try:
                response = self._route(method, path, body)
            except Exception as exc:  # noqa: BLE001 - keep serving
                response = (500, {
                    "error": "internal", "message": f"{type(exc).__name__}: {exc}",
                })
            if response is None:
                return  # injected client_disconnect: vanish mid-reply
            status, doc = response
            payload = (json.dumps(doc, sort_keys=True) + "\n").encode()
            head = (
                f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            try:
                writer.write(head + payload)
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        except asyncio.CancelledError:
            pass  # loop teardown at shutdown
        finally:
            writer.close()

    async def _read_http_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        line = (await reader.readline()).decode("latin-1").strip()
        parts = line.split()
        if len(parts) < 3:
            raise ValueError(f"malformed request line {line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > _MAX_BODY:
            raise ValueError("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    def _route(self, method: str, path: str,
               body: bytes) -> Optional[Tuple[int, Dict[str, Any]]]:
        """Dispatch one API request; None means drop the connection
        (the injected ``client_disconnect`` fault)."""
        if path == "/v1/studies" and method == "POST":
            return self._api_submit(body)
        if path.startswith("/v1/studies/") and method == "GET":
            sid = path[len("/v1/studies/"):]
            with self._lock:
                st = self._studies.get(sid)
                if st is None:
                    return 404, {"error": "unknown_study", "study": sid}
                return 200, self._study_doc(st, full=True)
        if path == "/v1/status" and method == "GET":
            return 200, self._status_doc()
        if path == "/v1/drain" and method == "POST":
            self._begin_drain()
            with self._lock:
                pending = sum(1 for s in self._studies.values()
                              if s.state in ("queued", "running"))
            return 200, {"draining": True, "pending": pending}
        if path in ("/v1/studies", "/v1/status", "/v1/drain"):
            return 405, {"error": "method_not_allowed"}
        return 404, {"error": "not_found", "path": path}

    def _api_submit(self, body: bytes) -> Optional[Tuple[int, Dict]]:
        try:
            spec = StudySpec.from_dict(json.loads(body.decode() or "null"))
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": "bad_spec", "message": str(exc)}
        sid = spec.study_id()
        with self._lock:
            st = self._studies.get(sid)
            if st is None:
                if self._draining:
                    return 503, {"error": "draining"}
                queued = sum(1 for s in self._studies.values()
                             if s.state == "queued")
                if queued >= self.max_queue:
                    # Typed backpressure: the queue is bounded, and the
                    # client is told so rather than timed out.
                    obs_metrics.counter("service.queue_full").inc()
                    return 429, {"error": "queue_full",
                                 "limit": self.max_queue}
                st = _StudyState(sid=sid, spec=spec)
                self._studies[sid] = st
                fresh = True
            else:
                fresh = False
            st.submits += 1
            submits = st.submits
        if fresh:
            # WAL before the queue: a crash right here recovers the
            # study; a crash one line earlier loses only an unacked
            # request the client will retry.
            self.wal_append("submit", {"study": sid, "spec": spec.to_dict()})
            self._runq.put(sid)
            self._log(f"study {sid[:12]} queued ({spec.workload}, "
                      f"{spec.parameter})")
        if faults.should_inject_at("client_disconnect", f"submit:{sid}",
                                   submits):
            # The submission is durable; only the *response* is lost.
            # A retrying client dedups onto the same study id.
            obs_metrics.counter("service.client_disconnects").inc()
            return None
        with self._lock:
            status = 200 if st.state in ("done", "failed") else 202
            return status, self._study_doc(st, full=st.state == "done")

    def _study_doc(self, st: _StudyState, full: bool = False) -> Dict:
        doc: Dict[str, Any] = {
            "study": st.sid,
            "state": st.state,
            "spec": st.spec.to_dict(),
            "requested": st.requested,
            "completed": len(st.completed),
            "store_hits": st.store_hits,
        }
        if st.error:
            doc["error"] = st.error
        if full and st.state in ("done", "failed"):
            doc["tables"] = st.tables
            doc["report"] = st.report_json
            doc["report_sha256"] = st.report_sha256
        return doc

    def _status_doc(self) -> Dict[str, Any]:
        with self._lock:
            by_state: Dict[str, int] = {}
            for st in self._studies.values():
                by_state[st.state] = by_state.get(st.state, 0) + 1
            degraded = list(self._degraded)
        return {
            "service": "repro-serve",
            "studies": by_state,
            "queue_limit": self.max_queue,
            "agents": self.registry.agents_doc(),
            "draining": self._draining,
            "degraded": degraded,
            "workdir": self.workdir,
        }


# -- HTTP client helpers (the submit/status CLI side) ------------------------


def _request(host: str, port: int, method: str, path: str,
             body: Optional[Dict] = None, timeout: float = 30.0) -> Dict:
    """One JSON round trip to the service; raises :class:`ReproError`
    with a typed message on HTTP-level rejections."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    try:
        doc = json.loads(raw.decode() or "null")
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"service returned invalid JSON ({response.status}): {exc}"
        ) from exc
    if not isinstance(doc, dict):
        raise ReproError(f"service returned a non-object ({response.status})")
    if response.status >= 400:
        raise ReproError(
            f"service rejected {method} {path}: "
            f"{doc.get('error', response.status)}"
            + (f" ({doc['message']})" if doc.get("message") else "")
        )
    return doc


def submit_study(host: str, port: int, spec: StudySpec,
                 retries: int = 5, retry_delay: float = 0.2,
                 sleep: Callable[[float], None] = time.sleep) -> Dict:
    """Submit ``spec``, retrying dropped connections.

    The service may (deterministically, under a fault plan) hang up
    after durably accepting a submission — the ``client_disconnect``
    kind.  Retrying is always safe: the study id is the spec's content
    address, so a resubmission dedups onto the same study.
    """
    last: Optional[Exception] = None
    for attempt in range(retries + 1):
        if attempt:
            sleep(retry_delay)
        try:
            return _request(host, port, "POST", "/v1/studies",
                            body=spec.to_dict())
        except (ConnectionError, http.client.HTTPException, OSError) as exc:
            last = exc
    raise ReproError(
        f"could not submit study after {retries + 1} attempt(s): {last}"
    )


def get_study(host: str, port: int, sid: str) -> Dict:
    """Fetch one study's full status/result document."""
    return _request(host, port, "GET", f"/v1/studies/{sid}")


def get_status(host: str, port: int) -> Dict:
    """Fetch the service-level status document."""
    return _request(host, port, "GET", "/v1/status")


def wait_for_study(host: str, port: int, sid: str,
                   poll_interval: float = 0.5,
                   timeout: Optional[float] = None,
                   sleep: Callable[[float], None] = time.sleep) -> Dict:
    """Poll until the study reaches ``done``/``failed`` (tolerating
    service restarts mid-wait — the queue is durable, so a vanished
    coordinator is a retry, not an error)."""
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        try:
            doc = get_study(host, port, sid)
            if doc.get("state") in ("done", "failed"):
                return doc
        except (ConnectionError, http.client.HTTPException, OSError):
            pass  # restarting coordinator; keep polling
        if deadline is not None and time.monotonic() >= deadline:
            raise ReproError(
                f"study {sid[:12]} did not finish within {timeout:g}s"
            )
        sleep(poll_interval)
