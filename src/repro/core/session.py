"""Measurement persistence: archive runs as JSON, reload them later.

Reproducibility bookkeeping: a study's measurements can be archived with
their *complete* setups (the paper's complaint is precisely that setups
go unreported), reloaded, and re-analyzed — or re-measured and compared
against the archive to confirm the substrate hasn't drifted.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Union

from repro.arch.counters import PerfCounters
from repro.arch.machines import MachineConfig
from repro.core.experiment import Measurement
from repro.core.setup import ExperimentalSetup

#: Format marker written into every archive.
FORMAT = "repro-measurements-v1"


def setup_to_dict(setup: ExperimentalSetup) -> Dict:
    """Serialize a setup, embedding custom machine configs inline."""
    machine: Union[str, Dict]
    if isinstance(setup.machine, MachineConfig):
        machine = {"__machine_config__": setup.machine.to_dict()}
    else:
        machine = setup.machine
    return {
        "machine": machine,
        "compiler": setup.compiler,
        "opt_level": setup.opt_level,
        "link_order": list(setup.link_order) if setup.link_order else None,
        "env_bytes": setup.env_bytes,
        "stack_align": setup.stack_align,
        "function_alignment": setup.function_alignment,
    }


def setup_from_dict(data: Dict) -> ExperimentalSetup:
    """Inverse of :func:`setup_to_dict` (default base environment)."""
    machine = data["machine"]
    if isinstance(machine, dict):
        machine = MachineConfig.from_dict(machine["__machine_config__"])
    return ExperimentalSetup(
        machine=machine,
        compiler=data["compiler"],
        opt_level=data["opt_level"],
        link_order=tuple(data["link_order"]) if data["link_order"] else None,
        env_bytes=data["env_bytes"],
        stack_align=data["stack_align"],
        function_alignment=data["function_alignment"],
    )


def measurement_to_dict(m: Measurement) -> Dict:
    return {
        "workload": m.workload,
        "size": m.size,
        "seed": m.seed,
        "setup": setup_to_dict(m.setup),
        "counters": asdict(m.counters),
        "exit_value": m.exit_value,
        "function_cycles": dict(m.function_cycles),
    }


def measurement_from_dict(data: Dict) -> Measurement:
    return Measurement(
        workload=data["workload"],
        size=data["size"],
        seed=data["seed"],
        setup=setup_from_dict(data["setup"]),
        counters=PerfCounters(**data["counters"]),
        exit_value=data["exit_value"],
        function_cycles=dict(data.get("function_cycles", {})),
    )


def save_measurements(
    path: str, measurements: Sequence[Measurement], note: str = ""
) -> None:
    """Write measurements (with full setups) to a JSON archive."""
    payload = {
        "format": FORMAT,
        "note": note,
        "measurements": [measurement_to_dict(m) for m in measurements],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)


def load_measurements(path: str) -> List[Measurement]:
    """Read a JSON archive written by :func:`save_measurements`."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a {FORMAT} archive (got {payload.get('format')!r})"
        )
    return [measurement_from_dict(d) for d in payload["measurements"]]


def verify_against_archive(
    experiment, archived: Sequence[Measurement], tolerance: float = 0.0
) -> Optional[str]:
    """Re-measure every archived setup; return a description of the first
    drift found, or None when everything matches.

    With a deterministic substrate ``tolerance=0.0`` is the right
    setting: any cycle difference means the toolchain or model changed.
    """
    for m in archived:
        fresh = experiment.run(m.setup)
        if fresh.exit_value != m.exit_value:
            return (
                f"{m.setup.describe()}: exit {fresh.exit_value} != archived "
                f"{m.exit_value}"
            )
        delta = abs(fresh.cycles - m.counters.cycles)
        allowed = tolerance * m.counters.cycles
        if delta > allowed:
            return (
                f"{m.setup.describe()}: cycles {fresh.cycles:.0f} != archived "
                f"{m.counters.cycles:.0f} (drift {delta:.0f})"
            )
    return None
