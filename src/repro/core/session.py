"""Measurement persistence: archive runs as JSON, reload them later.

Reproducibility bookkeeping: a study's measurements can be archived with
their *complete* setups (the paper's complaint is precisely that setups
go unreported), reloaded, and re-analyzed — or re-measured and compared
against the archive to confirm the substrate hasn't drifted.

Format v2 adds a per-record SHA-256 checksum so a truncated, bit-rotted
or hand-edited archive is *detected* (raising
:class:`~repro.core.errors.ArchiveCorruption` with file and record
context) instead of silently yielding wrong data — van der Kouwe et
al.'s "benchmarking crimes" include exactly this failure mode.  v1
archives (no checksums) are still readable.  The sweep runner's
append-only checkpoint journal (:mod:`repro.core.runner`) reuses the
same record schema and checksum.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Union

from repro import storageio
from repro._errors import ArchiveCorruption
from repro.arch.counters import PerfCounters
from repro.arch.machines import MachineConfig
from repro.core.experiment import Measurement
from repro.core.setup import ExperimentalSetup

#: Legacy format marker (no per-record checksums).
FORMAT_V1 = "repro-measurements-v1"
#: Current format marker: every measurement record carries a checksum.
FORMAT_V2 = "repro-measurements-v2"
#: Format written by :func:`save_measurements`.
FORMAT = FORMAT_V2

_SETUP_KEYS = (
    "machine",
    "compiler",
    "opt_level",
    "link_order",
    "env_bytes",
    "stack_align",
    "function_alignment",
)
_MEASUREMENT_KEYS = ("workload", "size", "seed", "setup", "counters", "exit_value")


def setup_to_dict(setup: ExperimentalSetup) -> Dict:
    """Serialize a setup, embedding custom machine configs inline."""
    machine: Union[str, Dict]
    if isinstance(setup.machine, MachineConfig):
        machine = {"__machine_config__": setup.machine.to_dict()}
    else:
        machine = setup.machine
    return {
        "machine": machine,
        "compiler": setup.compiler,
        "opt_level": setup.opt_level,
        "link_order": list(setup.link_order) if setup.link_order else None,
        "env_bytes": setup.env_bytes,
        "stack_align": setup.stack_align,
        "function_alignment": setup.function_alignment,
    }


def setup_from_dict(data: Dict) -> ExperimentalSetup:
    """Inverse of :func:`setup_to_dict` (default base environment)."""
    machine = data["machine"]
    if isinstance(machine, dict):
        machine = MachineConfig.from_dict(machine["__machine_config__"])
    return ExperimentalSetup(
        machine=machine,
        compiler=data["compiler"],
        opt_level=data["opt_level"],
        link_order=tuple(data["link_order"]) if data["link_order"] else None,
        env_bytes=data["env_bytes"],
        stack_align=data["stack_align"],
        function_alignment=data["function_alignment"],
    )


def measurement_to_dict(m: Measurement) -> Dict:
    return {
        "workload": m.workload,
        "size": m.size,
        "seed": m.seed,
        "setup": setup_to_dict(m.setup),
        "counters": asdict(m.counters),
        "exit_value": m.exit_value,
        "function_cycles": dict(m.function_cycles),
    }


def measurement_from_dict(data: Dict) -> Measurement:
    return Measurement(
        workload=data["workload"],
        size=data["size"],
        seed=data["seed"],
        setup=setup_from_dict(data["setup"]),
        counters=PerfCounters(**data["counters"]),
        exit_value=data["exit_value"],
        function_cycles=dict(data.get("function_cycles", {})),
    )


def canonical_json(data: Dict) -> str:
    """Canonical serialization used for checksums: sorted keys, no
    whitespace — byte-identical for equal payloads in any process."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def record_checksum(data: Dict) -> str:
    """SHA-256 over the canonical serialization of one record payload."""
    return hashlib.sha256(canonical_json(data).encode()).hexdigest()


def _validate_measurement_dict(data: Dict, *, path: str, record: int) -> None:
    if not isinstance(data, dict):
        raise ArchiveCorruption(
            f"measurement record is {type(data).__name__}, not an object",
            path=path,
            record=record,
        )
    missing = [k for k in _MEASUREMENT_KEYS if k not in data]
    if missing:
        raise ArchiveCorruption(
            f"measurement record missing keys {missing}",
            path=path,
            record=record,
        )
    setup = data["setup"]
    if not isinstance(setup, dict):
        raise ArchiveCorruption(
            "setup field is not an object", path=path, record=record
        )
    missing = [k for k in _SETUP_KEYS if k not in setup]
    if missing:
        raise ArchiveCorruption(
            f"setup record missing keys {missing}", path=path, record=record
        )


def load_measurement_record(
    data: Dict, *, path: str = "<archive>", record: int = 0
) -> Measurement:
    """Validate and deserialize one measurement dict, raising
    :class:`ArchiveCorruption` (never a raw ``KeyError``) on bad input."""
    _validate_measurement_dict(data, path=path, record=record)
    try:
        return measurement_from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArchiveCorruption(
            f"measurement record does not deserialize: {exc!r}",
            path=path,
            record=record,
        ) from exc


def save_measurements(
    path: str,
    measurements: Sequence[Measurement],
    note: str = "",
    manifest: Optional[Dict] = None,
) -> None:
    """Write measurements (with full setups) to a v2 JSON archive.

    Each record carries a SHA-256 checksum over its canonical form so
    :func:`load_measurements` can detect corruption per record.
    ``manifest`` optionally embeds a provenance manifest
    (:func:`repro.obs.manifest.build_manifest`) so the archive records
    *how* its measurements were produced, not just their values; v1/v2
    readers that predate the field ignore it.

    The write is atomic and durable (tmp + fsync + rename through the
    fault-aware I/O shim, :func:`repro.storageio.atomic_write_text`): a
    crash at any point — and any reader at any time — sees either the
    previous archive or the complete new one, never a truncated hybrid.
    """
    records = []
    for m in measurements:
        data = measurement_to_dict(m)
        records.append({"measurement": data, "sha256": record_checksum(data)})
    payload = {
        "format": FORMAT_V2,
        "note": note,
        "measurements": records,
    }
    if manifest is not None:
        payload["manifest"] = manifest
    storageio.atomic_write_text(
        path,
        json.dumps(payload, indent=1),
        key=f"archive:{os.path.basename(path)}",
    )


def load_measurements(path: str) -> List[Measurement]:
    """Read a JSON archive written by :func:`save_measurements`.

    Accepts both v1 (legacy, no checksums) and v2 archives.  Raises
    :class:`~repro.core.errors.ArchiveCorruption` — with file and record
    context — on truncated files, invalid JSON, missing keys or checksum
    mismatches, never a raw ``KeyError``/``JSONDecodeError``.
    """
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ArchiveCorruption(
            f"invalid JSON (truncated or hand-edited archive?): {exc}",
            path=path,
        ) from exc
    if not isinstance(payload, dict):
        raise ArchiveCorruption("archive root is not an object", path=path)
    fmt = payload.get("format")
    if fmt not in (FORMAT_V1, FORMAT_V2):
        raise ArchiveCorruption(
            f"not a {FORMAT_V1}/{FORMAT_V2} archive (got {fmt!r})", path=path
        )
    records = payload.get("measurements")
    if not isinstance(records, list):
        raise ArchiveCorruption(
            "archive has no 'measurements' list", path=path
        )
    out: List[Measurement] = []
    for i, rec in enumerate(records):
        if fmt == FORMAT_V1:
            out.append(load_measurement_record(rec, path=path, record=i))
            continue
        if not isinstance(rec, dict) or "measurement" not in rec:
            raise ArchiveCorruption(
                "v2 record lacks a 'measurement' payload", path=path, record=i
            )
        data = rec["measurement"]
        _validate_measurement_dict(data, path=path, record=i)
        expected = rec.get("sha256")
        actual = record_checksum(data)
        if expected != actual:
            raise ArchiveCorruption(
                f"checksum mismatch (stored {str(expected)[:12]}…, "
                f"computed {actual[:12]}…) — record was altered or damaged",
                path=path,
                record=i,
            )
        out.append(load_measurement_record(data, path=path, record=i))
    return out


def load_archive(path: str):
    """Read an archive and its embedded provenance manifest (or None).

    Returns ``(measurements, manifest)``.  The measurement side is
    exactly :func:`load_measurements` (same validation and corruption
    errors); the manifest side returns the embedded dict untouched —
    validate it with :func:`repro.obs.manifest.validate_manifest` if the
    archive crossed a trust boundary.
    """
    measurements = load_measurements(path)
    with open(path) as fh:
        payload = json.load(fh)
    manifest = payload.get("manifest")
    if manifest is not None and not isinstance(manifest, dict):
        raise ArchiveCorruption(
            "embedded manifest is not an object", path=path
        )
    return measurements, manifest


def verify_against_archive(
    experiment, archived: Sequence[Measurement], tolerance: float = 0.0
) -> Optional[str]:
    """Re-measure every archived setup; return a description of the first
    drift found, or None when everything matches.

    With a deterministic substrate ``tolerance=0.0`` is the right
    setting: any cycle difference means the toolchain or model changed.
    """
    for m in archived:
        fresh = experiment.run(m.setup)
        if fresh.exit_value != m.exit_value:
            return (
                f"{m.setup.describe()}: exit {fresh.exit_value} != archived "
                f"{m.exit_value}"
            )
        delta = abs(fresh.cycles - m.counters.cycles)
        allowed = tolerance * m.counters.cycles
        if delta > allowed:
            return (
                f"{m.setup.describe()}: cycles {fresh.cycles:.0f} != archived "
                f"{m.counters.cycles:.0f} (drift {delta:.0f})"
            )
    return None
