"""Performance counters collected by the execution engine.

The analysis surface of the library: the paper's methodology reads
hardware performance counters (cycles, instructions, cache misses, branch
mispredictions) to both *measure* performance and *explain* bias; every
mechanism the simulator models is observable here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

#: The engine's per-run event tallies, in canonical order.  The fast
#: path (:mod:`repro.arch.blockcache`) accumulates these in a flat list
#: indexed by position and finalizes through
#: :meth:`PerfCounters.set_tallies`; keeping the order in one place
#: guarantees the reference interpreter and the block-compiled path
#: can never disagree about which slot is which.
TALLY_FIELDS = (
    "loads",
    "stores",
    "branches",
    "mispredicts",
    "taken_branches",
    "calls",
    "returns",
    "nops",
    "window_fetches",
    "window_straddles",
    "unaligned_accesses",
    "line_splits",
    "lsd_covered",
)


@dataclass
class PerfCounters:
    """One run's counter values.

    ``cycles`` is the modelled execution time (the quantity every
    experiment compares); the remaining counters explain where it went.
    """

    cycles: float = 0.0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    taken_branches: int = 0
    calls: int = 0
    returns: int = 0
    nops: int = 0
    l1i_misses: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    window_fetches: int = 0
    window_straddles: int = 0
    unaligned_accesses: int = 0
    line_splits: int = 0
    lsd_covered: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1d_miss_rate(self) -> float:
        accesses = self.loads + self.stores
        return self.l1d_misses / accesses if accesses else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def set_tallies(self, tallies: Sequence[int]) -> None:
        """Install a flat event-tally vector (:data:`TALLY_FIELDS` order).

        Finalization hook for the block-compiled fast path, which
        accumulates event counts positionally during the run.
        """
        for name, value in zip(TALLY_FIELDS, tallies):
            setattr(self, name, value)

    def as_dict(self) -> Dict[str, float]:
        """Counter values keyed by name (for reports and serialization)."""
        out: Dict[str, float] = {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "taken_branches": self.taken_branches,
            "calls": self.calls,
            "returns": self.returns,
            "nops": self.nops,
            "l1i_misses": self.l1i_misses,
            "l1d_misses": self.l1d_misses,
            "l2_misses": self.l2_misses,
            "window_fetches": self.window_fetches,
            "window_straddles": self.window_straddles,
            "unaligned_accesses": self.unaligned_accesses,
            "line_splits": self.line_splits,
            "lsd_covered": self.lsd_covered,
        }
        return out


@dataclass
class RunResult:
    """Engine output: exit value plus counters (per-function cycles when
    profiling was requested; a bounded instruction trace when asked).

    ``pc_cycles`` is the per-PC cycle-attribution profile: one float per
    static instruction (flat index), populated only when the engine ran
    with ``profile_pcs=True`` — it feeds
    :func:`repro.analysis.profilediff.pc_profile_diff`.
    """

    exit_value: int
    counters: PerfCounters
    function_cycles: Dict[str, float] = field(default_factory=dict)
    trace: tuple = ()
    pc_cycles: tuple = ()

    def __repr__(self) -> str:
        return (
            f"RunResult(exit={self.exit_value}, "
            f"cycles={self.counters.cycles:.0f}, "
            f"instructions={self.counters.instructions})"
        )
