"""The execution engine: runs an :class:`Executable` on a :class:`Machine`.

One loop both *executes* (architectural state: registers, memory) and
*times* (microarchitectural cost model) the program.  Time is a
deterministic function of the dynamic instruction stream **and its byte
addresses** — which is the entire point: two programs with identical
instruction streams at different addresses take different times, exactly
the phenomenon the paper measures on hardware.

Cost model summary (all per-machine constants from
:class:`~repro.arch.machines.MachineConfig`):

- every instruction: ``issue_cycles`` (+ ``mul_extra``/``div_extra``),
- front end: entering a new fetch window costs ``window_cycles`` plus an
  I-cache line access when the line changes; an instruction *straddling*
  a window boundary costs ``straddle_cycles``; a loop stream detector
  (when present) waives all front-end costs for small hot loops,
- loads/stores: L1D/L2/memory latencies; ``unaligned_cycles`` when a word
  access is not 8-byte aligned, ``split_line_cycles`` (plus a second
  cache access) when it crosses a 64-byte line,
- an instruction consuming the immediately preceding load's result pays
  ``load_use_penalty``,
- conditional branches consult the predictor (``mispredict_cycles``);
  taken control transfers pay ``taken_branch_cycles``; calls and returns
  pay extras and generate real stack traffic.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

from repro._errors import RunTimeout, SimulationError
from repro.arch.counters import PerfCounters, RunResult
from repro.arch.machines import Machine, MachineConfig
from repro.isa.program import Executable
from repro.os.loader import ProcessImage

_M64 = (1 << 64) - 1
_I64_MAX = (1 << 63) - 1
_I64_MIN = -(1 << 63)

#: Opcode dispatch classes for engine self-profiling, ordered by class id.
OPCODE_CLASSES = (
    "const",   # 0
    "mov",     # 1
    "alu",     # 2..23 except mul/div
    "muldiv",  # 4, 5, 6, 17 (the multi-cycle ALU ops)
    "load",    # 24, 26
    "store",   # 25, 27
    "branch",  # 28, 29
    "jump",    # 30
    "call",    # 31
    "ret",     # 32
    "nop",     # 33
    "halt",    # 34
)


def _build_class_of() -> tuple:
    class_id = {name: i for i, name in enumerate(OPCODE_CLASSES)}
    table = [class_id["alu"]] * 35
    table[0] = class_id["const"]
    table[1] = class_id["mov"]
    for op in (4, 5, 6, 17):
        table[op] = class_id["muldiv"]
    for op in (24, 26):
        table[op] = class_id["load"]
    for op in (25, 27):
        table[op] = class_id["store"]
    for op in (28, 29):
        table[op] = class_id["branch"]
    table[30] = class_id["jump"]
    table[31] = class_id["call"]
    table[32] = class_id["ret"]
    table[33] = class_id["nop"]
    table[34] = class_id["halt"]
    return tuple(table)


#: op -> class id, precomputed for the dispatch loop.
_CLASS_OF = _build_class_of()

#: Escape hatch: set to ``0`` to force the reference interpreter and
#: bypass the block-compiling fast path (:mod:`repro.arch.blockcache`).
FASTPATH_ENV = "REPRO_ENGINE_FASTPATH"


def fastpath_enabled() -> bool:
    """Is the block-compiling fast path enabled for this process?

    On by default; ``REPRO_ENGINE_FASTPATH=0`` selects the reference
    interpreter (both paths produce byte-identical :class:`RunResult`s —
    the flag exists for verification and for debugging the fast path
    itself, never to change results).
    """
    return os.environ.get(FASTPATH_ENV, "").strip() != "0"


class EngineProfile:
    """Opt-in engine *self*-profiling: where does the simulator spend
    its own time, and how repetitive is the instruction stream?

    Passed to :func:`execute` (``engine_profile=``), it tallies

    - dynamic dispatch counts per opcode class (:data:`OPCODE_CLASSES`),
    - host wall-nanoseconds per opcode class (one ``perf_counter_ns``
      call per simulated instruction — roughly doubles simulation time,
      which is why the hook is opt-in),
    - per-PC execution counts, from which :meth:`finish` derives
      unique-vs-dynamic basic-block statistics (block leaders = entry
      point, control-transfer targets, and fall-throughs after a
      transfer) — the replay ratio a block decode cache would exploit.

    Wall-clock tallies are host facts: they belong in provenance
    manifests and bench sidecars (the ``perf`` section), never in
    canonical report JSON — same contract as timing metrics
    (:mod:`repro.obs.metrics`).
    """

    __slots__ = (
        "pc_counts", "class_counts", "class_ns", "runs",
        "blocks_static", "blocks_unique", "blocks_dynamic",
        "fastpath_runs", "bc_compiled", "bc_entries", "bc_unique",
    )

    def __init__(self) -> None:
        self.pc_counts: List[int] = []
        self.class_counts = [0] * len(OPCODE_CLASSES)
        self.class_ns = [0] * len(OPCODE_CLASSES)
        self.runs = 0
        self.blocks_static = 0
        self.blocks_unique = 0
        self.blocks_dynamic = 0
        self.fastpath_runs = 0
        self.bc_compiled = 0
        self.bc_entries = 0
        self.bc_unique = 0

    def note_fastpath(
        self, compiled: int, entries: int, unique: int
    ) -> None:
        """Record one fast-path run's block-cache activity.

        ``compiled`` is how many block bodies were newly code-generated
        for this run (0 when the executable's cache was already warm),
        ``entries`` how many block executions the run dispatched, and
        ``unique`` how many distinct blocks it entered — the gap between
        the two is the cache's hit count.
        """
        self.fastpath_runs += 1
        self.bc_compiled += compiled
        self.bc_entries += entries
        self.bc_unique += unique

    def begin(self, exe: Executable) -> None:
        """Arm the profile for one :func:`execute` call."""
        self.pc_counts = [0] * len(exe.ops)
        self.runs += 1

    def finish(self, exe: Executable) -> "EngineProfile":
        """Derive basic-block statistics from the run's PC counts.

        A *leader* starts a basic block: the entry point, every resolved
        control-transfer target, and every instruction following a
        control transfer.  ``pc_counts[leader]`` is then exactly the
        number of times execution entered that block, so the
        dynamic-to-unique ratio is the replay factor a block-level
        decode cache would see.
        """
        counts = self.pc_counts
        if not counts:
            return self
        n = len(exe.ops)
        leaders = {exe.entry}
        for i in range(n):
            tgt = exe.targets[i]
            if tgt >= 0:
                leaders.add(tgt)
            if 28 <= exe.ops[i] <= 32 and i + 1 < n:
                leaders.add(i + 1)
        executed = [lead for lead in leaders if counts[lead] > 0]
        self.blocks_static += len(leaders)
        self.blocks_unique += len(executed)
        self.blocks_dynamic += sum(counts[lead] for lead in executed)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The profile as a ``perf``-section payload.

        ``opcode_classes`` and ``blocks`` are deterministic;
        ``opcode_wall_ns`` is a wall-clock host fact, and
        ``block_cache`` depends on which engine path ran (it is all
        zeros under ``REPRO_ENGINE_FASTPATH=0``) — ``bench_compare``
        treats both as non-deterministic sidecar facts.
        """
        replay = (
            self.blocks_dynamic / self.blocks_unique
            if self.blocks_unique
            else 0.0
        )
        hits = self.bc_entries - self.bc_unique
        return {
            "runs": self.runs,
            "opcode_classes": {
                name: self.class_counts[i]
                for i, name in enumerate(OPCODE_CLASSES)
                if self.class_counts[i]
            },
            "opcode_wall_ns": {
                name: self.class_ns[i]
                for i, name in enumerate(OPCODE_CLASSES)
                if self.class_counts[i]
            },
            "blocks": {
                "static": self.blocks_static,
                "unique_executed": self.blocks_unique,
                "dynamic_entries": self.blocks_dynamic,
                "replay_ratio": round(replay, 3),
            },
            "block_cache": {
                "fastpath_runs": self.fastpath_runs,
                "compiled_blocks": self.bc_compiled,
                "block_entries": self.bc_entries,
                "block_hits": hits,
                "hit_ratio": (
                    round(hits / self.bc_entries, 3)
                    if self.bc_entries
                    else 0.0
                ),
            },
        }


def _wrap64(value: int) -> int:
    if _I64_MIN <= value <= _I64_MAX:
        return value
    value &= _M64
    if value > _I64_MAX:
        value -= 1 << 64
    return value


def compute_lsd_eligible(exe: Executable, capacity: int) -> List[bool]:
    """Per-instruction flag: is this a backward transfer whose loop body
    fits the loop stream detector (and contains no call/ret/halt)?"""
    ops = exe.ops
    n = len(ops)
    eligible = [False] * n
    for i in range(n):
        op = ops[i]
        if op not in (28, 29, 30):  # BEQZ, BNEZ, JMP
            continue
        tgt = exe.targets[i]
        if tgt < 0 or tgt > i:
            continue
        if i - tgt + 1 > capacity:
            continue
        body = ops[tgt : i + 1]
        if any(o in (31, 32, 34) for o in body):  # CALL, RET, HALT
            continue
        eligible[i] = True
    return eligible


def execute(
    image: ProcessImage,
    machine: Machine,
    max_instructions: int = 2_000_000_000,
    profile_functions: bool = False,
    profile_pcs: bool = False,
    trace_limit: int = 0,
    max_cycles: Optional[float] = None,
    engine_profile: Optional[EngineProfile] = None,
) -> RunResult:
    """Run ``image`` to completion on ``machine``; returns the result.

    ``machine`` must be freshly built (its caches/predictor carry state);
    use :meth:`MachineConfig.build` per run.  With ``trace_limit > 0``,
    the first ``trace_limit`` executed flat-instruction indices are
    recorded on the result (debugging/analysis; the architectural path is
    an environment-independent property worth asserting).
    ``profile_functions`` attributes cycles per placed function;
    ``profile_pcs`` attributes cycles per static instruction (the
    profile hook behind :func:`repro.analysis.profilediff.pc_profile_diff`
    — both share one predicate in the dispatch loop, so the disabled
    path pays the same single branch the function profiler always cost).
    ``engine_profile`` (an :class:`EngineProfile`) turns on engine
    *self*-profiling — opcode-class dispatch counts, per-class host wall
    time, per-PC execution counts — behind its own single disabled-path
    branch.  Raises :class:`SimulationError` on traps (division by zero, wild
    return, runaway execution past ``max_instructions``) and
    :class:`RunTimeout` when the modelled time exceeds ``max_cycles`` —
    the sweep runner's cycle-budget watchdog against hung or
    pathological runs.

    Unless tracing is requested (``trace_limit > 0``) or
    ``REPRO_ENGINE_FASTPATH=0``, execution is delegated to the
    block-compiling fast path (:mod:`repro.arch.blockcache`), which
    produces byte-identical results; the loop below is the reference
    semantics both paths are pinned against.
    """
    if trace_limit == 0 and fastpath_enabled():
        from repro.arch import blockcache

        return blockcache.execute_fast(
            image,
            machine,
            max_instructions=max_instructions,
            profile_functions=profile_functions,
            profile_pcs=profile_pcs,
            max_cycles=max_cycles,
            engine_profile=engine_profile,
        )
    exe = image.executable
    cfg: MachineConfig = machine.config

    ops = exe.ops
    rds = exe.rds
    ras = exe.ras
    rbs = exe.rbs
    imms = exe.imms
    targets = exe.targets
    addrs = exe.addrs
    sizes = exe.sizes
    addr_to_index = exe.addr_to_index
    n_instr = len(ops)

    mem: Dict[int, int] = dict(image.initial_memory)
    regs = [0] * 16
    regs[15] = image.sp_start

    hierarchy = machine.hierarchy
    predictor_observe = machine.predictor.observe
    access_data = hierarchy.access_data
    access_instruction = hierarchy.access_instruction

    issue = cfg.issue_cycles
    mul_extra = cfg.mul_extra
    div_extra = cfg.div_extra
    load_use = cfg.load_use_penalty
    window_shift = cfg.fetch_window_bytes.bit_length() - 1
    window_cycles = cfg.window_cycles
    straddle_cycles = cfg.straddle_cycles
    taken_cycles = cfg.taken_branch_cycles
    mispredict_cycles = cfg.mispredict_cycles
    unaligned_cycles = cfg.unaligned_cycles
    split_cycles = cfg.split_line_cycles
    call_extra = cfg.call_extra
    ret_extra = cfg.ret_extra
    has_lsd = cfg.has_lsd
    lsd_warmup = cfg.lsd_warmup
    lsd_eligible = (
        compute_lsd_eligible(exe, cfg.lsd_capacity) if has_lsd else None
    )

    c = PerfCounters()
    cycles = 0.0
    executed = 0
    loads = stores = branches = mispredicts = taken = 0
    calls = rets = nops = 0
    window_fetches = straddles = unaligned = splits = lsd_covered = 0

    cur_window = -1
    cur_line = -1
    lsd_active = False
    lsd_lo = lsd_hi = -1
    lsd_streak = 0
    lsd_branch = -1
    last_load_reg = -1

    trace: List[int] = []
    tracing = trace_limit > 0

    func_cycles: Dict[str, float] = {}
    func_of: Optional[List[str]] = None
    if profile_functions:
        func_of = [""] * n_instr
        for pf in exe.placed:
            for i in range(pf.flat_start, pf.flat_end):
                func_of[i] = pf.name
        func_cycles = {pf.name: 0.0 for pf in exe.placed}
    pc_cycles: Optional[List[float]] = (
        [0.0] * n_instr if profile_pcs else None
    )
    profiling = profile_functions or profile_pcs

    eprof_on = engine_profile is not None
    if eprof_on:
        engine_profile.begin(exe)
        ep_counts = engine_profile.pc_counts
        ep_class_counts = engine_profile.class_counts
        ep_class_ns = engine_profile.class_ns
        ep_class_of = _CLASS_OF
        ep_clock = time.perf_counter_ns
        ep_t = ep_clock()

    cycle_budget = max_cycles if max_cycles is not None else float("inf")

    pc = exe.entry
    while True:
        if pc < 0 or pc >= n_instr:
            raise SimulationError(f"pc out of range: {pc}")
        executed += 1
        if executed > max_instructions:
            raise SimulationError(
                f"exceeded {max_instructions} instructions (runaway loop?)"
            )
        if cycles > cycle_budget:
            raise RunTimeout(
                f"cycle budget {cycle_budget:.0f} exceeded after "
                f"{executed} instructions"
            )
        cycles_before = cycles
        if tracing:
            trace.append(pc)
            if len(trace) >= trace_limit:
                tracing = False
        addr = addrs[pc]

        # ---- front end ----
        if lsd_active:
            if lsd_lo <= pc <= lsd_hi:
                lsd_covered += 1
            else:
                lsd_active = False
                lsd_streak = 0
                w = addr >> window_shift
                if w != cur_window:
                    cycles += window_cycles
                    window_fetches += 1
                    cur_window = w
                    line = addr >> 6
                    if line != cur_line:
                        cycles += access_instruction(line)
                        cur_line = line
                end = addr + sizes[pc] - 1
                wend = end >> window_shift
                if wend != cur_window:
                    cycles += straddle_cycles
                    straddles += 1
                    cur_window = wend
                    lend = end >> 6
                    if lend != cur_line:
                        cycles += access_instruction(lend)
                        cur_line = lend
        else:
            w = addr >> window_shift
            if w != cur_window:
                cycles += window_cycles
                window_fetches += 1
                cur_window = w
                line = addr >> 6
                if line != cur_line:
                    cycles += access_instruction(line)
                    cur_line = line
            end = addr + sizes[pc] - 1
            wend = end >> window_shift
            if wend != cur_window:
                cycles += straddle_cycles
                straddles += 1
                cur_window = wend
                lend = end >> 6
                if lend != cur_line:
                    cycles += access_instruction(lend)
                    cur_line = lend

        cycles += issue
        op = ops[pc]
        next_pc = pc + 1

        # ---- execute ----
        if op <= 23:  # register-to-register and immediate ALU, CONST, MOV
            if op == 0:  # CONST
                regs[rds[pc]] = imms[pc]
            elif op == 1:  # MOV
                if ras[pc] == last_load_reg:
                    cycles += load_use
                regs[rds[pc]] = regs[ras[pc]]
            elif op <= 15:
                a = ras[pc]
                b = rbs[pc]
                if a == last_load_reg or b == last_load_reg:
                    cycles += load_use
                va = regs[a]
                vb = regs[b]
                if op == 2:
                    regs[rds[pc]] = va + vb
                elif op == 3:
                    regs[rds[pc]] = va - vb
                elif op == 4:
                    cycles += mul_extra
                    regs[rds[pc]] = _wrap64(va * vb)
                elif op == 5:
                    cycles += div_extra
                    if vb == 0:
                        raise SimulationError(f"division by zero at pc={pc}")
                    q = abs(va) // abs(vb)
                    regs[rds[pc]] = -q if (va < 0) != (vb < 0) else q
                elif op == 6:
                    cycles += div_extra
                    if vb == 0:
                        raise SimulationError(f"modulo by zero at pc={pc}")
                    q = abs(va) // abs(vb)
                    q = -q if (va < 0) != (vb < 0) else q
                    regs[rds[pc]] = va - q * vb
                elif op == 7:
                    regs[rds[pc]] = _wrap64((va & _M64) & (vb & _M64))
                elif op == 8:
                    regs[rds[pc]] = _wrap64((va & _M64) | (vb & _M64))
                elif op == 9:
                    regs[rds[pc]] = _wrap64((va & _M64) ^ (vb & _M64))
                elif op == 10:
                    regs[rds[pc]] = _wrap64((va & _M64) << (vb & 63))
                elif op == 11:
                    regs[rds[pc]] = (va & _M64) >> (vb & 63)
                elif op == 12:
                    regs[rds[pc]] = 1 if va < vb else 0
                elif op == 13:
                    regs[rds[pc]] = 1 if va <= vb else 0
                elif op == 14:
                    regs[rds[pc]] = 1 if va == vb else 0
                else:  # 15 SNE
                    regs[rds[pc]] = 1 if va != vb else 0
            else:  # immediate ALU
                a = ras[pc]
                if a == last_load_reg:
                    cycles += load_use
                va = regs[a]
                imm = imms[pc]
                if op == 16:
                    regs[rds[pc]] = va + imm
                elif op == 17:
                    cycles += mul_extra
                    regs[rds[pc]] = _wrap64(va * imm)
                elif op == 18:
                    regs[rds[pc]] = _wrap64((va & _M64) & (imm & _M64))
                elif op == 19:
                    regs[rds[pc]] = _wrap64((va & _M64) | (imm & _M64))
                elif op == 20:
                    regs[rds[pc]] = _wrap64((va & _M64) ^ (imm & _M64))
                elif op == 21:
                    regs[rds[pc]] = _wrap64((va & _M64) << (imm & 63))
                elif op == 22:
                    regs[rds[pc]] = (va & _M64) >> (imm & 63)
                else:  # 23 SLTI
                    regs[rds[pc]] = 1 if va < imm else 0
            last_load_reg = -1
        elif op <= 27:  # memory
            a = ras[pc]
            if a == last_load_reg:
                cycles += load_use
            ea = regs[a] + imms[pc]
            if op == 24:  # LOAD
                loads += 1
                if ea & 7:
                    unaligned += 1
                    cycles += unaligned_cycles
                line = ea >> 6
                cycles += access_data(line)
                if (ea & 63) > 56:
                    splits += 1
                    cycles += split_cycles
                    cycles += access_data(line + 1)
                regs[rds[pc]] = mem.get(ea, 0)
                last_load_reg = rds[pc]
            elif op == 25:  # STORE
                b = rbs[pc]
                if b == last_load_reg:
                    cycles += load_use
                stores += 1
                if ea & 7:
                    unaligned += 1
                    cycles += unaligned_cycles
                line = ea >> 6
                cycles += access_data(line)
                if (ea & 63) > 56:
                    splits += 1
                    cycles += split_cycles
                    cycles += access_data(line + 1)
                mem[ea] = regs[b]
                last_load_reg = -1
            elif op == 26:  # LOADB
                loads += 1
                cycles += access_data(ea >> 6)
                regs[rds[pc]] = mem.get(ea, 0) & 0xFF
                last_load_reg = rds[pc]
            else:  # STOREB
                b = rbs[pc]
                if b == last_load_reg:
                    cycles += load_use
                stores += 1
                cycles += access_data(ea >> 6)
                mem[ea] = regs[b] & 0xFF
                last_load_reg = -1
        elif op <= 32:  # control
            if op == 28 or op == 29:  # BEQZ / BNEZ
                a = ras[pc]
                if a == last_load_reg:
                    cycles += load_use
                branches += 1
                value = regs[a]
                is_taken = (value == 0) if op == 28 else (value != 0)
                if predictor_observe(addr, is_taken):
                    mispredicts += 1
                    cycles += mispredict_cycles
                if is_taken:
                    taken += 1
                    cycles += taken_cycles
                    tgt = targets[pc]
                    if has_lsd and tgt <= pc and lsd_eligible[pc]:
                        if lsd_branch == pc:
                            lsd_streak += 1
                        else:
                            lsd_branch = pc
                            lsd_streak = 1
                        if lsd_streak >= lsd_warmup and not lsd_active:
                            lsd_active = True
                            lsd_lo = tgt
                            lsd_hi = pc
                    next_pc = tgt
            elif op == 30:  # JMP
                cycles += taken_cycles
                tgt = targets[pc]
                if has_lsd and tgt <= pc and lsd_eligible[pc]:
                    if lsd_branch == pc:
                        lsd_streak += 1
                    else:
                        lsd_branch = pc
                        lsd_streak = 1
                    if lsd_streak >= lsd_warmup and not lsd_active:
                        lsd_active = True
                        lsd_lo = tgt
                        lsd_hi = pc
                next_pc = tgt
            elif op == 31:  # CALL
                calls += 1
                cycles += taken_cycles + call_extra
                sp = regs[15] - 8
                regs[15] = sp
                if sp & 7:
                    unaligned += 1
                    cycles += unaligned_cycles
                line = sp >> 6
                cycles += access_data(line)
                if (sp & 63) > 56:
                    splits += 1
                    cycles += split_cycles
                    cycles += access_data(line + 1)
                stores += 1
                mem[sp] = addr + sizes[pc]
                next_pc = targets[pc]
            else:  # RET
                rets += 1
                cycles += taken_cycles + ret_extra
                sp = regs[15]
                ret_addr = mem.get(sp)
                if ret_addr is None:
                    raise SimulationError(
                        f"return with corrupt stack at pc={pc} (sp={sp:#x})"
                    )
                loads += 1
                if sp & 7:
                    unaligned += 1
                    cycles += unaligned_cycles
                line = sp >> 6
                cycles += access_data(line)
                if (sp & 63) > 56:
                    splits += 1
                    cycles += split_cycles
                    cycles += access_data(line + 1)
                regs[15] = sp + 8
                idx = addr_to_index.get(ret_addr)
                if idx is None:
                    raise SimulationError(
                        f"return to non-instruction address {ret_addr:#x}"
                    )
                next_pc = idx
            last_load_reg = -1
        elif op == 33:  # NOP
            nops += 1
            last_load_reg = -1
        else:  # HALT
            if profiling:
                delta = cycles - cycles_before
                if func_of is not None:
                    func_cycles[func_of[pc]] += delta
                if pc_cycles is not None:
                    pc_cycles[pc] += delta
            if eprof_on:
                ep_counts[pc] += 1
                ci = ep_class_of[op]
                ep_class_counts[ci] += 1
                ep_now = ep_clock()
                ep_class_ns[ci] += ep_now - ep_t
                ep_t = ep_now
            break

        if profiling:
            delta = cycles - cycles_before
            if func_of is not None:
                func_cycles[func_of[pc]] += delta
            if pc_cycles is not None:
                pc_cycles[pc] += delta
        if eprof_on:
            ep_counts[pc] += 1
            ci = ep_class_of[op]
            ep_class_counts[ci] += 1
            ep_now = ep_clock()
            ep_class_ns[ci] += ep_now - ep_t
            ep_t = ep_now
        pc = next_pc

    if eprof_on:
        engine_profile.finish(exe)
    c.cycles = cycles
    c.instructions = executed
    c.loads = loads
    c.stores = stores
    c.branches = branches
    c.mispredicts = mispredicts
    c.taken_branches = taken
    c.calls = calls
    c.returns = rets
    c.nops = nops
    c.window_fetches = window_fetches
    c.window_straddles = straddles
    c.unaligned_accesses = unaligned
    c.line_splits = splits
    c.lsd_covered = lsd_covered
    c.l1i_misses = hierarchy.l1i.misses
    c.l1d_misses = hierarchy.l1d.misses
    c.l2_misses = hierarchy.l2.misses if hierarchy.l2 is not None else 0
    return RunResult(
        exit_value=regs[0],
        counters=c,
        function_cycles=func_cycles,
        trace=tuple(trace),
        pc_cycles=tuple(pc_cycles) if pc_cycles is not None else (),
    )
