"""Machine models: configuration and presets.

Three presets mirror the paper's platforms:

- :func:`core2` — out-of-order x86 with a loop stream detector (LSD):
  small loops that fit the LSD stream from a queue and become immune to
  fetch alignment; loops that *don't* fit pay per-window costs.  This
  asymmetry is a key mechanism by which O3's unrolled loops become
  layout-sensitive.
- :func:`pentium4` — trace-cache front end (no per-window/straddle
  penalties once traces are built — modelled as zero straddle cost), a
  very deep pipe (expensive mispredicts), and expensive unaligned access.
- :func:`m5_o3cpu` — the m5 simulator's O3CPU: textbook fetch/caches, no
  LSD, modest penalties.

All cost constants are in cycles.  They are calibration points of the
*model*, not claims about the real parts; tests pin the relationships
that matter (e.g. P4 mispredict ≫ Core 2 mispredict).

**Scaled geometry.**  The workload suite is roughly two orders of
magnitude smaller than SPEC CPU2006 reference runs, so cache and
predictor capacities are scaled down proportionally (e.g. Core 2's
32 KiB 8-way L1D becomes 4 KiB 2-way) to preserve the *pressure* the
paper's programs exert on the real structures.  Per-access phenomena —
fetch-window geometry, 64-byte lines, alignment penalties — are kept at
physical size, since they act on individual accesses, not footprints.
This is the standard miniature-workload simulation methodology; see
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional

from repro.arch.branch import BranchPredictor, make_predictor
from repro.arch.cache import CacheConfig, CacheHierarchy


@dataclass(frozen=True)
class MachineConfig:
    """Full description of one simulated machine."""

    name: str
    description: str = ""

    # Execution core.
    issue_cycles: float = 0.33  # per-instruction baseline (1/width)
    mul_extra: float = 1.0
    div_extra: float = 8.0
    load_use_penalty: float = 1.0
    call_extra: float = 1.0
    ret_extra: float = 1.0
    taken_branch_cycles: float = 0.5
    mispredict_cycles: float = 15.0

    # Front end.
    fetch_window_bytes: int = 16
    window_cycles: float = 0.4
    straddle_cycles: float = 1.0
    has_lsd: bool = False
    lsd_capacity: int = 18
    lsd_warmup: int = 3

    # Memory system.
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * 1024, 64, 8)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 64, 8)
    )
    l2: Optional[CacheConfig] = field(
        default_factory=lambda: CacheConfig("L2", 2 * 1024 * 1024, 64, 8)
    )
    lat_l2: float = 12.0
    lat_mem: float = 165.0
    unaligned_cycles: float = 1.0
    split_line_cycles: float = 5.0

    # Branch prediction.
    predictor_kind: str = "gshare"
    predictor_table_bits: int = 14
    predictor_history_bits: int = 12

    def build(self) -> "Machine":
        """Instantiate fresh mutable machine state for one run."""
        return Machine(self)

    def with_overrides(self, **kwargs) -> "MachineConfig":
        """A copy with selected knobs changed (ablation studies)."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict:
        """Serialize to plain data (JSON-safe) for sharing machine
        descriptions between studies."""
        out = asdict(self)
        for key in ("l1i", "l1d", "l2"):
            if out[key] is not None:
                out[key] = dict(out[key])
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "MachineConfig":
        """Reconstruct a configuration serialized by :meth:`to_dict`."""
        data = dict(data)
        for key in ("l1i", "l1d", "l2"):
            if data.get(key) is not None:
                data[key] = CacheConfig(**data[key])
        return cls(**data)

    def summary(self) -> Dict[str, str]:
        """Human-readable key properties (Table 1 of the paper)."""
        return {
            "machine": self.name,
            "issue width": f"{1 / self.issue_cycles:.1f}",
            "L1I": f"{self.l1i.size_bytes // 1024}KiB/{self.l1i.ways}w",
            "L1D": f"{self.l1d.size_bytes // 1024}KiB/{self.l1d.ways}w",
            "L2": (
                f"{self.l2.size_bytes // 1024}KiB/{self.l2.ways}w"
                if self.l2
                else "none"
            ),
            "branch predictor": self.predictor_kind,
            "mispredict penalty": f"{self.mispredict_cycles:.0f}",
            "loop stream detector": (
                f"yes ({self.lsd_capacity} entries)" if self.has_lsd else "no"
            ),
            "fetch window": f"{self.fetch_window_bytes}B",
        }


class Machine:
    """Mutable per-run machine state built from a :class:`MachineConfig`."""

    __slots__ = ("config", "hierarchy", "predictor")

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.hierarchy = CacheHierarchy(
            config.l1i, config.l1d, config.l2, config.lat_l2, config.lat_mem
        )
        self.predictor: BranchPredictor = make_predictor(
            config.predictor_kind,
            config.predictor_table_bits,
            config.predictor_history_bits,
        )

    def __repr__(self) -> str:
        return f"Machine({self.config.name})"


def core2() -> MachineConfig:
    """Intel Core 2-style machine (the paper's primary platform)."""
    return MachineConfig(
        name="core2",
        description="OoO, 3-wide, gshare, 18-entry loop stream detector",
        issue_cycles=0.33,
        mispredict_cycles=15.0,
        window_cycles=0.25,
        straddle_cycles=0.55,
        has_lsd=True,
        lsd_capacity=32,
        lsd_warmup=3,
        l1i=CacheConfig("L1I", 4 * 1024, 64, 2),
        l1d=CacheConfig("L1D", 4 * 1024, 64, 2),
        l2=CacheConfig("L2", 64 * 1024, 64, 8),
        lat_l2=12.0,
        lat_mem=165.0,
        unaligned_cycles=0.4,
        split_line_cycles=4.0,
        predictor_kind="gshare",
        predictor_table_bits=10,
        predictor_history_bits=8,
    )


def pentium4() -> MachineConfig:
    """Pentium 4-style machine: deep pipeline, trace-cache front end."""
    return MachineConfig(
        name="pentium4",
        description="deep pipeline, trace cache, 2-wide sustained",
        issue_cycles=0.5,
        mul_extra=2.0,
        div_extra=20.0,
        load_use_penalty=2.0,
        mispredict_cycles=30.0,
        taken_branch_cycles=1.0,
        window_cycles=0.15,  # trace cache hides most fetch work
        straddle_cycles=0.0,  # traces are not byte-window sensitive
        has_lsd=False,
        l1i=CacheConfig("TC", 4 * 1024, 64, 4),  # trace cache proxy
        l1d=CacheConfig("L1D", 2 * 1024, 64, 4),
        l2=CacheConfig("L2", 32 * 1024, 64, 8),
        lat_l2=18.0,
        lat_mem=220.0,
        unaligned_cycles=2.0,
        split_line_cycles=10.0,
        predictor_kind="gshare",
        predictor_table_bits=12,
        predictor_history_bits=10,
    )


def m5_o3cpu() -> MachineConfig:
    """m5 simulator O3CPU-style machine: textbook OoO, no LSD."""
    return MachineConfig(
        name="m5_o3cpu",
        description="simulated 4-wide OoO, tournament-ish bimodal predictor",
        issue_cycles=0.25,
        mul_extra=1.0,
        div_extra=12.0,
        load_use_penalty=1.0,
        mispredict_cycles=8.0,
        taken_branch_cycles=0.5,
        window_cycles=0.3,
        straddle_cycles=0.5,
        has_lsd=False,
        l1i=CacheConfig("L1I", 4 * 1024, 64, 2),
        l1d=CacheConfig("L1D", 4 * 1024, 64, 2),
        l2=CacheConfig("L2", 64 * 1024, 64, 8),
        lat_l2=10.0,
        lat_mem=100.0,
        unaligned_cycles=1.0,
        split_line_cycles=4.0,
        predictor_kind="bimodal",
        predictor_table_bits=9,
        predictor_history_bits=1,
    )


_PRESETS = {
    "core2": core2,
    "pentium4": pentium4,
    "m5_o3cpu": m5_o3cpu,
}


def get_machine(name: str) -> MachineConfig:
    """Look up a machine preset by name."""
    try:
        return _PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(_PRESETS)}"
        ) from None


def available_machines() -> tuple:
    """Names of the built-in machine presets."""
    return tuple(sorted(_PRESETS))
