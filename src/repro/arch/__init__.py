"""Microarchitectural simulation substrate.

Deterministic timing models of the paper's three platforms (Core 2,
Pentium 4, m5 O3CPU): set-associative caches, branch predictors,
fetch-window/alignment behaviour, a Core 2-style loop stream detector,
and the execution engine that runs linked executables while collecting
performance counters.
"""

from repro.arch.branch import BimodalPredictor, BranchPredictor, GSharePredictor
from repro.arch.cache import Cache, CacheConfig, CacheHierarchy
from repro.arch.counters import PerfCounters, RunResult
from repro.arch.engine import SimulationError, compute_lsd_eligible, execute
from repro.arch.machines import (
    Machine,
    MachineConfig,
    available_machines,
    core2,
    get_machine,
    m5_o3cpu,
    pentium4,
)

__all__ = [
    "BimodalPredictor",
    "BranchPredictor",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "GSharePredictor",
    "Machine",
    "MachineConfig",
    "PerfCounters",
    "RunResult",
    "SimulationError",
    "available_machines",
    "compute_lsd_eligible",
    "core2",
    "execute",
    "get_machine",
    "m5_o3cpu",
    "pentium4",
]
