"""Set-associative cache models.

Caches are the primary carrier of layout-induced measurement bias: a
cache maps an address to a set by ``(addr // line_size) % num_sets``, so
moving code or data (relinking, environment growth) changes *which lines
conflict* without changing the program.  The model is a classic LRU
set-associative cache storing tags only (the simulator's memory holds the
values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    line_size: int = 64
    ways: int = 8

    def __post_init__(self) -> None:
        if self.line_size <= 0 or (self.line_size & (self.line_size - 1)):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if self.ways <= 0:
            raise ValueError(f"{self.name}: ways must be positive")
        if self.size_bytes % (self.line_size * self.ways):
            raise ValueError(
                f"{self.name}: size must be a multiple of line_size * ways"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.ways)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size


class Cache:
    """One LRU set-associative cache level.

    The public interface works in *line numbers* (``addr // line_size``) —
    the engine precomputes them — via :meth:`access_line`, which returns
    True on hit and installs the line on miss (evicting LRU).
    """

    __slots__ = ("config", "_sets", "_set_mask", "hits", "misses")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        num_sets = config.num_sets
        if num_sets & (num_sets - 1):
            raise ValueError(f"{config.name}: number of sets must be a power of two")
        self._sets: List[List[int]] = [[] for _ in range(num_sets)]
        self._set_mask = num_sets - 1
        self.hits = 0
        self.misses = 0

    def access_line(self, line: int) -> bool:
        """Access ``line``; True on hit.  Misses install the line (LRU).

        The MRU position is checked before the full way scan: loop-bound
        access streams hit the MRU way most of the time, and this method
        is the hottest call in the whole simulator (every modelled
        memory access and I-cache line change lands here).
        """
        ways = self._sets[line & self._set_mask]
        if ways and ways[0] == line:
            self.hits += 1
            return True
        if line in ways:
            # Move to MRU position.
            ways.remove(line)
            ways.insert(0, line)
            self.hits += 1
            return True
        self.misses += 1
        ways.insert(0, line)
        if len(ways) > self.config.ways:
            ways.pop()
        return False

    def probe_line(self, line: int) -> bool:
        """Non-modifying lookup (analysis tooling)."""
        return line in self._sets[line & self._set_mask]

    def set_index(self, line: int) -> int:
        """The set a line maps to — exposed for conflict analysis."""
        return line & self._set_mask

    def resident_lines(self) -> List[int]:
        """All currently-resident line numbers (analysis tooling)."""
        out: List[int] = []
        for ways in self._sets:
            out.extend(ways)
        return out

    def flush(self) -> None:
        """Empty the cache; statistics are preserved."""
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"Cache({cfg.name}: {cfg.size_bytes // 1024}KiB, "
            f"{cfg.ways}-way, {cfg.line_size}B lines, "
            f"hits={self.hits}, misses={self.misses})"
        )


class CacheHierarchy:
    """L1I + L1D backed by a shared L2 (optionally None = perfect L2).

    :meth:`access_instruction` / :meth:`access_data` return the *extra
    cycles* beyond an L1 hit, from the machine's latency settings.
    """

    __slots__ = (
        "l1i",
        "l1d",
        "l2",
        "lat_l2",
        "lat_mem",
        "_i_sets",
        "_i_mask",
        "_d_sets",
        "_d_mask",
    )

    def __init__(
        self,
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: Optional[CacheConfig],
        lat_l2: float,
        lat_mem: float,
    ) -> None:
        self.l1i = Cache(l1i)
        self.l1d = Cache(l1d)
        self.l2 = Cache(l2) if l2 is not None else None
        self.lat_l2 = lat_l2
        self.lat_mem = lat_mem
        # Hot-path bindings: the accessors below are called for every
        # modelled memory access, so the L1 MRU probe reads the set
        # lists directly instead of chasing two attribute levels.
        # (Cache.flush clears the way lists in place, so these aliases
        # stay valid for the cache's lifetime.)
        self._i_sets = self.l1i._sets
        self._i_mask = self.l1i._set_mask
        self._d_sets = self.l1d._sets
        self._d_mask = self.l1d._set_mask

    def access_instruction(self, line: int) -> float:
        """Extra cycles (beyond an L1I hit) for fetching ``line``."""
        ways = self._i_sets[line & self._i_mask]
        if ways and ways[0] == line:
            self.l1i.hits += 1
            return 0.0
        if self.l1i.access_line(line):
            return 0.0
        if self.l2 is None or self.l2.access_line(line):
            return self.lat_l2
        return self.lat_mem

    def access_data(self, line: int) -> float:
        """Extra cycles (beyond an L1D hit) for accessing ``line``."""
        ways = self._d_sets[line & self._d_mask]
        if ways and ways[0] == line:
            self.l1d.hits += 1
            return 0.0
        if self.l1d.access_line(line):
            return 0.0
        if self.l2 is None or self.l2.access_line(line):
            return self.lat_l2
        return self.lat_mem

    def flush(self) -> None:
        self.l1i.flush()
        self.l1d.flush()
        if self.l2 is not None:
            self.l2.flush()
