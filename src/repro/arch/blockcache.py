"""Block-compiling fast path for the execution engine.

The reference interpreter in :mod:`repro.arch.engine` pays per-*dynamic*
instruction for work that is a pure function of the *static* instruction
and the machine config: operand/decode field lookups, opcode dispatch,
fetch-window and cache-line arithmetic on constant byte addresses, and
the load-use/front-end bookkeeping branches.  This module removes that
tax in two layers:

1. **Basic-block decode cache** — on first use of an
   (:class:`~repro.isa.program.Executable`, machine config) pair, every
   straight-line block (leader → first control transfer) is decoded
   *once* into a specialized Python function: operands, effective
   immediates, byte addresses, trap messages and per-machine cycle
   constants are baked in as literals, so the hot loop replays compiled
   blocks instead of re-decoding instructions.  Code is immutable after
   load, so the cache is never invalidated for a live ``Executable``;
   across processes, the result store's ``engine_fingerprint`` hashes
   this module's source, so any change here invalidates stored results
   automatically.

2. **Block timing memo** — a block's front-end cost (fetch-window
   fetches, straddles, I-cache line changes) depends only on its
   constant byte addresses and the microarchitectural *entry state*
   (current window, current line, pending load register, LSD state).
   The code generator tracks that state symbolically through the block:
   after the first instruction the window is statically known, so all
   remaining window/straddle charges and line-change decisions are
   emitted unconditionally (or not at all) — the per-entry residue is
   at most one window guard and two line guards, everything else is a
   memoized straight-line schedule keyed by the block's alignment.

**Byte-identity is the contract.**  ``cycles`` is a float accumulated
by ordered ``+=`` in the reference loop; float addition is not
associative, so the generated code replays the *exact same sequence of
float additions* (constants are folded only where the reference itself
computes the sum before adding, e.g. ``taken_cycles + call_extra``).
Counters, ``pc_cycles``/``function_cycles`` attribution, trap types and
messages, predictor/cache side effects and ``RunTimeout`` behaviour are
replicated instruction-for-instruction; ``tests/unit/test_blockcache.py``
pins equality against ``REPRO_ENGINE_FASTPATH=0`` on every machine
preset.  See ``docs/engine.md`` for the full derivation.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro._errors import RunTimeout, SimulationError
from repro.arch import engine as _engine
from repro.arch.counters import PerfCounters, RunResult, TALLY_FIELDS
from repro.arch.machines import Machine, MachineConfig
from repro.os.loader import ProcessImage

__all__ = [
    "BlockCache",
    "BlockPlan",
    "block_cache_for",
    "execute_fast",
    "warm",
]

_M64 = (1 << 64) - 1

#: Tally-vector slot per counter name (``TALLY_FIELDS`` order).
_T = {name: i for i, name in enumerate(TALLY_FIELDS)}

#: Opcodes that end a basic block (control transfers and HALT).
_CONTROL_OPS = frozenset((28, 29, 30, 31, 32, 34))

#: Variant key: (finite cycle budget, function profiling, pc profiling,
#: engine self-profiling).  Each combination changes the generated code.
_Variant = Tuple[bool, bool, bool, bool]


@dataclass(frozen=True)
class BlockPlan:
    """Decode-cache record for one straight-line block (introspection).

    ``entry``/``pcs`` are flat instruction indices; ``terminator_op`` is
    the control opcode ending the block (None when the block ends at a
    leader boundary or at the end of the code image).  ``entry_window``
    and ``entry_line`` are the fetch-window and I-cache line indices of
    the entry instruction — the alignment part of the timing-memo key,
    which is why two layouts of the same instruction stream compile to
    different block code (the phenomenon the paper measures).
    """

    entry: int
    pcs: Tuple[int, ...]
    terminator_op: Optional[int]
    entry_window: int
    entry_line: int


def _static_leaders(ops, targets, entry: int) -> set:
    """Block leaders: entry, resolved transfer targets, fall-throughs.

    Mirrors the leader definition in
    :meth:`repro.arch.engine.EngineProfile.finish` so replay-ratio
    telemetry and the decode cache agree on what a block is.
    """
    n = len(ops)
    leaders = {entry}
    for i in range(n):
        if targets[i] >= 0:
            leaders.add(targets[i])
        if 28 <= ops[i] <= 32 and i + 1 < n:
            leaders.add(i + 1)
    return leaders


def _lit(value) -> str:
    """Exact source literal for a machine constant (floats round-trip)."""
    return repr(value)


class BlockCache:
    """Compiled-block tables for one (executable, machine config) pair.

    Holds only the executable's decode arrays (not the ``Executable``
    itself — the registry below keys on it weakly, and a strong
    back-reference from the value would leak the entry).  Blocks are
    batch-compiled per *variant* (budget/profiling combination) on first
    use; blocks entered at addresses discovered only at run time
    (returns to computed addresses landing mid-block) are compiled
    lazily and cached alongside.
    """

    def __init__(self, exe, cfg: MachineConfig) -> None:
        self.cfg = cfg
        self._ops = exe.ops
        self._rds = exe.rds
        self._ras = exe.ras
        self._rbs = exe.rbs
        self._imms = exe.imms
        self._targets = exe.targets
        self._addrs = exe.addrs
        self._sizes = exe.sizes
        self._n = len(exe.ops)
        self._entry = exe.entry
        self._a2i_get = exe.addr_to_index.get
        self._leaders = _static_leaders(exe.ops, exe.targets, exe.entry)
        self._func_of: List[str] = [""] * self._n
        for pf in exe.placed:
            for i in range(pf.flat_start, pf.flat_end):
                self._func_of[i] = pf.name
        self._lsd_eligible = (
            _engine.compute_lsd_eligible(exe, cfg.lsd_capacity)
            if cfg.has_lsd
            else [False] * self._n
        )
        self._ws = cfg.fetch_window_bytes.bit_length() - 1
        #: Every (lo, hi) pc range the LSD can ever activate over:
        #: activation copies (target, branch_pc) of an eligible backward
        #: transfer, so a block whose entry lies outside all of these
        #: ranges can never satisfy the covered guard and its covered
        #: body is elided entirely (big compile-time saving).
        self._lsd_ranges: List[Tuple[int, int]] = [
            (self._targets[i], i)
            for i in range(self._n)
            if self._lsd_eligible[i]
        ]
        self._plans: Dict[int, BlockPlan] = {}
        self._variants: Dict[_Variant, Dict[str, Any]] = {}
        self._lock = threading.Lock()

    # -- decode -----------------------------------------------------------

    def plan(self, entry: int) -> BlockPlan:
        """The decode record for the block starting at ``entry``."""
        cached = self._plans.get(entry)
        if cached is not None:
            return cached
        pcs = [entry]
        i = entry
        while self._ops[i] not in _CONTROL_OPS:
            j = i + 1
            if j >= self._n or j in self._leaders:
                break
            pcs.append(j)
            i = j
        term = self._ops[i] if self._ops[i] in _CONTROL_OPS else None
        addr = self._addrs[entry]
        plan = BlockPlan(
            entry=entry,
            pcs=tuple(pcs),
            terminator_op=term,
            entry_window=addr >> self._ws,
            entry_line=addr >> 6,
        )
        self._plans[entry] = plan
        return plan

    def static_plans(self) -> List[BlockPlan]:
        """Decode records for every statically discovered block."""
        return [
            self.plan(lead)
            for lead in sorted(self._leaders)
            if 0 <= lead < self._n
        ]

    # -- compilation ------------------------------------------------------

    def _new_globals(self) -> Dict[str, Any]:
        return {
            "__builtins__": {"abs": abs, "KeyError": KeyError},
            "abs": abs,
            "KeyError": KeyError,
            "_w64": _engine._wrap64,
            "_M": _M64,
            "a2i": self._a2i_get,
            "SimulationError": SimulationError,
            "RunTimeout": RunTimeout,
        }

    def _ensure_variant(self, variant: _Variant) -> Dict[str, Any]:
        ent = self._variants.get(variant)
        if ent is not None:
            return ent
        with self._lock:
            ent = self._variants.get(variant)
            if ent is not None:
                return ent
            chunks = []
            entries = []
            for lead in sorted(self._leaders):
                if 0 <= lead < self._n:
                    chunks.append(self._factory_source(lead, variant))
                    entries.append(lead)
            glb = self._new_globals()
            tag = "".join("1" if f else "0" for f in variant)
            exec(  # noqa: S102 — the source is generated from decode
                compile(
                    "\n".join(chunks), f"<repro-blockcache:{tag}>", "exec"
                ),
                glb,
            )
            ent = {
                "globals": glb,
                "table": {pc: glb[f"_mk_{pc}"] for pc in entries},
                "compiled": len(entries),
            }
            self._variants[variant] = ent
            return ent

    def table(self, variant: _Variant) -> Dict[int, Callable]:
        """The ``entry pc -> factory`` table for one variant."""
        return self._ensure_variant(variant)["table"]

    def compiled_count(self, variant: _Variant) -> int:
        """How many block factories this variant has compiled so far."""
        return self._ensure_variant(variant)["compiled"]

    def factory(self, pc: int, variant: _Variant) -> Callable:
        """Factory for the block entered at ``pc``; lazily compiles
        blocks first discovered at run time (mid-block entries)."""
        ent = self._ensure_variant(variant)
        table = ent["table"]
        fac = table.get(pc)
        if fac is None:
            with self._lock:
                fac = table.get(pc)
                if fac is None:
                    src = self._factory_source(pc, variant)
                    glb = ent["globals"]
                    tag = "".join("1" if f else "0" for f in variant)
                    exec(  # noqa: S102
                        compile(
                            src, f"<repro-blockcache:{tag}:late>", "exec"
                        ),
                        glb,
                    )
                    fac = glb[f"_mk_{pc}"]
                    table[pc] = fac
                    ent["compiled"] += 1
        return fac

    # -- code generation --------------------------------------------------

    def _chain(self, entry: int) -> Tuple[List[BlockPlan], bool]:
        """The straight-line continuation chain starting at ``entry``.

        Follows unconditional continuations (JMP targets, conditional
        and leader-boundary fall-throughs) until the chain either leads
        back to ``entry`` — a loop the factory can close internally with
        ``continue`` instead of bouncing through the dispatch loop — or
        stops (CALL/RET/HALT, revisit, or the inlining budget).  Chains
        that do not close are discarded: inlining them would duplicate
        code without removing any dispatch round-trips.
        """
        segs = [self.plan(entry)]
        seen = {entry}
        total = len(segs[0].pcs)
        while True:
            cur = segs[-1]
            p = cur.pcs[-1]
            term = cur.terminator_op
            if term is None or term in (28, 29):
                nxt = p + 1
            elif term == 30:
                nxt = self._targets[p]
            else:
                return [segs[0]], False
            if nxt == entry:
                return segs, True
            if not 0 <= nxt < self._n or nxt in seen or len(segs) >= 8:
                return [segs[0]], False
            nplan = self.plan(nxt)
            if total + len(nplan.pcs) > 96:
                return [segs[0]], False
            segs.append(nplan)
            seen.add(nxt)
            total += len(nplan.pcs)

    def _factory_source(self, entry: int, variant: _Variant) -> str:
        """Source for one block's factory function (``_mk_<entry>``).

        The factory closes over per-run state (registers, memory, cache
        and predictor methods, tallies, profiling sinks) and returns the
        block body ``_b(cycles, executed, llr, cw, cl) -> (next_pc,
        cycles, executed, llr, cw, cl)`` — ``next_pc`` is None after
        HALT.  The body is a ``while True`` loop over the block's
        continuation chain (:meth:`_chain`): exits whose static target
        is ``entry`` compile to ``continue``, so hot loops iterate
        inside one Python frame instead of re-entering the dispatcher.
        With an LSD, each chain segment re-evaluates the covered guard
        exactly where the dispatcher would have, and is emitted twice
        (covered path with the front end waived, plus the normal path)
        unless no activation range can ever contain it.
        """
        segs, _closes = self._chain(entry)
        rset, wset = self._reg_sets(segs)
        out = [
            f"def _mk_{entry}(regs, mem, mg, ad, ai, pt, ph, cnt, lsd,"
            " bud, maxi, fcy, pcc, epc, ecc, ens, est, eck, ds, dm, l1d):",
            "    def _b(cycles, executed, llr, cw, cl):",
        ]
        # Architectural registers live in Python locals for the whole
        # frame: loaded once here, flushed back only on exits that leave
        # the frame.  Nothing else reads ``regs`` mid-run, and a raised
        # trap/budget error abandons the run state, so this is
        # observably identical to indexing ``regs`` per access.
        for i in sorted(rset):
            out.append(f"        _r{i} = regs[{i}]")
        # L1D MRU hits are counted in a frame-local and flushed with the
        # registers; misses update Cache stats immediately via the
        # hierarchy walk, so only the hit tally is deferred.
        has_mem = any(
            self._ops[p] in (24, 25, 26, 27, 31, 32)
            for plan in segs
            for p in plan.pcs
        )
        if has_mem:
            out.append("        _dh = 0")
        # The gshare global history also lives in a frame local (loaded
        # from / flushed to the one-element ``ph`` list) when the chain
        # contains conditional branches.
        has_hist = self.cfg.predictor_kind == "gshare" and any(
            self._ops[p] in (28, 29) for plan in segs for p in plan.pcs
        )
        if has_hist:
            out.append("        _h = ph[0]")
        out.append("        while True:")
        base = " " * 12
        wb = (
            tuple(f"regs[{i}] = _r{i}" for i in sorted(wset))
            + (("l1d.hits += _dh",) if has_mem else ())
            + (("ph[0] = _h",) if has_hist else ())
        )
        fold = self._const_regs(segs)
        for si, plan in enumerate(segs):
            self._emit_seam(
                out, base, plan, variant, entry, wb, fold,
                falls=si + 1 < len(segs),
            )
        out.append("    return _b")
        return "\n".join(out) + "\n"

    def _reg_sets(self, segs: List[BlockPlan]) -> Tuple[set, set]:
        """(read-or-written, written) register numbers over a chain."""
        rset: set = set()
        wset: set = set()
        for plan in segs:
            for p in plan.pcs:
                op = self._ops[p]
                rd = self._rds[p]
                ra = self._ras[p]
                rb = self._rbs[p]
                if op == 0:
                    wset.add(rd)
                elif op == 1:
                    rset.add(ra)
                    wset.add(rd)
                elif op <= 15:
                    rset.update((ra, rb))
                    wset.add(rd)
                elif op <= 23 or op == 24 or op == 26:
                    rset.add(ra)
                    wset.add(rd)
                elif op in (25, 27):
                    rset.update((ra, rb))
                elif op in (28, 29):
                    rset.add(ra)
                elif op in (31, 32):
                    rset.add(15)
                    wset.add(15)
        return rset | wset, wset

    def _const_regs(
        self, segs: List[BlockPlan]
    ) -> Tuple[Dict[int, Tuple[int, int]], Dict[int, int]]:
        """Constant-register facts for a chain, for operand folding.

        Returns ``(kconst, ordix)``: ``ordix`` maps each pc in the chain
        to its position in execution order, and ``kconst`` maps a
        register written *exactly once* in the whole chain — by a CONST
        — to ``(write position, value)``.  A use may fold the value only
        when it appears after the write in chain order: earlier uses see
        the frame-entry value on the first loop iteration, and the
        single-write condition makes the fact loop-invariant for every
        later iteration.
        """
        order = [p for plan in segs for p in plan.pcs]
        ordix = {p: k for k, p in enumerate(order)}
        writes: Dict[int, List[int]] = {}
        for p in order:
            op = self._ops[p]
            if op <= 27 and op not in (25, 27):
                writes.setdefault(self._rds[p], []).append(p)
            if op in (31, 32):
                writes.setdefault(15, []).append(p)
        kconst = {
            r: (ordix[ps[0]], self._imms[ps[0]])
            for r, ps in writes.items()
            if len(ps) == 1 and self._ops[ps[0]] == 0
        }
        return kconst, ordix

    def _emit_seam(
        self,
        out: List[str],
        base: str,
        plan: BlockPlan,
        variant: _Variant,
        entry: int,
        wb: Tuple[str, ...],
        fold: Tuple[Dict[int, Tuple[int, int]], Dict[int, int]],
        falls: bool,
    ) -> None:
        """Emit one chain segment behind its LSD coverage seam.

        Mirrors the reference front end per instruction: an active LSD
        covering the pc waives the front end; an active LSD *not*
        covering it deactivates (streak reset) before the normal path.
        """
        pcs = plan.pcs
        if not self.cfg.has_lsd:
            self._emit_body(
                out, base, pcs, variant, False, entry, wb, fold, falls
            )
            return
        if any(lo <= plan.entry <= hi for lo, hi in self._lsd_ranges):
            out.append(
                base + f"if lsd[0] and lsd[1] <= {plan.entry} <= lsd[2]:"
            )
            self._emit_body(
                out, base + "    ", pcs, variant, True, entry, wb, fold,
                falls,
            )
            out.append(base + "else:")
            out.append(base + "    if lsd[0]:")
            out.append(base + "        lsd[0] = 0")
            out.append(base + "        lsd[3] = 0")
            self._emit_body(
                out, base + "    ", pcs, variant, False, entry, wb, fold,
                falls,
            )
        else:
            out.append(base + "if lsd[0]:")
            out.append(base + "    lsd[0] = 0")
            out.append(base + "    lsd[3] = 0")
            self._emit_body(
                out, base, pcs, variant, False, entry, wb, fold, falls
            )

    def _emit_body(
        self,
        out: List[str],
        pad: str,
        pcs: Tuple[int, ...],
        variant: _Variant,
        covered: bool,
        entry: int,
        wb: Tuple[str, ...],
        fold: Tuple[Dict[int, Tuple[int, int]], Dict[int, int]],
        falls: bool,
    ) -> None:
        """Emit one segment body at indent ``pad``.

        Walks the segment once, tracking the fetch window, cache line
        and pending-load register symbolically; dynamic guards are
        emitted only while a quantity is unknown, fixed costs are
        emitted as unconditional float adds in reference order, and
        event tallies that are unconditional fold into one batched
        update per exit.  Exits come in three shapes: a static target
        equal to ``entry`` re-enters the enclosing ``while`` with
        ``continue``; the continuation exit of a non-final chain
        segment (``falls``) reconciles the state locals and falls
        through to the next segment's seam; everything else returns to
        the dispatcher.
        """
        budget, fcc, pcc_on, eprof = variant
        profiling = fcc or pcc_on
        kconst, ordix = fold
        cfg = self.cfg
        blen = len(pcs)
        A = out.append

        ISSUE = _lit(cfg.issue_cycles)
        WINC = _lit(cfg.window_cycles)
        STR = _lit(cfg.straddle_cycles)
        LU = _lit(cfg.load_use_penalty)
        MULX = _lit(cfg.mul_extra)
        DIVX = _lit(cfg.div_extra)
        MISP = _lit(cfg.mispredict_cycles)
        TAK = _lit(cfg.taken_branch_cycles)
        UNAL = _lit(cfg.unaligned_cycles)
        SPL = _lit(cfg.split_line_cycles)
        # The reference computes these sums before the single add.
        CALLSUM = _lit(cfg.taken_branch_cycles + cfg.call_extra)
        RETSUM = _lit(cfg.taken_branch_cycles + cfg.ret_extra)

        GSH = cfg.predictor_kind == "gshare"
        PMASK = (1 << cfg.predictor_table_bits) - 1
        HMASK = (1 << cfg.predictor_history_bits) - 1

        I64_MAX = 9223372036854775807
        I64_SPAN = 18446744073709551616

        def wrap_nonneg(p2: str, rd: int) -> None:
            """Store ``_r`` (known to be in [0, 2**64)) into ``rd`` with
            the exact semantics of ``_wrap64``, without the call."""
            A(
                p2 + f"_r{rd} = _r - {I64_SPAN}"
                f" if _r > {I64_MAX} else _r"
            )

        def wrap_any(p2: str, rd: int) -> None:
            """Store ``_r`` (any magnitude) into ``rd`` with the exact
            semantics of ``_wrap64``, without the call."""
            A(p2 + f"if _r > {I64_MAX} or _r < -{I64_MAX + 1}:")
            A(p2 + f"    _r &= {_M64}")
            A(p2 + f"    if _r > {I64_MAX}:")
            A(p2 + f"        _r -= {I64_SPAN}")
            A(p2 + f"_r{rd} = _r")

        statics = [0] * len(TALLY_FIELDS)
        if covered:
            statics[_T["lsd_covered"]] = blen
        ecls: Dict[int, int] = {}
        # Symbolic state: "?" = unknown (dynamic), else known constant.
        sim_cw: Any = "?"
        sim_cl: Any = "?"
        llr: Any = "llr"  # "llr" = dynamic entry value, else an int

        def lu_check(p2: str, regs_checked: List[int]) -> None:
            """Load-use penalty: dynamic guard or static fold."""
            if llr == "llr":
                cond = " or ".join(f"llr == {r}" for r in regs_checked)
                A(p2 + f"if {cond}:")
                A(p2 + f"    cycles += {LU}")
            elif llr >= 0 and llr in regs_checked:
                A(p2 + f"cycles += {LU}")

        def data_access(p2: str, base_expr: str) -> None:
            """L1D access: inline MRU probe (hit counted locally and
            flushed on frame exit), full hierarchy walk on miss.  An
            MRU hit adds 0.0 extra cycles in the reference, so skipping
            the float add is exact."""
            A(p2 + f"_ln = {base_expr} >> 6")
            A(p2 + "_w = ds[_ln & dm]")
            A(p2 + "if _w and _w[0] == _ln:")
            A(p2 + "    _dh += 1")
            A(p2 + "else:")
            A(p2 + "    cycles += ad(_ln)")

        def emit_exit(
            p2: str,
            next_expr: str,
            term_pc: int,
            term_prof: bool = True,
            cont: bool = False,
        ) -> None:
            """Per-exit epilogue: profiling delta, batched tallies,
            self-profiling updates, then return / continue / fall-through.

            ``term_prof`` is False for leader-boundary fall-through
            exits, whose last instruction already emitted its own
            profiling epilogue in the main walk.  ``cont`` marks the
            segment's continuation exit (eligible to fall through to
            the next chain segment when ``falls``)."""
            if profiling and term_prof:
                if fcc and pcc_on:
                    A(p2 + "_d = cycles - _cb")
                    A(p2 + f"fcy[{self._func_of[term_pc]!r}] += _d")
                    A(p2 + f"pcc[{term_pc}] += _d")
                elif fcc:
                    A(p2 + f"fcy[{self._func_of[term_pc]!r}] += cycles - _cb")
                else:
                    A(p2 + f"pcc[{term_pc}] += cycles - _cb")
            A(p2 + f"executed += {blen}")
            for idx, k in enumerate(statics):
                if k:
                    A(p2 + f"cnt[{idx}] += {k}")
            if eprof:
                lo, hi = pcs[0], pcs[0] + blen
                A(p2 + f"epc[{lo}:{hi}] = [_v + 1 for _v in epc[{lo}:{hi}]]")
                for ci in sorted(ecls):
                    A(p2 + f"ecc[{ci}] += {ecls[ci]}")
                A(p2 + "_now = eck()")
                A(p2 + "_dt = _now - est[0]")
                A(p2 + "est[0] = _now")
                tci = _engine._CLASS_OF[self._ops[term_pc]]
                if blen == 1:
                    A(p2 + f"ens[{tci}] += _dt")
                else:
                    A(p2 + f"_q = _dt // {blen}")
                    for ci in sorted(ecls):
                        A(p2 + f"ens[{ci}] += _q * {ecls[ci]}")
                    A(p2 + f"ens[{tci}] += _dt - _q * {blen}")
            cw_out = "cw" if (covered or sim_cw == "?") else str(sim_cw)
            cl_out = "cl" if (covered or sim_cl == "?") else str(sim_cl)
            llr_out = "-1" if llr == "llr" else str(llr)
            if (cont and falls) or next_expr == str(entry):
                # Reconcile the state locals to exactly what a return
                # would have handed the dispatcher, then stay in-frame.
                if cw_out != "cw":
                    A(p2 + f"cw = {cw_out}")
                if cl_out != "cl":
                    A(p2 + f"cl = {cl_out}")
                A(p2 + f"llr = {llr_out}")
                if cont and falls:
                    return
                # Loop back to the seam: replicate the dispatcher's
                # post-block runaway check (the budget variant already
                # checks before every instruction).
                if not budget:
                    A(p2 + "if executed > maxi:")
                    A(
                        p2 + '    raise SimulationError(f"exceeded'
                        ' {maxi} instructions (runaway loop?)")'
                    )
                A(p2 + "continue")
                return
            for line in wb:
                A(p2 + line)
            A(
                p2 + f"return {next_expr}, cycles, executed, "
                f"{llr_out}, {cw_out}, {cl_out}"
            )

        for k, p in enumerate(pcs, start=1):
            op = self._ops[p]
            rd = self._rds[p]
            ra = self._ras[p]
            rb = self._rbs[p]
            imm = self._imms[p]
            tgt = self._targets[p]
            addr = self._addrs[p]
            size = self._sizes[p]

            def KV(r: int, _oi=ordix[p]) -> Optional[int]:
                """Value of ``r`` here, when provably constant."""
                e = kconst.get(r)
                return e[1] if e is not None and e[0] < _oi else None
            ecls[_engine._CLASS_OF[op]] = (
                ecls.get(_engine._CLASS_OF[op], 0) + 1
            )

            if budget:
                # Reference order: runaway check, then budget check,
                # both before the instruction does any work.
                A(pad + "if executed + %d > maxi:" % k)
                A(
                    pad + '    raise SimulationError(f"exceeded {maxi}'
                    ' instructions (runaway loop?)")'
                )
                A(pad + "if cycles > bud:")
                A(
                    pad + '    raise RunTimeout(f"cycle budget {bud:.0f}'
                    " exceeded after {executed + %d} instructions\")" % k
                )
            if profiling:
                A(pad + "_cb = cycles")

            if not covered:
                # ---- front end (timing memo) ----
                w = addr >> self._ws
                ln = addr >> 6
                end = addr + size - 1
                wend = end >> self._ws
                lend = end >> 6
                if sim_cw == "?":
                    A(pad + f"if cw != {w}:")
                    A(pad + f"    cycles += {WINC}")
                    A(pad + f"    cnt[{_T['window_fetches']}] += 1")
                    A(pad + f"    if cl != {ln}:")
                    A(pad + f"        cycles += ai({ln})")
                    A(pad + f"        cl = {ln}")
                    sim_cw = w
                    sim_cl = "?"
                elif sim_cw != w:
                    A(pad + f"cycles += {WINC}")
                    statics[_T["window_fetches"]] += 1
                    if sim_cl == "?":
                        A(pad + f"if cl != {ln}:")
                        A(pad + f"    cycles += ai({ln})")
                        A(pad + f"    cl = {ln}")
                    elif sim_cl != ln:
                        A(pad + f"cycles += ai({ln})")
                    sim_cl = ln
                    sim_cw = w
                if wend != sim_cw:
                    A(pad + f"cycles += {STR}")
                    statics[_T["window_straddles"]] += 1
                    if sim_cl == "?":
                        A(pad + f"if cl != {lend}:")
                        A(pad + f"    cycles += ai({lend})")
                        A(pad + f"    cl = {lend}")
                    elif sim_cl != lend:
                        A(pad + f"cycles += ai({lend})")
                    sim_cl = lend
                    sim_cw = wend

            A(pad + f"cycles += {ISSUE}")

            # ---- execute ----
            if op == 0:  # CONST
                A(pad + f"_r{rd} = {imm}")
                llr = -1
            elif op == 1:  # MOV
                lu_check(pad, [ra])
                vac = KV(ra)
                A(pad + f"_r{rd} = {vac if vac is not None else f'_r{ra}'}")
                llr = -1
            elif op <= 15:  # register ALU
                lu_check(pad, [ra, rb])
                vac = KV(ra)
                vbc = KV(rb)
                va = repr(vac) if vac is not None else f"_r{ra}"
                vb = repr(vbc) if vbc is not None else f"_r{rb}"
                if op == 2:
                    A(pad + f"_r{rd} = {va} + {vb}")
                elif op == 3:
                    A(pad + f"_r{rd} = {va} - {vb}")
                elif op == 4:
                    A(pad + f"cycles += {MULX}")
                    A(pad + f"_r = {va} * {vb}")
                    wrap_any(pad, rd)
                elif op in (5, 6):
                    A(pad + f"cycles += {DIVX}")
                    A(pad + f"va = {va}")
                    A(pad + f"vb = {vb}")
                    word = "division" if op == 5 else "modulo"
                    A(pad + "if vb == 0:")
                    A(
                        pad + "    raise SimulationError("
                        f'"{word} by zero at pc={p}")'
                    )
                    A(pad + "q = abs(va) // abs(vb)")
                    if op == 5:
                        A(
                            pad + f"_r{rd} = -q if (va < 0) != (vb < 0)"
                            " else q"
                        )
                    else:
                        A(pad + "q = -q if (va < 0) != (vb < 0) else q")
                        A(pad + f"_r{rd} = va - q * vb")
                elif op == 7:
                    cc = vbc if vbc is not None else vac
                    other = va if vbc is not None else vb
                    if cc is not None and 0 <= cc & _M64 <= I64_MAX:
                        # x & c == (x & _M) & (c & _M) for 0 <= c < 2**63,
                        # and the result fits signed 64 — no wrap needed.
                        A(pad + f"_r{rd} = {other} & {cc & _M64}")
                    else:
                        A(pad + f"_r = ({va} & _M) & ({vb} & _M)")
                        wrap_nonneg(pad, rd)
                elif op == 8:
                    A(pad + f"_r = ({va} & _M) | ({vb} & _M)")
                    wrap_nonneg(pad, rd)
                elif op == 9:
                    A(pad + f"_r = ({va} & _M) ^ ({vb} & _M)")
                    wrap_nonneg(pad, rd)
                elif op == 10:
                    A(pad + f"_r = (({va} & _M) << ({vb} & 63)) & _M")
                    wrap_nonneg(pad, rd)
                elif op == 11:
                    A(pad + f"_r{rd} = ({va} & _M) >> ({vb} & 63)")
                elif op == 12:
                    A(pad + f"_r{rd} = 1 if {va} < {vb} else 0")
                elif op == 13:
                    A(pad + f"_r{rd} = 1 if {va} <= {vb} else 0")
                elif op == 14:
                    A(pad + f"_r{rd} = 1 if {va} == {vb} else 0")
                else:  # 15 SNE
                    A(pad + f"_r{rd} = 1 if {va} != {vb} else 0")
                llr = -1
            elif op <= 23:  # immediate ALU
                lu_check(pad, [ra])
                vac = KV(ra)
                va = repr(vac) if vac is not None else f"_r{ra}"
                if op == 16:
                    A(pad + f"_r{rd} = {va} + {imm}")
                elif op == 17:
                    A(pad + f"cycles += {MULX}")
                    A(pad + f"_r = {va} * {imm}")
                    wrap_any(pad, rd)
                elif op == 18:
                    if imm & _M64 <= I64_MAX:
                        A(pad + f"_r{rd} = {va} & {imm & _M64}")
                    else:
                        A(pad + f"_r = ({va} & _M) & {imm & _M64}")
                        wrap_nonneg(pad, rd)
                elif op == 19:
                    A(pad + f"_r = ({va} & _M) | {imm & _M64}")
                    wrap_nonneg(pad, rd)
                elif op == 20:
                    A(pad + f"_r = ({va} & _M) ^ {imm & _M64}")
                    wrap_nonneg(pad, rd)
                elif op == 21:
                    A(pad + f"_r = (({va} & _M) << {imm & 63}) & _M")
                    wrap_nonneg(pad, rd)
                elif op == 22:
                    A(pad + f"_r{rd} = ({va} & _M) >> {imm & 63}")
                else:  # 23 SLTI
                    A(pad + f"_r{rd} = 1 if {va} < {imm} else 0")
                llr = -1
            elif op <= 27:  # memory
                lu_check(pad, [ra])
                vac = KV(ra)
                if vac is not None:
                    A(pad + f"ea = {vac + imm}")
                elif imm:
                    A(pad + f"ea = _r{ra} + {imm}")
                else:
                    A(pad + f"ea = _r{ra}")
                if op == 24:  # LOAD
                    statics[_T["loads"]] += 1
                    A(pad + "if ea & 7:")
                    A(pad + f"    cnt[{_T['unaligned_accesses']}] += 1")
                    A(pad + f"    cycles += {UNAL}")
                    data_access(pad, "ea")
                    A(pad + "if (ea & 63) > 56:")
                    A(pad + f"    cnt[{_T['line_splits']}] += 1")
                    A(pad + f"    cycles += {SPL}")
                    A(pad + "    cycles += ad(_ln + 1)")
                    A(pad + "try:")
                    A(pad + f"    _r{rd} = mem[ea]")
                    A(pad + "except KeyError:")
                    A(pad + f"    _r{rd} = 0")
                    llr = rd
                elif op == 25:  # STORE
                    lu_check(pad, [rb])
                    statics[_T["stores"]] += 1
                    A(pad + "if ea & 7:")
                    A(pad + f"    cnt[{_T['unaligned_accesses']}] += 1")
                    A(pad + f"    cycles += {UNAL}")
                    data_access(pad, "ea")
                    A(pad + "if (ea & 63) > 56:")
                    A(pad + f"    cnt[{_T['line_splits']}] += 1")
                    A(pad + f"    cycles += {SPL}")
                    A(pad + "    cycles += ad(_ln + 1)")
                    A(pad + f"mem[ea] = _r{rb}")
                    llr = -1
                elif op == 26:  # LOADB
                    statics[_T["loads"]] += 1
                    data_access(pad, "ea")
                    A(pad + "try:")
                    A(pad + f"    _r{rd} = mem[ea] & 255")
                    A(pad + "except KeyError:")
                    A(pad + f"    _r{rd} = 0")
                    llr = rd
                else:  # STOREB
                    lu_check(pad, [rb])
                    statics[_T["stores"]] += 1
                    data_access(pad, "ea")
                    A(pad + f"mem[ea] = _r{rb} & 255")
                    llr = -1
            elif op in (28, 29):  # BEQZ / BNEZ
                lu_check(pad, [ra])
                statics[_T["branches"]] += 1
                A(pad + (f"_t = _r{ra} == 0" if op == 28 else f"_t = _r{ra} != 0"))
                # Inline predictor update — the exact ``observe()``
                # sequence from branch.py, specialized to the config's
                # kind with the index arithmetic pre-folded.  The taken
                # path always leaves the frame or re-enters the loop, so
                # code after the ``if _t:`` block is the not-taken path.
                if GSH:
                    A(pad + f"_i = ({addr >> 1} ^ _h) & {PMASK}")
                    pslot = "pt[_i]"
                else:
                    pslot = f"pt[{(addr >> 1) & PMASK}]"
                A(pad + f"_c = {pslot}")
                A(pad + "if _t:")
                p2 = pad + "    "
                A(p2 + "if _c < 3:")
                A(p2 + f"    {pslot} = _c + 1")
                if GSH:
                    A(p2 + f"_h = ((_h << 1) | 1) & {HMASK}")
                A(p2 + "if _c < 2:")
                A(p2 + f"    cnt[{_T['mispredicts']}] += 1")
                A(p2 + f"    cycles += {MISP}")
                A(p2 + f"cnt[{_T['taken_branches']}] += 1")
                A(p2 + f"cycles += {TAK}")
                llr = -1
                if cfg.has_lsd and self._lsd_eligible[p]:
                    self._emit_lsd_bookkeeping(out, p2, p, tgt, covered)
                emit_exit(p2, str(tgt), p)
                A(pad + "if _c > 0:")
                A(pad + f"    {pslot} = _c - 1")
                if GSH:
                    A(pad + f"_h = (_h << 1) & {HMASK}")
                A(pad + "if _c >= 2:")
                A(pad + f"    cnt[{_T['mispredicts']}] += 1")
                A(pad + f"    cycles += {MISP}")
                emit_exit(pad, str(p + 1), p, cont=True)
                return
            elif op == 30:  # JMP
                A(pad + f"cycles += {TAK}")
                llr = -1
                if cfg.has_lsd and self._lsd_eligible[p]:
                    self._emit_lsd_bookkeeping(out, pad, p, tgt, covered)
                emit_exit(pad, str(tgt), p, cont=True)
                return
            elif op == 31:  # CALL
                statics[_T["calls"]] += 1
                A(pad + f"cycles += {CALLSUM}")
                A(pad + "sp = _r15 - 8")
                A(pad + "_r15 = sp")
                A(pad + "if sp & 7:")
                A(pad + f"    cnt[{_T['unaligned_accesses']}] += 1")
                A(pad + f"    cycles += {UNAL}")
                data_access(pad, "sp")
                A(pad + "if (sp & 63) > 56:")
                A(pad + f"    cnt[{_T['line_splits']}] += 1")
                A(pad + f"    cycles += {SPL}")
                A(pad + "    cycles += ad(_ln + 1)")
                statics[_T["stores"]] += 1
                A(pad + f"mem[sp] = {addr + size}")
                llr = -1
                emit_exit(pad, str(tgt), p)
                return
            elif op == 32:  # RET
                statics[_T["returns"]] += 1
                A(pad + f"cycles += {RETSUM}")
                A(pad + "sp = _r15")
                A(pad + "_ra = mg(sp)")
                A(pad + "if _ra is None:")
                A(
                    pad + "    raise SimulationError(f\"return with corrupt"
                    " stack at pc=%d (sp={sp:#x})\")" % p
                )
                statics[_T["loads"]] += 1
                A(pad + "if sp & 7:")
                A(pad + f"    cnt[{_T['unaligned_accesses']}] += 1")
                A(pad + f"    cycles += {UNAL}")
                data_access(pad, "sp")
                A(pad + "if (sp & 63) > 56:")
                A(pad + f"    cnt[{_T['line_splits']}] += 1")
                A(pad + f"    cycles += {SPL}")
                A(pad + "    cycles += ad(_ln + 1)")
                A(pad + "_r15 = sp + 8")
                A(pad + "_x = a2i(_ra)")
                A(pad + "if _x is None:")
                A(
                    pad + "    raise SimulationError(f\"return to"
                    ' non-instruction address {_ra:#x}")'
                )
                llr = -1
                emit_exit(pad, "_x", p)
                return
            elif op == 33:  # NOP
                statics[_T["nops"]] += 1
                llr = -1
            else:  # HALT
                emit_exit(pad, "None", p)
                return

            # Non-terminator per-instruction profiling epilogue.
            if profiling:
                if fcc and pcc_on:
                    A(pad + "_d = cycles - _cb")
                    A(pad + f"fcy[{self._func_of[p]!r}] += _d")
                    A(pad + f"pcc[{p}] += _d")
                elif fcc:
                    A(pad + f"fcy[{self._func_of[p]!r}] += cycles - _cb")
                else:
                    A(pad + f"pcc[{p}] += cycles - _cb")

        # Block ended at a leader boundary or the end of the code image:
        # fall through to the next flat index (the driver validates it).
        emit_exit(pad, str(pcs[-1] + 1), pcs[-1], term_prof=False, cont=True)

    def _emit_lsd_bookkeeping(
        self, out: List[str], pad: str, p: int, tgt: int,
        covered: bool,
    ) -> None:
        """Loop-stream-detector streak/activation updates for an
        eligible taken backward transfer at ``p`` (both body variants:
        the op-execution side of the LSD is front-end independent).
        In a covered body ``lsd[0]`` is statically 1 (the seam guard
        passed and nothing in the body deactivates), so the activation
        attempt is elided there."""
        warm = self.cfg.lsd_warmup
        out.append(pad + f"if lsd[4] == {p}:")
        out.append(pad + "    lsd[3] += 1")
        out.append(pad + "else:")
        out.append(pad + f"    lsd[4] = {p}")
        out.append(pad + "    lsd[3] = 1")
        if not covered:
            out.append(pad + f"if lsd[3] >= {warm} and not lsd[0]:")
            out.append(pad + "    lsd[0] = 1")
            out.append(pad + f"    lsd[1] = {tgt}")
            out.append(pad + f"    lsd[2] = {p}")


#: Registry: Executable -> {MachineConfig: BlockCache}.  Keyed weakly so
#: caches die with their executables; values hold no executable refs.
_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_CACHES_LOCK = threading.Lock()


def block_cache_for(exe, cfg: MachineConfig) -> BlockCache:
    """The (lazily created) block cache for one executable + config."""
    per = _CACHES.get(exe)
    if per is None:
        with _CACHES_LOCK:
            per = _CACHES.get(exe)
            if per is None:
                per = {}
                _CACHES[exe] = per
    bc = per.get(cfg)
    if bc is None:
        with _CACHES_LOCK:
            bc = per.get(cfg)
            if bc is None:
                bc = BlockCache(exe, cfg)
                per[cfg] = bc
    return bc


def warm(exe, cfg: MachineConfig) -> int:
    """Pre-compile the plain-variant block table for ``exe`` on ``cfg``.

    Block compilation is a one-time per-(executable, config) cost that
    would otherwise land inside the first measured run.  Callers that
    build executables ahead of time (:meth:`repro.core.Experiment.build`)
    invoke this so ``engine.run_seconds`` measures simulation, not
    compilation.  Returns the number of statically compiled blocks.
    """
    return block_cache_for(exe, cfg).compiled_count(
        (False, False, False, False)
    )


def execute_fast(
    image: ProcessImage,
    machine: Machine,
    max_instructions: int = 2_000_000_000,
    profile_functions: bool = False,
    profile_pcs: bool = False,
    max_cycles: Optional[float] = None,
    engine_profile=None,
) -> RunResult:
    """Fast-path twin of :func:`repro.arch.engine.execute`.

    Same semantics, byte-identical results; the dispatch loop runs
    compiled block bodies instead of interpreting instructions.  Used
    automatically by :func:`~repro.arch.engine.execute` unless tracing
    is requested or ``REPRO_ENGINE_FASTPATH=0``.
    """
    exe = image.executable
    cfg: MachineConfig = machine.config
    cache = block_cache_for(exe, cfg)
    eprof_on = engine_profile is not None
    variant: _Variant = (
        max_cycles is not None,
        profile_functions,
        profile_pcs,
        eprof_on,
    )
    compiled_before = (
        cache._variants[variant]["compiled"]
        if variant in cache._variants
        else 0
    )
    table = cache.table(variant)

    mem: Dict[int, int] = dict(image.initial_memory)
    regs = [0] * 16
    regs[15] = image.sp_start
    hierarchy = machine.hierarchy
    cnt = [0] * len(TALLY_FIELDS)
    lsd = [0, -1, -1, 0, -1]
    bud = max_cycles if max_cycles is not None else float("inf")
    fcy: Dict[str, float] = (
        {pf.name: 0.0 for pf in exe.placed} if profile_functions else {}
    )
    pcc = [0.0] * len(exe.ops) if profile_pcs else None
    epc = ecc = ens = est = eck = None
    if eprof_on:
        engine_profile.begin(exe)
        epc = engine_profile.pc_counts
        ecc = engine_profile.class_counts
        ens = engine_profile.class_ns
        eck = time.perf_counter_ns
        est = [eck()]
    predictor = machine.predictor
    ph = [getattr(predictor, "_history", 0)]
    bind = (
        regs, mem, mem.get,
        hierarchy.access_data, hierarchy.access_instruction,
        predictor._table, ph,
        cnt, lsd, bud, max_instructions,
        fcy, pcc, epc, ecc, ens, est, eck,
        hierarchy._d_sets, hierarchy._d_mask, hierarchy.l1d,
    )

    funcs: Dict[int, Callable] = {}
    funcs_get = funcs.get
    table_get = table.get
    entries = 0
    cycles = 0.0
    executed = 0
    llr = -1
    cw = -1
    cl = -1
    n = len(exe.ops)
    pc = exe.entry
    while True:
        f = funcs_get(pc)
        if f is None:
            if pc < 0 or pc >= n:
                raise SimulationError(f"pc out of range: {pc}")
            fac = table_get(pc)
            if fac is None:
                fac = cache.factory(pc, variant)
            f = fac(*bind)
            funcs[pc] = f
        nxt, cycles, executed, llr, cw, cl = f(cycles, executed, llr, cw, cl)
        if executed > max_instructions:
            raise SimulationError(
                f"exceeded {max_instructions} instructions (runaway loop?)"
            )
        if eprof_on:
            entries += 1
        if nxt is None:
            break
        pc = nxt

    if hasattr(predictor, "_history"):
        # Flush the frame-carried gshare history back to the predictor
        # so machine state after a run matches the reference exactly.
        predictor._history = ph[0]
    if eprof_on:
        engine_profile.finish(exe)
        engine_profile.note_fastpath(
            compiled=cache.compiled_count(variant) - compiled_before,
            entries=entries,
            unique=len(funcs),
        )
    c = PerfCounters()
    c.cycles = cycles
    c.instructions = executed
    c.set_tallies(cnt)
    c.l1i_misses = hierarchy.l1i.misses
    c.l1d_misses = hierarchy.l1d.misses
    c.l2_misses = hierarchy.l2.misses if hierarchy.l2 is not None else 0
    return RunResult(
        exit_value=regs[0],
        counters=c,
        function_cycles=fcy,
        trace=(),
        pc_cycles=tuple(pcc) if pcc is not None else (),
    )
