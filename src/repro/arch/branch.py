"""Branch direction predictors.

Predictors index prediction tables with address bits, so they alias: two
branches whose addresses share low bits fight over the same 2-bit
counter.  Relinking moves branches, changing who aliases with whom — a
direct mechanism for link-order measurement bias.

Two classic designs:

- :class:`BimodalPredictor` — per-address 2-bit saturating counters.
- :class:`GSharePredictor` — counters indexed by (address XOR global
  history); captures correlated branches but aliases under history too.
"""

from __future__ import annotations


class BranchPredictor:
    """Interface: ``observe(addr, taken)`` returns True on mispredict."""

    name = "abstract"

    def observe(self, addr: int, taken: bool) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class BimodalPredictor(BranchPredictor):
    """2-bit saturating counters indexed by branch-address bits."""

    __slots__ = ("_table", "_mask")
    name = "bimodal"

    def __init__(self, table_bits: int = 12) -> None:
        if not 4 <= table_bits <= 24:
            raise ValueError("table_bits out of range")
        size = 1 << table_bits
        self._table = [2] * size  # weakly taken: typical reset state
        self._mask = size - 1

    def observe(self, addr: int, taken: bool) -> bool:
        idx = (addr >> 1) & self._mask
        counter = self._table[idx]
        predicted_taken = counter >= 2
        if taken:
            if counter < 3:
                self._table[idx] = counter + 1
        else:
            if counter > 0:
                self._table[idx] = counter - 1
        return predicted_taken != taken

    def reset(self) -> None:
        for i in range(len(self._table)):
            self._table[i] = 2


class GSharePredictor(BranchPredictor):
    """gshare: counters indexed by address XOR global branch history."""

    __slots__ = ("_table", "_mask", "_history", "_history_mask")
    name = "gshare"

    def __init__(self, table_bits: int = 14, history_bits: int = 12) -> None:
        if not 4 <= table_bits <= 24:
            raise ValueError("table_bits out of range")
        if not 1 <= history_bits <= table_bits:
            raise ValueError("history_bits out of range")
        size = 1 << table_bits
        self._table = [2] * size
        self._mask = size - 1
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def observe(self, addr: int, taken: bool) -> bool:
        idx = ((addr >> 1) ^ self._history) & self._mask
        counter = self._table[idx]
        predicted_taken = counter >= 2
        if taken:
            if counter < 3:
                self._table[idx] = counter + 1
            self._history = ((self._history << 1) | 1) & self._history_mask
        else:
            if counter > 0:
                self._table[idx] = counter - 1
            self._history = (self._history << 1) & self._history_mask
        return predicted_taken != taken

    def reset(self) -> None:
        for i in range(len(self._table)):
            self._table[i] = 2
        self._history = 0


def make_predictor(kind: str, table_bits: int, history_bits: int) -> BranchPredictor:
    """Factory used by machine presets."""
    if kind == "bimodal":
        return BimodalPredictor(table_bits)
    if kind == "gshare":
        return GSharePredictor(table_bits, history_bits)
    raise ValueError(f"unknown predictor kind {kind!r}")
