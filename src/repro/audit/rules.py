"""The benchmarking-crime rule set behind ``repro audit``.

Each rule recognizes one of the statistical crimes van der Kouwe et
al. (2018) catalogue and the source paper demonstrates, and emits a
:class:`Finding` with a stable machine-readable code:

======================  ====================================================
code                    crime
======================  ====================================================
``single-setup``        a conclusion drawn from one experimental setup —
                        the exact mistake the source paper measures
``pseudoreplication``   repeated measurements under a shared setup counted
                        as independent observations
``weak-ci``             a conclusion with no confidence interval, or with
                        only a normal-theory interval on a visibly skewed
                        sample
``selective-reporting`` claims built from fewer observations than the
                        document says were measured
``ratio-aggregation``   speedup ratios aggregated with an arithmetic mean
                        (or an aggregate *labeled* geometric that is
                        arithmetic when recomputed)
======================  ====================================================

The auditor's stance is *recompute, don't trust*: wherever the document
carries the raw speedup sample, derived quantities (skewness, the
aggregate) are recomputed from it and compared against what the
document claims.  Codes are part of the CLI contract — CI greps for
them — so they never change spelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.stats import geometric_mean, skewness

#: |skewness| past which a normal-theory interval alone cannot carry a
#: conclusion.  Mirrors :data:`repro.stats.speedup.SKEW_THRESHOLD` (kept
#: numerically equal; imported lazily in checks to avoid a hard layer
#: dependency at import time).
SKEW_THRESHOLD = 1.0

#: Relative tolerance when recomputing aggregates from raw samples.
AGGREGATE_RTOL = 1e-6

#: Every stable finding code, in report order.
CRIME_CODES = (
    "single-setup",
    "pseudoreplication",
    "weak-ci",
    "selective-reporting",
    "ratio-aggregation",
)


@dataclass(frozen=True)
class Finding:
    """One flagged crime: stable code, severity, evidence, remedy."""

    code: str
    severity: str  # "high" | "medium"
    message: str
    advice: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "advice": self.advice,
        }

    def summary_line(self) -> str:
        return f"[{self.severity.upper():6s}] {self.code}: {self.message}"


@dataclass
class AuditResult:
    """Outcome of auditing one document.

    ``findings`` are crimes; ``notes`` are informational context (what
    was audited, what could not be checked).  ``clean`` means no
    findings — the exit-0 condition for the CLI.
    """

    source: str
    kind: str  # "manifest" | "archive" | "report"
    findings: List[Finding] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def codes(self) -> List[str]:
        """Stable codes of all findings, in emission order."""
        return [f.code for f in self.findings]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "kind": self.kind,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "notes": list(self.notes),
        }

    def summary_lines(self) -> List[str]:
        lines = [f"audit: {self.source} ({self.kind})"]
        lines += [f"  {note}" for note in self.notes]
        if self.clean:
            lines.append("  clean: no benchmarking crimes detected")
        else:
            lines += [
                "  " + f.summary_line() + f"\n    fix: {f.advice}"
                for f in self.findings
            ]
        return lines


def _stats_sample(stats: Dict[str, Any]) -> List[float]:
    """The raw speedup sample a stats section must carry."""
    speedups = stats.get("speedups")
    return [float(s) for s in speedups] if isinstance(speedups, list) else []


def _has_conclusion(stats: Dict[str, Any]) -> bool:
    """Does the stats section state a verdict (a claim to audit)?"""
    verdict = stats.get("verdict")
    return isinstance(verdict, dict) and bool(verdict)


def check_single_setup(
    stats: Dict[str, Any], findings: List[Finding]
) -> None:
    """``single-setup``: a verdict resting on one experimental setup."""
    if not _has_conclusion(stats):
        return
    distinct = stats.get("distinct_setups")
    if distinct is None:
        return
    if int(distinct) <= 1:
        findings.append(
            Finding(
                code="single-setup",
                severity="high",
                message=(
                    "a verdict is claimed from a single experimental "
                    f"setup (distinct_setups={distinct}); the source "
                    "paper shows one setup can bias conclusions by more "
                    "than the effect being measured"
                ),
                advice=(
                    "randomize the setup (repro randomized) and report "
                    "an interval over many sampled setups"
                ),
            )
        )


def check_pseudoreplication(
    stats: Dict[str, Any], findings: List[Finding]
) -> None:
    """``pseudoreplication``: sample size inflated by shared setups."""
    sample = _stats_sample(stats)
    n = int(stats.get("n", len(sample)) or len(sample))
    distinct = stats.get("distinct_setups")
    if distinct is None or n <= 1:
        return
    distinct = int(distinct)
    if 1 <= distinct < n:
        findings.append(
            Finding(
                code="pseudoreplication",
                severity="high",
                message=(
                    f"{n} observations but only {distinct} distinct "
                    "setups: repeated measurements under a shared setup "
                    "are not independent samples, so every interval and "
                    "p-value computed from them is too narrow"
                ),
                advice=(
                    "aggregate replicates per setup first, or sample "
                    "one measurement per randomized setup"
                ),
            )
        )


def check_weak_ci(stats: Dict[str, Any], findings: List[Finding]) -> None:
    """``weak-ci``: no interval behind a verdict, or a normal-only
    interval on a sample whose recomputed skewness disqualifies it."""
    if not _has_conclusion(stats):
        return
    intervals = stats.get("intervals") or []
    methods = {
        str(iv.get("method", "")).lower()
        for iv in intervals
        if isinstance(iv, dict)
    }
    if not methods:
        findings.append(
            Finding(
                code="weak-ci",
                severity="medium",
                message=(
                    "a verdict is claimed with no confidence interval "
                    "at all — a point estimate cannot distinguish an "
                    "effect from setup noise"
                ),
                advice=(
                    "report a confidence interval (t for symmetric "
                    "samples, BCa bootstrap otherwise) with the verdict"
                ),
            )
        )
        return
    normal_only = methods <= {"t", "normal"}
    if not normal_only:
        return
    sample = _stats_sample(stats)
    if len(sample) < 3:
        return
    skew = skewness(sample)
    if abs(skew) > SKEW_THRESHOLD:
        findings.append(
            Finding(
                code="weak-ci",
                severity="medium",
                message=(
                    "only normal-theory (t) intervals are reported, but "
                    f"the raw sample's skewness is {skew:+.2f} "
                    f"(|threshold| {SKEW_THRESHOLD:g}): the t interval's "
                    "symmetry assumption does not hold"
                ),
                advice=(
                    "add a BCa bootstrap interval "
                    "(repro.stats.bca_confidence_interval) and let it "
                    "carry the conclusion"
                ),
            )
        )


def check_selective_reporting(
    stats: Optional[Dict[str, Any]],
    report: Optional[Dict[str, Any]],
    n_setups: Optional[int],
    findings: List[Finding],
) -> None:
    """``selective-reporting``: fewer observations behind the claim
    than the document says were measured."""
    if stats is not None and _has_conclusion(stats) and n_setups:
        sample = _stats_sample(stats)
        n = int(stats.get("n", len(sample)) or len(sample))
        # A paired protocol measures 2 setups (base + treatment) per
        # speedup observation; an unpaired record is 1:1.  Either way,
        # claiming from fewer pairs than the document records is the
        # crime — test the generous (paired) reading so unpaired
        # documents don't false-positive.
        if 0 < 2 * n < n_setups:
            findings.append(
                Finding(
                    code="selective-reporting",
                    severity="high",
                    message=(
                        f"the verdict is built from {n} observations "
                        f"but the document records {n_setups} measured "
                        "setups — a subset of the data was selected "
                        "for the conclusion"
                    ),
                    advice=(
                        "include every measured setup in the analysis, "
                        "or document and justify each exclusion"
                    ),
                )
            )
            return
    if (
        stats is not None
        and _has_conclusion(stats)
        and isinstance(report, dict)
    ):
        requested = report.get("requested", 0)
        covered = report.get("measured", 0) + report.get("resumed", 0)
        if isinstance(requested, int) and covered < requested:
            findings.append(
                Finding(
                    code="selective-reporting",
                    severity="high",
                    message=(
                        f"the sweep covered {covered} of {requested} "
                        "requested setups (the rest quarantined) yet a "
                        "verdict is claimed without acknowledging the "
                        "missing measurements"
                    ),
                    advice=(
                        "re-measure the quarantined setups or state the "
                        "coverage gap next to the conclusion"
                    ),
                )
            )


def check_ratio_aggregation(
    stats: Dict[str, Any], findings: List[Finding]
) -> None:
    """``ratio-aggregation``: arithmetic-mean aggregation of ratios,
    declared or detected by recomputation."""
    aggregate = stats.get("aggregate")
    if not isinstance(aggregate, dict):
        return
    method = str(aggregate.get("method", "")).lower()
    value = aggregate.get("value")
    sample = _stats_sample(stats)
    if method in ("arithmetic-mean", "mean", "average"):
        findings.append(
            Finding(
                code="ratio-aggregation",
                severity="medium",
                message=(
                    f"speedup ratios are aggregated with an "
                    f"{method.replace('-', ' ')}: the arithmetic mean "
                    "of ratios overweights large speedups and depends "
                    "on the choice of baseline"
                ),
                advice=(
                    "aggregate ratios with the geometric mean "
                    "(repro.core.stats.geometric_mean)"
                ),
            )
        )
        return
    if (
        method == "geometric-mean"
        and isinstance(value, (int, float))
        and len(sample) >= 2
        and all(s > 0 for s in sample)
    ):
        gmean = geometric_mean(sample)
        amean = sum(sample) / len(sample)
        tol = AGGREGATE_RTOL * max(abs(gmean), abs(amean), 1e-12)
        if abs(value - gmean) > tol and abs(value - amean) <= tol:
            findings.append(
                Finding(
                    code="ratio-aggregation",
                    severity="medium",
                    message=(
                        f"the aggregate is labeled geometric-mean but "
                        f"its value {value:.6f} is the arithmetic mean "
                        f"of the raw speedups (geometric mean: "
                        f"{gmean:.6f}) — the label misrepresents the "
                        "computation"
                    ),
                    advice=(
                        "recompute the aggregate with "
                        "repro.core.stats.geometric_mean"
                    ),
                )
            )


def run_stats_checks(
    stats: Optional[Dict[str, Any]],
    report: Optional[Dict[str, Any]] = None,
    n_setups: Optional[int] = None,
) -> List[Finding]:
    """Run every crime rule over one stats section (possibly absent)
    and its surrounding document context.  Returns findings in stable
    :data:`CRIME_CODES` order."""
    findings: List[Finding] = []
    if isinstance(stats, dict):
        check_single_setup(stats, findings)
        check_pseudoreplication(stats, findings)
        check_weak_ci(stats, findings)
    check_selective_reporting(stats, report, n_setups, findings)
    if isinstance(stats, dict):
        check_ratio_aggregation(stats, findings)
    order = {code: i for i, code in enumerate(CRIME_CODES)}
    findings.sort(key=lambda f: order.get(f.code, len(order)))
    return findings


def duplicate_setup_count(setups: Sequence[Dict[str, Any]]) -> int:
    """How many setup entries in a manifest/archive repeat an earlier
    one (identity ignores the human-facing ``describe`` string)."""
    import json as _json

    seen = set()
    dupes = 0
    for entry in setups:
        payload = {k: v for k, v in entry.items() if k != "describe"}
        key = _json.dumps(payload, sort_keys=True, default=str)
        if key in seen:
            dupes += 1
        else:
            seen.add(key)
    return dupes
