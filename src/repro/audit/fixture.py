"""Deterministic crime fixture for exercising ``repro audit``.

:func:`crime_manifest` builds a provenance manifest whose ``stats``
section commits every crime in the taxonomy at once — a verdict from
one setup, a pseudoreplicated sample, a t-only interval on a skewed
sample, fewer observations than recorded setups, and an
arithmetic-mean aggregate of ratios.  The CI ``audit-smoke`` job and
the unit suite both run the auditor over it and require every stable
code to surface::

    python -m repro.audit.fixture crimes.json
    python -m repro cli audit crimes.json   # exits nonzero, names all 5

The fixture is pure construction — no measurement, no randomness — so
it is byte-stable across runs (modulo the manifest's wall-clock
timestamp, which audits ignore).
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List

from repro.core.setup import ExperimentalSetup
from repro.obs.manifest import build_manifest

#: The skewed speedup sample behind the fixture's bogus claims: eight
#: "observations" re-measured under one shared setup, with one large
#: outlier so the skewness check has something real to recompute.
CRIME_SPEEDUPS = (1.01, 1.02, 1.02, 1.03, 1.01, 1.02, 1.04, 2.50)

#: How many setups the fixture *records* as measured — more than twice
#: the claimed sample, so the selective-reporting rule fires.
RECORDED_SETUPS = 20


def crime_stats() -> Dict[str, Any]:
    """A ``stats`` section committing all five crimes at once."""
    speedups = list(CRIME_SPEEDUPS)
    amean = sum(speedups) / len(speedups)
    return {
        "n": len(speedups),
        # One shared setup behind eight "observations": single-setup
        # and pseudoreplication in one stroke.
        "distinct_setups": 1,
        "level": 0.95,
        "speedups": speedups,
        # t-only interval on a sample whose outlier skews it hard.
        "intervals": [
            {
                "method": "t",
                "lo": amean - 0.4,
                "hi": amean + 0.4,
                "mean": amean,
                "level": 0.95,
            }
        ],
        # Ratios aggregated with the arithmetic mean, by name.
        "aggregate": {"method": "arithmetic-mean", "value": amean},
        # A confident conclusion resting on all of the above.
        "verdict": {"significant": True, "direction": "speedup"},
    }


def crime_manifest() -> Dict[str, Any]:
    """A full provenance manifest seeded with every crime class.

    Records :data:`RECORDED_SETUPS` distinct measured setups next to a
    stats section claiming only eight observations — so the document is
    internally inconsistent in exactly the ways the auditor exists to
    catch.
    """
    setups: List[ExperimentalSetup] = [
        ExperimentalSetup(env_bytes=100 + 64 * i)
        for i in range(RECORDED_SETUPS)
    ]
    return build_manifest(
        setups=setups,
        stats=crime_stats(),
        note=(
            "audit crime fixture: every finding code should fire "
            "(see repro.audit.fixture)"
        ),
    )


def write_fixture(path: str) -> None:
    """Write the crime manifest to ``path`` as JSON."""
    from repro.obs.manifest import save_manifest

    save_manifest(path, crime_manifest())


def main(argv: List[str]) -> int:
    """``python -m repro.audit.fixture OUT.json`` — write the fixture."""
    if len(argv) != 1:
        print("usage: python -m repro.audit.fixture OUT.json", file=sys.stderr)
        return 2
    write_fixture(argv[0])
    print(f"wrote crime fixture manifest to {argv[0]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
