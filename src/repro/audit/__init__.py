"""repro.audit — the benchmarking-crime auditor behind ``repro audit``.

Give :func:`audit_file` any JSON document the suite produces — a
provenance manifest, a measurement archive (v1 or v2, with or without
an embedded manifest), or a bare sweep report — and it returns an
:class:`AuditResult` naming every statistical crime the document
commits, each with a stable machine-readable code (see
:data:`repro.audit.rules.CRIME_CODES` and docs/statistics.md).

The deep-audit target is the manifest ``stats`` section: it carries the
raw speedup sample next to every derived claim, so the auditor
recomputes skewness and aggregates instead of trusting the recorded
numbers.  Archives delegate to their embedded manifest and add
archive-level evidence (duplicate setups); bare sweep reports carry no
statistical claims and audit clean with a note saying so.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro._errors import ArchiveCorruption
from repro.audit.rules import (
    CRIME_CODES,
    AuditResult,
    Finding,
    duplicate_setup_count,
    run_stats_checks,
)
from repro.obs.manifest import MANIFEST_FORMAT

__all__ = [
    "AuditResult",
    "CRIME_CODES",
    "Finding",
    "audit_document",
    "audit_file",
    "audit_manifest",
]

_ARCHIVE_FORMATS = ("repro-measurements-v1", "repro-measurements-v2")


def audit_manifest(
    manifest: Dict[str, Any], source: str = "<manifest>"
) -> AuditResult:
    """Audit one provenance manifest dict.

    Runs the full crime rule set over its ``stats`` section (when
    present) against the setups and sweep report the same document
    records.  A manifest without a stats section cannot commit an
    inference crime and audits clean with a note.
    """
    result = AuditResult(source=source, kind="manifest")
    stats = manifest.get("stats")
    setups = manifest.get("setups") or []
    report = manifest.get("report")
    if stats is None:
        result.notes.append(
            "no stats section: the manifest records no statistical "
            "claims to audit"
        )
    else:
        n = stats.get("n", len(stats.get("speedups") or []))
        result.notes.append(
            f"stats section: {n} observations over "
            f"{stats.get('distinct_setups', '?')} distinct setups, "
            f"{len(stats.get('intervals') or [])} interval(s)"
        )
    result.findings = run_stats_checks(
        stats, report=report, n_setups=len(setups) or None
    )
    return result


def _audit_archive_payload(
    payload: Dict[str, Any], source: str
) -> AuditResult:
    """Audit a measurement-archive payload (already JSON-decoded)."""
    records = payload.get("measurements") or []
    manifest = payload.get("manifest")
    if isinstance(manifest, dict):
        result = audit_manifest(manifest, source=source)
        result.kind = "archive"
        result.notes.insert(
            0,
            f"{len(records)} archived measurement(s) with an embedded "
            "provenance manifest",
        )
    else:
        result = AuditResult(source=source, kind="archive")
        result.notes.append(
            f"{len(records)} archived measurement(s), no embedded "
            "manifest: no statistical claims to audit"
        )
    setups = []
    for rec in records:
        body = rec.get("measurement", rec) if isinstance(rec, dict) else {}
        setup = body.get("setup") if isinstance(body, dict) else None
        if isinstance(setup, dict):
            setups.append(setup)
    dupes = duplicate_setup_count(setups)
    if dupes:
        result.notes.append(
            f"{dupes} of {len(setups)} archived setups duplicate an "
            "earlier one — legitimate for noise studies, "
            "pseudoreplication if counted as independent samples"
        )
    return result


def _audit_report(report: Dict[str, Any], source: str) -> AuditResult:
    """Audit a bare sweep-report JSON document."""
    result = AuditResult(source=source, kind="report")
    covered = report.get("measured", 0) + report.get("resumed", 0)
    result.notes.append(
        f"sweep report: {covered}/{report.get('requested', 0)} setups "
        "covered; a bare report carries no statistical claims to audit"
    )
    if report.get("quarantined"):
        result.notes.append(
            f"{len(report['quarantined'])} setup(s) quarantined — any "
            "conclusion drawn from this sweep must acknowledge them"
        )
    return result


def audit_document(data: Any, source: str = "<document>") -> AuditResult:
    """Dispatch on document shape: manifest, archive, or sweep report.

    Raises :class:`~repro.core.errors.ArchiveCorruption` for documents
    that are none of the three (the caller's path lands in the error).
    """
    if not isinstance(data, dict):
        raise ArchiveCorruption(
            "auditable documents are JSON objects, got "
            f"{type(data).__name__}",
            path=source,
        )
    fmt = data.get("format")
    if fmt == MANIFEST_FORMAT:
        return audit_manifest(data, source=source)
    if fmt in _ARCHIVE_FORMATS:
        return _audit_archive_payload(data, source=source)
    if "requested" in data and "statuses" in data:
        return _audit_report(data, source=source)
    raise ArchiveCorruption(
        "not an auditable document: expected a provenance manifest, a "
        "measurement archive, or a sweep report "
        f"(format={fmt!r})",
        path=source,
    )


def audit_file(path: str) -> AuditResult:
    """Load a JSON document from ``path`` and audit it.

    Raises :class:`~repro.core.errors.ArchiveCorruption` on unreadable
    JSON or an unrecognized document shape.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ArchiveCorruption(
            f"cannot read document: {exc}", path=path
        ) from exc
    except json.JSONDecodeError as exc:
        raise ArchiveCorruption(
            f"document is not valid JSON: {exc}", path=path
        ) from exc
    return audit_document(data, source=path)
