"""Deterministic, seed-driven fault injection for the measurement substrate.

The lab that studies wrong data must not *produce* wrong data when a
worker dies: the sweep runner's recovery paths (retry, backoff,
quarantine, resume) have to be testable, which means faults have to be
reproducible.  A :class:`FaultPlan` is a pure function of its seed and
the measurement's identity — the same plan injects the same faults at
the same setups on every run, in every process, in any execution order.

Fault kinds (each mapped to a real failure path in the substrate, not a
synthetic exception thrown from the outside):

- ``"build"`` — the compiler crashes (an injected internal compiler
  error raised from :meth:`Experiment.build`),
- ``"hang"`` — the engine hangs: the run's cycle budget is forced to a
  tiny value so the engine's own watchdog trips with
  :class:`~repro._errors.RunTimeout`,
- ``"counters"`` — the run's performance counters come back corrupted
  (negated cycles), which the harness's post-run sanity check detects,
- ``"verify"`` — the run's exit value is flipped, tripping the
  self-checking verification against the Python reference.

Faults are *transient* or *permanent*: a transient fault clears after a
plan-chosen number of attempts (exercising the retry path), a permanent
one fires on every attempt (exercising quarantine).

Usage::

    plan = FaultPlan(seed=7, hang_rate=0.2, verify_rate=0.1)
    with injected_faults(plan):
        runner.run(setups)          # recovery paths now under test

The module keeps the active plan and the current (key, attempt) context
in module globals; worker processes install the plan via the pool
initializer so injection is identical in serial and parallel sweeps.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

#: Every fault kind a plan can inject.
KINDS = ("build", "hang", "counters", "verify")

#: Cycle budget forced onto a run when a "hang" fault fires — far below
#: any real workload, so the engine's watchdog is guaranteed to trip.
HANG_CYCLE_BUDGET = 512.0


def _uniform(seed: int, tag: str, key: str) -> float:
    """Deterministic uniform draw in [0, 1) from (seed, tag, key).

    Uses SHA-256 rather than ``hash()`` so the draw is stable across
    processes and interpreter runs (``PYTHONHASHSEED`` does not matter).
    """
    digest = hashlib.sha256(f"{seed}|{tag}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def fault_key(workload: str, size: str, seed: int, setup) -> str:
    """Stable identity of one measurement for fault draws.

    Includes the loader/linker alignment fields that
    ``setup.describe()`` omits, so setups differing only in those draw
    independently.
    """
    return (
        f"{workload}/{size}/{seed}@{setup.describe()}"
        f"|sa{setup.stack_align}|fa{setup.function_alignment}"
    )


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of injected faults.

    Attributes:
        seed: the plan's identity; two plans with equal fields inject
            identically.
        build_rate / hang_rate / counter_rate / verify_rate: per-kind
            probability that a given measurement is faulted.
        transient_fraction: of injected faults, the fraction that clear
            after a bounded number of attempts (the rest are permanent
            and can only be quarantined).
        max_transient_attempts: a transient fault clears after between 1
            and this many failed attempts.
    """

    seed: int = 0
    build_rate: float = 0.0
    hang_rate: float = 0.0
    counter_rate: float = 0.0
    verify_rate: float = 0.0
    transient_fraction: float = 1.0
    max_transient_attempts: int = 2

    def _rate(self, kind: str) -> float:
        return {
            "build": self.build_rate,
            "hang": self.hang_rate,
            "counters": self.counter_rate,
            "verify": self.verify_rate,
        }[kind]

    def fires(self, kind: str, key: str, attempt: int) -> bool:
        """Does fault ``kind`` fire for measurement ``key`` on this
        (1-based) attempt?  Pure function — safe across processes."""
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        rate = self._rate(kind)
        if rate <= 0.0 or _uniform(self.seed, f"fire:{kind}", key) >= rate:
            return False
        if _uniform(self.seed, f"perm:{kind}", key) >= self.transient_fraction:
            return True  # permanent: fires on every attempt
        clears_after = 1 + int(
            _uniform(self.seed, f"clears:{kind}", key)
            * self.max_transient_attempts
        )
        return attempt <= clears_after

    def describe(self) -> str:
        rates = ", ".join(
            f"{k}={self._rate(k):g}" for k in KINDS if self._rate(k) > 0
        )
        return f"FaultPlan(seed={self.seed}, {rates or 'no faults'})"


# -- active-plan plumbing ---------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ATTEMPTS: Dict[str, int] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Make ``plan`` the process's active fault plan (None clears)."""
    global _ACTIVE
    _ACTIVE = plan
    _ATTEMPTS.clear()


def clear() -> None:
    install(None)


def active() -> Optional[FaultPlan]:
    return _ACTIVE


def begin_attempt(key: str, attempt: int) -> None:
    """Record that measurement ``key`` is on its ``attempt``-th try.

    Called by the sweep runner (or its workers) before measuring; the
    substrate hooks read it back via :func:`should_inject` so transient
    faults can clear on retry.
    """
    _ATTEMPTS[key] = attempt


def current_attempt(key: str) -> int:
    return _ATTEMPTS.get(key, 1)


def should_inject(kind: str, key: str) -> bool:
    """The substrate-side hook: does the active plan fault this run?"""
    plan = _ACTIVE
    if plan is None:
        return False
    return plan.fires(kind, key, _ATTEMPTS.get(key, 1))


@contextmanager
def injected_faults(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Scoped :func:`install` — restores the previous plan on exit."""
    previous = _ACTIVE
    install(plan)
    try:
        yield
    finally:
        install(previous)
