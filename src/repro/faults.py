"""Deterministic, seed-driven fault injection for the measurement substrate.

The lab that studies wrong data must not *produce* wrong data when a
worker dies: the sweep runner's recovery paths (retry, backoff,
quarantine, resume) have to be testable, which means faults have to be
reproducible.  A :class:`FaultPlan` is a pure function of its seed and
the measurement's identity — the same plan injects the same faults at
the same setups on every run, in every process, in any execution order.

Fault kinds (each mapped to a real failure path in the substrate, not a
synthetic exception thrown from the outside):

- ``"build"`` — the compiler crashes (an injected internal compiler
  error raised from :meth:`Experiment.build`),
- ``"hang"`` — the engine hangs: the run's cycle budget is forced to a
  tiny value so the engine's own watchdog trips with
  :class:`~repro._errors.RunTimeout`,
- ``"counters"`` — the run's performance counters come back corrupted
  (negated cycles), which the harness's post-run sanity check detects,
- ``"verify"`` — the run's exit value is flipped, tripping the
  self-checking verification against the Python reference.

Process-level chaos kinds (:data:`PROCESS_KINDS`) target the sweep
*infrastructure* instead of a measurement, so the supervised worker
pool's failure paths (:mod:`repro.core.supervisor`) are just as
testable:

- ``"worker_crash"`` — the worker process dies without warning
  (``os._exit``, as a segfault or OOM kill would),
- ``"worker_hang"`` — the worker process wedges: its heartbeat stops
  and it never returns a result, so only the supervisor's
  missed-heartbeat deadline can recover the sweep,
- ``"journal_torn_write"`` — the process dies mid-journal-append,
  leaving a truncated record for resume-time recovery to drop
  (:exc:`TornWrite` simulates the death).

Network chaos kinds (:data:`NETWORK_KINDS`) target the distributed
sweep layer (:mod:`repro.core.distributed`), so the coordinator's
failover and reconnect paths are testable on a loopback socket:

- ``"agent_crash"`` — a remote agent process dies on task receipt
  (listener and all: the coordinator's reconnects are refused),
- ``"net_partition"`` — the coordinator's connection to an agent drops
  at dispatch time; the agent itself stays up, so a reconnect heals it,
- ``"message_corrupt"`` — a task frame is corrupted in flight; the
  agent's checksum validation rejects it and drops the connection,
  which the coordinator recovers from exactly like a partition.

Storage chaos kinds (:data:`STORAGE_KINDS`) target the third failure
domain — the coordinator's own durable artifacts — via the fault-aware
I/O shim (:mod:`repro.storageio`) threaded through the journal writer,
the archive writer, and the disk store backend:

- ``"journal_fsync_stall"`` — an fsync takes
  :attr:`FaultPlan.fsync_stall_seconds` instead of returning promptly
  (slow disk, contended NFS); pure latency, never data loss,
- ``"disk_full"`` — a durable write fails with a deterministic
  ``ENOSPC`` before any bytes land; the journal degrades to a typed
  in-memory fallback and the store disables further writes for the
  sweep instead of failing the measurement,
- ``"store_bitflip"`` — a store entry is corrupted *after* a
  successful put (media rot); the entry's checksum catches it on the
  next read and the store serves a miss,
- ``"journal_torn_tail"`` — a journal append writes a truncated line
  and skips its fsync (power cut after the page-cache write); the
  record is silently lost until resume-time recovery drops the torn
  tail.

Service chaos kinds (:data:`SERVICE_KINDS`) target the long-lived sweep
service (:mod:`repro.core.service`), so the coordinator's lease and
recovery machinery is testable on loopback:

- ``"lease_expire"`` — a granted lease is forced to expire immediately
  even though the agent is healthy; the setup requeues at the same
  attempt and any late duplicate result is deduplicated,
- ``"client_disconnect"`` — an HTTP client's connection drops after the
  service accepts a submission but before the response is written; the
  client retries and the durable queue dedups by study identity,
- ``"coordinator_crash"`` — the coordinator process SIGKILLs itself
  right after a WAL append lands; restart-time replay must resume the
  study with byte-identical results.

For process and network kinds the "attempt" dimension of a draw is the
*dispatch* (or recovery) count, not the measurement's retry attempt — a
worker crash, agent loss, or partition is an infrastructure fault and
must not consume the measurement's retry budget.  Storage kinds draw on
the artifact's own identity (the record's fault key, the store key, the
archive path) so the schedule is independent of completion order.

Faults are *transient* or *permanent*: a transient fault clears after a
plan-chosen number of attempts (exercising the retry path), a permanent
one fires on every attempt (exercising quarantine — or, for process
kinds, the respawn budget and degraded mode).

Usage::

    plan = FaultPlan(seed=7, hang_rate=0.2, verify_rate=0.1)
    with injected_faults(plan):
        runner.run(setups)          # recovery paths now under test

The module keeps the active plan and the current (key, attempt) context
in module globals; worker processes install the plan via the pool
initializer so injection is identical in serial and parallel sweeps.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Dict, Iterator, Optional

#: Fault kinds injected into one measurement's substrate path.
MEASUREMENT_KINDS = ("build", "hang", "counters", "verify")

#: Process-level chaos kinds targeting the sweep infrastructure.
PROCESS_KINDS = ("worker_crash", "worker_hang", "journal_torn_write")

#: Network-level chaos kinds targeting the distributed sweep layer.
NETWORK_KINDS = ("agent_crash", "net_partition", "message_corrupt")

#: Storage chaos kinds targeting the coordinator's durable artifacts.
STORAGE_KINDS = (
    "journal_fsync_stall",
    "disk_full",
    "store_bitflip",
    "journal_torn_tail",
)

#: Service chaos kinds targeting the long-lived sweep service.
SERVICE_KINDS = ("lease_expire", "client_disconnect", "coordinator_crash")

#: Every fault kind a plan can inject.
KINDS = (
    MEASUREMENT_KINDS
    + PROCESS_KINDS
    + NETWORK_KINDS
    + STORAGE_KINDS
    + SERVICE_KINDS
)

#: Cycle budget forced onto a run when a "hang" fault fires — far below
#: any real workload, so the engine's watchdog is guaranteed to trip.
HANG_CYCLE_BUDGET = 512.0


class TornWrite(BaseException):
    """An injected ``journal_torn_write`` fault: the process "died"
    mid-append, leaving a truncated record on disk.

    Derives from :class:`BaseException` on purpose — a real crash is not
    catchable by the runner's per-measurement ``except Exception``
    recovery, and neither is this; it unwinds the whole sweep exactly
    like a kill would, and resume-time recovery does the rest.
    """


def _uniform(seed: int, tag: str, key: str) -> float:
    """Deterministic uniform draw in [0, 1) from (seed, tag, key).

    Uses SHA-256 rather than ``hash()`` so the draw is stable across
    processes and interpreter runs (``PYTHONHASHSEED`` does not matter).
    """
    digest = hashlib.sha256(f"{seed}|{tag}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def fault_key(workload: str, size: str, seed: int, setup) -> str:
    """Stable identity of one measurement for fault draws.

    Includes the loader/linker alignment fields that
    ``setup.describe()`` omits, so setups differing only in those draw
    independently.
    """
    return (
        f"{workload}/{size}/{seed}@{setup.describe()}"
        f"|sa{setup.stack_align}|fa{setup.function_alignment}"
    )


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of injected faults.

    Attributes:
        seed: the plan's identity; two plans with equal fields inject
            identically.
        build_rate / hang_rate / counter_rate / verify_rate: per-kind
            probability that a given measurement is faulted.
        worker_crash_rate / worker_hang_rate / torn_write_rate: per-kind
            probability that a given measurement's *infrastructure* is
            faulted (the worker process dies, wedges, or tears a journal
            write).
        agent_crash_rate / net_partition_rate / message_corrupt_rate:
            per-kind probability that a given measurement's *network
            path* is faulted (the remote agent dies on receipt, the
            connection partitions at dispatch, or the task frame is
            corrupted in flight).
        fsync_stall_rate / disk_full_rate / store_bitflip_rate /
            torn_tail_rate: per-kind probability that a durable write
            (journal record, archive, store entry) is faulted — the
            fsync stalls, the write fails with ENOSPC, the entry rots
            after the put, or the journal tail tears unsynced.
        lease_expire_rate / client_disconnect_rate /
            coordinator_crash_rate: per-kind probability that the sweep
            *service* is faulted (a healthy lease is forced to expire, a
            client connection drops mid-submit, or the coordinator
            SIGKILLs itself after a WAL append).
        fsync_stall_seconds: injected latency of one stalled fsync.
        transient_fraction: of injected faults, the fraction that clear
            after a bounded number of attempts (the rest are permanent
            and can only be quarantined).
        max_transient_attempts: a transient fault clears after between 1
            and this many failed attempts.
    """

    seed: int = 0
    build_rate: float = 0.0
    hang_rate: float = 0.0
    counter_rate: float = 0.0
    verify_rate: float = 0.0
    worker_crash_rate: float = 0.0
    worker_hang_rate: float = 0.0
    torn_write_rate: float = 0.0
    agent_crash_rate: float = 0.0
    net_partition_rate: float = 0.0
    message_corrupt_rate: float = 0.0
    fsync_stall_rate: float = 0.0
    disk_full_rate: float = 0.0
    store_bitflip_rate: float = 0.0
    torn_tail_rate: float = 0.0
    lease_expire_rate: float = 0.0
    client_disconnect_rate: float = 0.0
    coordinator_crash_rate: float = 0.0
    fsync_stall_seconds: float = 0.05
    transient_fraction: float = 1.0
    max_transient_attempts: int = 2

    def _rate(self, kind: str) -> float:
        return {
            "build": self.build_rate,
            "hang": self.hang_rate,
            "counters": self.counter_rate,
            "verify": self.verify_rate,
            "worker_crash": self.worker_crash_rate,
            "worker_hang": self.worker_hang_rate,
            "journal_torn_write": self.torn_write_rate,
            "agent_crash": self.agent_crash_rate,
            "net_partition": self.net_partition_rate,
            "message_corrupt": self.message_corrupt_rate,
            "journal_fsync_stall": self.fsync_stall_rate,
            "disk_full": self.disk_full_rate,
            "store_bitflip": self.store_bitflip_rate,
            "journal_torn_tail": self.torn_tail_rate,
            "lease_expire": self.lease_expire_rate,
            "client_disconnect": self.client_disconnect_rate,
            "coordinator_crash": self.coordinator_crash_rate,
        }[kind]

    def fires(self, kind: str, key: str, attempt: int) -> bool:
        """Does fault ``kind`` fire for measurement ``key`` on this
        (1-based) attempt?  Pure function — safe across processes."""
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        rate = self._rate(kind)
        if rate <= 0.0 or _uniform(self.seed, f"fire:{kind}", key) >= rate:
            return False
        if _uniform(self.seed, f"perm:{kind}", key) >= self.transient_fraction:
            return True  # permanent: fires on every attempt
        clears_after = 1 + int(
            _uniform(self.seed, f"clears:{kind}", key)
            * self.max_transient_attempts
        )
        return attempt <= clears_after

    def describe(self) -> str:
        """One human-readable line naming the plan's seed and live rates."""
        rates = ", ".join(
            f"{k}={self._rate(k):g}" for k in KINDS if self._rate(k) > 0
        )
        return f"FaultPlan(seed={self.seed}, {rates or 'no faults'})"


#: Spec-key aliases accepted by :func:`parse_plan`, mapping the fault
#: kind names users think in onto the plan's field names.
_PLAN_ALIASES = {
    "build": "build_rate",
    "hang": "hang_rate",
    "counters": "counter_rate",
    "verify": "verify_rate",
    "worker_crash": "worker_crash_rate",
    "worker_hang": "worker_hang_rate",
    "journal_torn_write": "torn_write_rate",
    "torn": "torn_write_rate",
    "agent_crash": "agent_crash_rate",
    "net_partition": "net_partition_rate",
    "partition": "net_partition_rate",
    "message_corrupt": "message_corrupt_rate",
    "corrupt": "message_corrupt_rate",
    "journal_fsync_stall": "fsync_stall_rate",
    "fsync_stall": "fsync_stall_rate",
    "disk_full": "disk_full_rate",
    "store_bitflip": "store_bitflip_rate",
    "bitflip": "store_bitflip_rate",
    "journal_torn_tail": "torn_tail_rate",
    "torn_tail": "torn_tail_rate",
    "lease_expire": "lease_expire_rate",
    "client_disconnect": "client_disconnect_rate",
    "coordinator_crash": "coordinator_crash_rate",
    "stall_seconds": "fsync_stall_seconds",
    "transient": "transient_fraction",
}

_INT_FIELDS = ("seed", "max_transient_attempts")


def parse_plan(spec: str) -> FaultPlan:
    """Parse a fault-plan spec from the CLI or an environment variable.

    Two forms are accepted:

    - a JSON object: ``'{"seed": 3, "worker_crash_rate": 0.4}'``
    - a ``k=v`` shorthand: ``'seed=3,worker_crash=0.4,transient=1.0'``

    Keys are :class:`FaultPlan` field names or the fault-kind aliases in
    :data:`_PLAN_ALIASES`.  Unknown keys raise :class:`ValueError` — a
    typo'd chaos spec silently injecting nothing would defeat the point.
    """
    field_names = {f.name for f in fields(FaultPlan)}

    def resolve(key: str) -> str:
        name = _PLAN_ALIASES.get(key, key)
        if name not in field_names:
            raise ValueError(
                f"unknown fault-plan key {key!r}; expected one of "
                f"{sorted(field_names | set(_PLAN_ALIASES))}"
            )
        return name

    spec = spec.strip()
    if not spec:
        raise ValueError("empty fault-plan spec")
    if spec.startswith(("{", "[")):
        try:
            raw = json.loads(spec)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad fault-plan JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ValueError("fault-plan JSON must be an object")
        items = raw.items()
    else:
        items = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad fault-plan entry {part!r}: expected key=value"
                )
            key, _, value = part.partition("=")
            items.append((key.strip(), value.strip()))

    kwargs = {}
    for key, value in items:
        name = resolve(key)
        try:
            kwargs[name] = (
                int(value) if name in _INT_FIELDS else float(value)
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"bad fault-plan value for {key!r}: {value!r}"
            ) from exc
    return FaultPlan(**kwargs)


# -- active-plan plumbing ---------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ATTEMPTS: Dict[str, int] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Make ``plan`` the process's active fault plan (None clears)."""
    global _ACTIVE
    _ACTIVE = plan
    _ATTEMPTS.clear()


def clear() -> None:
    """Uninstall any active fault plan."""
    install(None)


def active() -> Optional[FaultPlan]:
    """The currently installed plan, or None."""
    return _ACTIVE


def begin_attempt(key: str, attempt: int) -> None:
    """Record that measurement ``key`` is on its ``attempt``-th try.

    Called by the sweep runner (or its workers) before measuring; the
    substrate hooks read it back via :func:`should_inject` so transient
    faults can clear on retry.
    """
    _ATTEMPTS[key] = attempt


def current_attempt(key: str) -> int:
    """The attempt number last recorded for ``key`` (1 by default)."""
    return _ATTEMPTS.get(key, 1)


def should_inject(kind: str, key: str) -> bool:
    """The substrate-side hook: does the active plan fault this run?"""
    plan = _ACTIVE
    if plan is None:
        return False
    return plan.fires(kind, key, _ATTEMPTS.get(key, 1))


def should_inject_at(kind: str, key: str, attempt: int) -> bool:
    """Like :func:`should_inject`, at an explicit attempt.

    Used for :data:`PROCESS_KINDS`, whose attempt dimension (the
    parent's dispatch or recovery count) is not the measurement attempt
    tracked by :func:`begin_attempt`.
    """
    plan = _ACTIVE
    if plan is None:
        return False
    return plan.fires(kind, key, attempt)


@contextmanager
def injected_faults(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Scoped :func:`install` — restores the previous plan on exit."""
    previous = _ACTIVE
    install(plan)
    try:
        yield
    finally:
        install(previous)
