"""The measurement store facade: typed entries over a byte backend.

:class:`MeasurementStore` is what the rest of the stack talks to.  It
owns the mapping from domain objects to store entries:

- a **measurement** entry is the canonical JSON of
  :func:`~repro.core.session.measurement_to_dict` — the same record
  schema archives and checkpoint journals use, so a store can be
  exported straight into a v2 archive;
- an **artifact** entry is a pickled
  :class:`~repro.isa.program.Executable`, letting a fresh process skip
  compilation entirely for build keys another run already paid for.

Misses are always safe: a corrupt entry (torn write, bit flip,
truncation — surfaced by the backend as
:class:`~repro.store.backend.StoreEntryCorrupt`, or by record
validation as :class:`~repro.core.errors.ArchiveCorruption`) is
counted, deleted, and reported as a miss, so the worst a damaged store
can do is cost one re-measurement.  Hit/miss/byte tallies go to the
**global** obs metrics registry only — never the sweep-scoped registry
that lands in ``SweepReport.metrics`` — which is what keeps warm-run
reports byte-identical to cold ones.
"""

from __future__ import annotations

import errno
import io
import json
import pickle
from typing import Dict, List, Optional, Tuple

from repro._errors import ArchiveCorruption
from repro.core.experiment import Measurement
from repro.core.session import (
    canonical_json,
    load_measurement_record,
    measurement_to_dict,
    save_measurements,
)
from repro.core.setup import ExperimentalSetup
from repro.isa.program import Executable
from repro.obs import metrics as obs_metrics
from repro.store.backend import (
    DiskBackend,
    MemoryBackend,
    StoreBackend,
    StoreEntryCorrupt,
)
from repro.store.keys import (
    ARTIFACT_PREFIX,
    KEY_SCHEME,
    MEASUREMENT_PREFIX,
    artifact_key,
    engine_fingerprint,
    measurement_key,
)


class MeasurementStore:
    """Content-addressed store for measurements and compiled artifacts.

    Thin, typed, and strictly optional: every ``get_*`` returns ``None``
    on any problem (absent, corrupt, undecodable) and every ``put_*`` is
    idempotent, so callers can treat the store as a pure accelerator —
    correctness never depends on it.
    """

    def __init__(self, backend: StoreBackend) -> None:
        self.backend = backend
        self.engine = engine_fingerprint()
        # Per-instance tallies feed manifest provenance; the global obs
        # counters mirror them for `repro obs` and bench sidecars.
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        self.artifact_hits = 0
        self.artifact_misses = 0
        #: Sick-disk degradation: the first failed write (ENOSPC, I/O
        #: error) disables every further put for this store instance —
        #: reads keep serving hits, measurements keep landing, and the
        #: sweep report records the loss instead of the sweep dying.
        self.write_disabled = False
        self.disabled_reason = ""

    # -- keys --------------------------------------------------------------

    def key_for(self, experiment, setup: ExperimentalSetup) -> str:
        """The measurement key of ``setup`` under ``experiment``."""
        return measurement_key(
            experiment.workload.name,
            dict(experiment.workload.sources),
            experiment.size,
            experiment.seed,
            experiment.verify,
            setup,
            self.engine,
        )

    def artifact_key_for(self, experiment, setup: ExperimentalSetup) -> str:
        """The artifact key of ``setup``'s build under ``experiment``."""
        return artifact_key(
            experiment.workload.name,
            dict(experiment.workload.sources),
            setup,
            self.engine,
        )

    # -- measurements ------------------------------------------------------

    def _get(self, key: str) -> Optional[bytes]:
        """Backend read with the corrupt-entry policy applied: count it,
        delete it, miss."""
        try:
            return self.backend.get(key)
        except StoreEntryCorrupt:
            self.corrupt += 1
            obs_metrics.counter("store.corrupt").inc()
            self.backend.delete(key)
            return None

    def get_measurement(
        self, experiment, setup: ExperimentalSetup
    ) -> Optional[Measurement]:
        """Return the stored measurement for ``setup``, or None (miss)."""
        key = self.key_for(experiment, setup)
        payload = self._get(key)
        if payload is not None:
            try:
                data = json.loads(payload.decode())
                m = load_measurement_record(data, path=key)
            except (ArchiveCorruption, UnicodeDecodeError, ValueError):
                self.corrupt += 1
                obs_metrics.counter("store.corrupt").inc()
                self.backend.delete(key)
            else:
                self.hits += 1
                obs_metrics.counter("store.hits").inc()
                obs_metrics.counter("store.bytes_read").inc(len(payload))
                return m
        self.misses += 1
        obs_metrics.counter("store.misses").inc()
        return None

    def _put(self, key: str, payload: bytes) -> bool:
        """Backend write with the sick-disk policy applied: the first
        ``OSError`` (ENOSPC above all) disables writes for this store
        instance and reads as "not written", never as a failed
        measurement — the store is an accelerator, not a dependency."""
        if self.write_disabled:
            obs_metrics.counter("store.puts_skipped").inc()
            return False
        try:
            return self.backend.put(key, payload)
        except OSError as exc:
            name = (
                errno.errorcode.get(exc.errno, "OSError")
                if exc.errno
                else type(exc).__name__
            )
            self.write_disabled = True
            self.disabled_reason = f"{name}: {exc}"
            obs_metrics.counter("store.write_errors").inc()
            obs_metrics.counter("store.write_disabled").inc()
            return False

    def put_measurement(self, experiment, m: Measurement) -> bool:
        """Store a measurement; True when a new entry was written."""
        key = self.key_for(experiment, m.setup)
        payload = canonical_json(measurement_to_dict(m)).encode()
        written = self._put(key, payload)
        if written:
            self.puts += 1
            obs_metrics.counter("store.puts").inc()
            obs_metrics.counter("store.bytes_written").inc(len(payload))
        return written

    # -- artifacts ---------------------------------------------------------

    def get_artifact(
        self, experiment, setup: ExperimentalSetup
    ) -> Optional[Executable]:
        """Return the stored executable for ``setup``'s build key, or
        None — unpickling failures count as corruption, not errors."""
        key = self.artifact_key_for(experiment, setup)
        payload = self._get(key)
        if payload is not None:
            try:
                exe = _restricted_loads(payload)
            except Exception:
                self.corrupt += 1
                obs_metrics.counter("store.corrupt").inc()
                self.backend.delete(key)
            else:
                if isinstance(exe, Executable):
                    self.artifact_hits += 1
                    obs_metrics.counter("store.artifact_hits").inc()
                    obs_metrics.counter("store.bytes_read").inc(len(payload))
                    return exe
                self.corrupt += 1
                obs_metrics.counter("store.corrupt").inc()
                self.backend.delete(key)
        self.artifact_misses += 1
        obs_metrics.counter("store.artifact_misses").inc()
        return None

    def put_artifact(
        self, experiment, setup: ExperimentalSetup, exe: Executable
    ) -> bool:
        """Store a compiled executable; True when newly written."""
        key = self.artifact_key_for(experiment, setup)
        payload = pickle.dumps(exe, protocol=4)
        written = self._put(key, payload)
        if written:
            self.puts += 1
            obs_metrics.counter("store.puts").inc()
            obs_metrics.counter("store.bytes_written").inc(len(payload))
        return written

    # -- operations --------------------------------------------------------

    def stats(self) -> Dict:
        """Entry counts, footprint, and scheme — `repro store stats`."""
        keys = self.backend.keys()
        return {
            "scheme": KEY_SCHEME,
            "engine": self.engine,
            "entries": len(keys),
            "measurements": sum(
                1 for k in keys if k.startswith(MEASUREMENT_PREFIX)
            ),
            "artifacts": sum(1 for k in keys if k.startswith(ARTIFACT_PREFIX)),
            "bytes": self.backend.size_bytes(),
        }

    def verify(self) -> Tuple[int, List[str]]:
        """Deep audit of every entry; ``(ok_count, corrupt_keys)``.

        Goes beyond the backend's payload-checksum pass: a measurement
        entry must decode into a valid v2 record and an artifact entry
        must unpickle (under the restricted loader) into an
        :class:`Executable` — so a checksum-intact entry holding garbage
        content, or a key outside the store's scheme, is flagged too.
        Read-only: nothing is deleted (``repro fsck --repair`` purges).
        """
        ok = 0
        corrupt: List[str] = []
        for key in self.backend.keys():
            try:
                payload = self.backend.get(key)
            except StoreEntryCorrupt:
                corrupt.append(key)
                continue
            if payload is None:
                continue  # deleted underneath the audit
            if key.startswith(MEASUREMENT_PREFIX):
                try:
                    data = json.loads(payload.decode())
                    load_measurement_record(data, path=key)
                except (ArchiveCorruption, UnicodeDecodeError, ValueError):
                    corrupt.append(key)
                    continue
            elif key.startswith(ARTIFACT_PREFIX):
                try:
                    valid = isinstance(_restricted_loads(payload), Executable)
                except Exception:  # noqa: BLE001 — any unpickle failure
                    valid = False
                if not valid:
                    corrupt.append(key)
                    continue
            else:
                # Not part of the store's key scheme at all: flag it —
                # an unaudited blob in a shared store dir is exactly the
                # kind of quiet rot fsck exists to surface.
                corrupt.append(key)
                continue
            ok += 1
        return ok, sorted(corrupt)

    def gc(self, max_bytes: int) -> Tuple[int, int]:
        """LRU-evict down to ``max_bytes``; ``(evicted, bytes_freed)``."""
        return self.backend.gc(max_bytes)

    def export(self, path: str, note: str = "") -> int:
        """Write every stored measurement to a v2 archive at ``path``.

        Returns the number of measurements exported.  Entries are sorted
        by their record's canonical JSON so the archive is deterministic
        regardless of insertion or LRU order; corrupt entries are
        skipped (and counted) rather than poisoning the export.
        """
        records: List[Tuple[str, Measurement]] = []
        for key in self.backend.keys():
            if not key.startswith(MEASUREMENT_PREFIX):
                continue
            payload = self._get(key)
            if payload is None:
                continue
            try:
                data = json.loads(payload.decode())
                m = load_measurement_record(data, path=key)
            except (ArchiveCorruption, UnicodeDecodeError, ValueError):
                self.corrupt += 1
                obs_metrics.counter("store.corrupt").inc()
                continue
            records.append((canonical_json(measurement_to_dict(m)), m))
        records.sort(key=lambda pair: pair[0])
        save_measurements(
            path,
            [m for _canon, m in records],
            note=note or f"exported from store ({KEY_SCHEME})",
        )
        return len(records)

    def provenance(self) -> Dict:
        """The manifest's ``store`` section: scheme + this run's tallies."""
        return {
            "scheme": KEY_SCHEME,
            "engine": self.engine,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
            "artifact_hits": self.artifact_hits,
            "artifact_misses": self.artifact_misses,
            "write_disabled": self.write_disabled,
        }

    def summary(self) -> str:
        """One greppable line for stderr: ``store: hits=… misses=…``."""
        line = (
            f"store: hits={self.hits} misses={self.misses} "
            f"puts={self.puts} corrupt={self.corrupt} "
            f"artifact_hits={self.artifact_hits}"
        )
        if self.write_disabled:
            line += f" (writes disabled: {self.disabled_reason})"
        return line

    def __repr__(self) -> str:
        backend = type(self.backend).__name__
        return f"MeasurementStore({backend}, {self.hits} hits, {self.misses} misses)"


#: The only globals an artifact pickle may reference: the two classes a
#: pickled Executable is actually composed of (its operand arrays and
#: maps are plain ints/strs/lists/dicts, which pickle encodes as
#: opcodes, not globals).  An *allowlist of concrete classes* — not a
#: module-prefix check — because any loadable callable (``builtins.eval``,
#: ``os.system`` reachable through a permissive prefix) would hand a
#: hand-crafted entry in a shared store directory arbitrary code
#: execution via pickle's REDUCE opcode.
_ALLOWED_GLOBALS = {
    ("repro.isa.program", "Executable"),
    ("repro.isa.program", "PlacedFunction"),
}


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler limited to :data:`_ALLOWED_GLOBALS` — a hand-crafted
    artifact entry cannot smuggle in arbitrary callables (no builtins,
    no ``repro.*`` outside the Executable's own classes) the way a bare
    ``pickle.loads`` would allow."""

    def find_class(self, module: str, name: str):  # noqa: D102
        if (module, name) in _ALLOWED_GLOBALS:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"artifact entry references forbidden global {module}.{name}"
        )


def _restricted_loads(payload: bytes):
    return _RestrictedUnpickler(io.BytesIO(payload)).load()


def open_store(path: Optional[str]) -> MeasurementStore:
    """Build a store: disk-backed at ``path``, in-memory when None."""
    if path:
        return MeasurementStore(DiskBackend(path))
    return MeasurementStore(MemoryBackend())
