"""The store's canonical key scheme: what makes two runs "the same run".

The whole pipeline is deterministic — the same (program source,
toolchain profile, setup, machine model, seed, engine) always yields a
byte-identical measurement — so memoization is sound *exactly when the
key covers everything the result depends on*.  This module is that
contract, written down in one place:

- :func:`measurement_key` — identity of one measured run: the workload's
  minic sources, input class and seed, the verify flag, the complete
  :class:`~repro.core.setup.ExperimentalSetup` (machine model, compiler
  profile, opt level, link order, env bytes, alignments), and the
  engine fingerprint;
- :func:`artifact_key` — identity of one compiled-and-linked executable:
  the sources plus only the setup fields that reach the toolchain
  (:meth:`~repro.core.setup.ExperimentalSetup.build_key`);
- :func:`engine_fingerprint` — a SHA-256 over the source bytes of every
  module that can change a measured number (toolchain, ISA, OS model,
  machine models, workload definitions, the experiment harness).  Edit
  one line of the simulator and every cached entry silently becomes a
  miss — invalidation is structural, never manual.

Keys are versioned by :data:`KEY_SCHEME`; bumping it (e.g. because the
key gains a field) orphans old entries instead of misreading them.
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from typing import Mapping

from repro.core.session import canonical_json, setup_to_dict
from repro.core.setup import ExperimentalSetup

#: Key-scheme version, recorded in provenance manifests.  Bump whenever
#: the key payload changes shape; old entries then simply never match.
KEY_SCHEME = "repro-store-k1"

#: Key prefixes: the entry kind is part of the address, so measurement
#: and artifact namespaces can never collide.
MEASUREMENT_PREFIX = "meas-"
ARTIFACT_PREFIX = "art-"

#: Packages whose source bytes feed the engine fingerprint: everything
#: between a setup and a perf-counter value.
_ENGINE_PACKAGES = ("arch", "isa", "os", "toolchain", "workloads")

#: Single modules that also shape results (the measurement harness
#: itself, and the fault machinery it consults).
_ENGINE_MODULES = ("core/experiment.py", "core/setup.py", "faults.py")


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@lru_cache(maxsize=1)
def engine_fingerprint() -> str:
    """SHA-256 over the simulator's own source code.

    Walks the measurement-relevant modules under ``src/repro`` in sorted
    order and hashes ``(relative path, file bytes)`` pairs, so any edit
    to the toolchain, ISA, OS model, machine models, workloads, or the
    experiment harness yields a new fingerprint — and therefore a cold
    store.  Cached per process (the tree does not change mid-run).
    """
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    paths = []
    for package in _ENGINE_PACKAGES:
        base = os.path.join(root, package)
        for dirpath, _dirnames, filenames in sorted(os.walk(base)):
            for name in sorted(filenames):
                if name.endswith(".py"):
                    paths.append(os.path.join(dirpath, name))
    for rel in _ENGINE_MODULES:
        paths.append(os.path.join(root, *rel.split("/")))
    for path in sorted(paths):
        digest.update(os.path.relpath(path, root).encode())
        digest.update(b"\0")
        with open(path, "rb") as fh:
            digest.update(fh.read())
        digest.update(b"\0")
    return digest.hexdigest()


def source_digest(sources: Mapping[str, str]) -> str:
    """SHA-256 over a workload's minic sources (module name + text)."""
    return _digest(
        canonical_json({name: sources[name] for name in sorted(sources)})
    )


def measurement_key(
    workload: str,
    sources: Mapping[str, str],
    size: str,
    seed: int,
    verify: bool,
    setup: ExperimentalSetup,
    engine: str,
) -> str:
    """The content address of one measured run.

    Everything a :class:`~repro.core.experiment.Measurement` depends on
    is in the payload; two runs share a key exactly when the pipeline
    guarantees them byte-identical results.  (Like the archive schema
    and :func:`~repro.core.runner.sweep_id`, the setup's identity is its
    :func:`~repro.core.session.setup_to_dict` form — a custom
    ``env_base`` is the one field outside it; see docs/store.md.)
    """
    payload = {
        "scheme": KEY_SCHEME,
        "kind": "measurement",
        "engine": engine,
        "workload": workload,
        "sources": source_digest(sources),
        "size": size,
        "seed": seed,
        "verify": verify,
        "setup": setup_to_dict(setup),
    }
    return MEASUREMENT_PREFIX + _digest(canonical_json(payload))


def artifact_key(
    workload: str,
    sources: Mapping[str, str],
    setup: ExperimentalSetup,
    engine: str,
) -> str:
    """The content address of one compiled-and-linked executable.

    Narrower than :func:`measurement_key` on purpose: only the setup
    fields that reach the toolchain participate, so one artifact serves
    every environment size and seed measured on top of it — the same
    sharing :meth:`ExperimentalSetup.build_key` gives the in-memory
    build cache, made durable.
    """
    compiler, opt_level, link_order, function_alignment = setup.build_key()
    payload = {
        "scheme": KEY_SCHEME,
        "kind": "artifact",
        "engine": engine,
        "workload": workload,
        "sources": source_digest(sources),
        "build": {
            "compiler": compiler,
            "opt_level": opt_level,
            "link_order": list(link_order) if link_order else None,
            "function_alignment": function_alignment,
        },
    }
    return ARTIFACT_PREFIX + _digest(canonical_json(payload))
