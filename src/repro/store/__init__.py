"""``repro.store`` — the content-addressed measurement store.

The pipeline is deterministic end to end, which makes memoization the
cheapest scaling lever in the repo: a measurement computed once under a
given (sources, toolchain profile, setup, machine, seed, engine) never
needs computing again.  This package is that memo, made durable and
verifiable:

- :mod:`repro.store.keys` — the canonical key scheme, including the
  engine fingerprint that invalidates everything when the simulator
  itself changes;
- :mod:`repro.store.backend` — in-memory and on-disk byte stores with
  atomic checksummed writes, SHA-256-verified reads, and size-capped
  LRU garbage collection;
- :mod:`repro.store.store` — the typed facade the runner, experiment,
  and CLI use (:class:`MeasurementStore`, :func:`open_store`).

(Named ``store``, not ``cache``: ``repro.arch.cache`` is the *simulated*
CPU cache, one of the paper's bias mechanisms — very different animal.)

The load-bearing invariant, pinned by tests and the store-smoke CI job:
a warm sweep through the store produces a ``SweepReport``, checkpoint
journal, and trace byte-identical to the cold sweep that populated it —
hits change *when* numbers arrive, never what they are.
"""

from repro.store.backend import (
    DiskBackend,
    MemoryBackend,
    StoreBackend,
    StoreEntryCorrupt,
)
from repro.store.keys import (
    KEY_SCHEME,
    artifact_key,
    engine_fingerprint,
    measurement_key,
)
from repro.store.store import MeasurementStore, open_store

__all__ = [
    "KEY_SCHEME",
    "DiskBackend",
    "MemoryBackend",
    "MeasurementStore",
    "StoreBackend",
    "StoreEntryCorrupt",
    "artifact_key",
    "engine_fingerprint",
    "measurement_key",
    "open_store",
]
