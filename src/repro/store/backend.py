"""Store backends: where content-addressed entries physically live.

Two implementations of one small contract (:class:`StoreBackend`):

- :class:`MemoryBackend` — an ordered dict with LRU eviction; the
  default when no ``--store`` directory is given, and the workhorse of
  the test suite;
- :class:`DiskBackend` — one JSON file per entry under a two-level
  sharded tree, written atomically (temp file + fsync + ``os.replace``)
  and verified on every read against an embedded SHA-256, so a torn
  write, truncation, or bit flip is *detected* and surfaced as
  :class:`StoreEntryCorrupt` — which the facade above turns into a
  cache miss, never a crashed sweep.

Payloads are opaque bytes at this layer; what they mean (a measurement
record, a pickled executable) is the facade's business
(:mod:`repro.store.store`).  Both backends support size-capped LRU
garbage collection via :meth:`StoreBackend.gc`.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro import storageio
from repro._errors import ReproError

#: On-disk entry wrapper format.  Bump if the wrapper shape changes;
#: unknown formats read as corrupt (and therefore as misses).
ENTRY_FORMAT = "repro-store-entry-v1"


class StoreEntryCorrupt(ReproError):
    """A store entry failed integrity verification.

    Retryable by design: a corrupt cache entry is never fatal — the
    facade deletes it and the pipeline re-measures, exactly as if the
    entry had never existed.  Carries the offending path for operators
    chasing a flaky disk.
    """

    retryable = True

    def __init__(self, message: str, *, path: Optional[str] = None) -> None:
        where = f"{path}: " if path else ""
        super().__init__(where + message, context={"path": path})
        self.path = path


def payload_sha256(payload: bytes) -> str:
    """The integrity checksum stored beside (and verified against) every
    entry's payload bytes."""
    return hashlib.sha256(payload).hexdigest()


class StoreBackend:
    """Interface every backend implements: a byte-addressed KV store
    with integrity-verified reads and LRU-ordered eviction."""

    def get(self, key: str) -> Optional[bytes]:
        """Return the payload for ``key`` (refreshing its LRU position),
        ``None`` on a miss, or raise :class:`StoreEntryCorrupt` when the
        entry exists but fails verification."""
        raise NotImplementedError

    def put(self, key: str, payload: bytes) -> bool:
        """Store ``payload`` under ``key``; return True when a new entry
        was written, False when the key already existed (idempotent —
        content-addressed entries never change under the same key)."""
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Remove ``key``'s entry; True if one existed."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Every stored key, oldest (least recently used) first."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Total payload footprint in bytes."""
        raise NotImplementedError

    def gc(self, max_bytes: int) -> Tuple[int, int]:
        """Evict least-recently-used entries until the footprint is at
        most ``max_bytes``; return ``(entries_evicted, bytes_freed)``."""
        evicted = freed = 0
        for key in self.keys():
            if self.size_bytes() <= max_bytes:
                break
            size = self.entry_size(key)
            if self.delete(key):
                evicted += 1
                freed += size
        return evicted, freed

    def entry_size(self, key: str) -> int:
        """Payload size of one entry (0 when absent)."""
        raise NotImplementedError

    def verify(self) -> Tuple[int, List[str]]:
        """Check every entry's integrity; return ``(entries_ok, corrupt
        keys)`` without deleting anything — auditing is the operator's
        read-only view, :meth:`get`'s callers decide about repair."""
        ok = 0
        corrupt: List[str] = []
        for key in self.keys():
            try:
                if self.get(key) is None:
                    corrupt.append(key)
                else:
                    ok += 1
            except StoreEntryCorrupt:
                corrupt.append(key)
        return ok, corrupt


class MemoryBackend(StoreBackend):
    """Process-local backend: an :class:`~collections.OrderedDict` in
    LRU order.  No serialization, no integrity risk — `verify` is
    trivially clean — but nothing survives the process either."""

    def __init__(self) -> None:
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()

    def get(self, key: str) -> Optional[bytes]:
        payload = self._entries.get(key)
        if payload is None:
            return None
        self._entries.move_to_end(key)
        return payload

    def put(self, key: str, payload: bytes) -> bool:
        if key in self._entries:
            self._entries.move_to_end(key)
            return False
        self._entries[key] = bytes(payload)
        return True

    def delete(self, key: str) -> bool:
        return self._entries.pop(key, None) is not None

    def keys(self) -> List[str]:
        return list(self._entries)

    def size_bytes(self) -> int:
        return sum(len(p) for p in self._entries.values())

    def entry_size(self, key: str) -> int:
        return len(self._entries.get(key, b""))


class DiskBackend(StoreBackend):
    """Durable backend: one checksummed JSON file per entry.

    Layout: ``root/<first two hex chars of sha256(key)>/<key>.json`` —
    two-level sharding keeps directories small at hundreds of thousands
    of entries.  Writes go through a temp file in the same directory,
    are fsynced, then published with ``os.replace``, so a crash leaves
    either the old entry or the new one, never a torn file.  LRU order
    is mtime: reads ``os.utime`` the entry, GC evicts oldest-mtime
    first.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        #: Stale temp files reclaimed on open — ``repro fsck`` reports
        #: the count as evidence of an earlier crash mid-put.
        self.swept_tmp = 0
        os.makedirs(self.root, exist_ok=True)
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Unlink temp files leaked by a crash (SIGKILL, power loss)
        between ``mkstemp`` and ``os.replace`` — they are unpublished
        writes, never entries, so deleting them is always safe."""
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.startswith(".tmp-"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        self.swept_tmp += 1
                    except OSError:
                        pass

    def _path(self, key: str) -> str:
        shard = hashlib.sha256(key.encode()).hexdigest()[:2]
        return os.path.join(self.root, shard, key + ".json")

    def _iter_paths(self) -> Iterator[str]:
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in sorted(filenames):
                # Skip in-flight temp files: they are not entries, and
                # treating one as a key would give keys()/size_bytes() a
                # phantom that delete() (which re-shards by key) could
                # never reclaim.
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield os.path.join(dirpath, name)

    def _read_entry(self, path: str) -> Dict:
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreEntryCorrupt(
                f"unreadable entry (truncated or torn write?): {exc}",
                path=path,
            ) from exc
        if not isinstance(entry, dict) or entry.get("format") != ENTRY_FORMAT:
            raise StoreEntryCorrupt(
                f"not a {ENTRY_FORMAT} entry", path=path
            )
        return entry

    def get(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        if not os.path.exists(path):
            return None
        entry = self._read_entry(path)
        if entry.get("key") != key:
            raise StoreEntryCorrupt(
                f"entry names key {entry.get('key')!r}, expected {key!r}",
                path=path,
            )
        try:
            payload = base64.b64decode(entry.get("payload", ""), validate=True)
        except (binascii.Error, TypeError) as exc:
            raise StoreEntryCorrupt(
                f"payload is not valid base64: {exc}", path=path
            ) from exc
        if payload_sha256(payload) != entry.get("sha256"):
            raise StoreEntryCorrupt(
                "payload checksum mismatch — entry was altered or damaged",
                path=path,
            )
        os.utime(path)
        return payload

    def put(self, key: str, payload: bytes) -> bool:
        path = self._path(key)
        if os.path.exists(path):
            os.utime(path)
            return False
        # Fault-aware I/O shim: a drawn disk_full fails here with ENOSPC
        # before any bytes land; a drawn store_bitflip rots the entry
        # *after* a successful publish (the next read's checksum catches
        # it); fsync latency rides through storageio.fsync.
        storageio.check_disk_full(key, path=path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "format": ENTRY_FORMAT,
            "key": key,
            "sha256": payload_sha256(payload),
            "payload": base64.b64encode(payload).decode("ascii"),
        }
        # No .json suffix: a tmp file leaked by SIGKILL/power loss must
        # never be mistaken for an entry by _iter_paths.
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
                fh.flush()
                storageio.fsync(fh, key)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        storageio.maybe_bitflip(path, key)
        return True

    def delete(self, key: str) -> bool:
        path = self._path(key)
        try:
            os.unlink(path)
            return True
        except FileNotFoundError:
            return False

    def keys(self) -> List[str]:
        paths = sorted(
            self._iter_paths(),
            key=lambda p: (os.path.getmtime(p), p),
        )
        return [os.path.basename(p)[: -len(".json")] for p in paths]

    def size_bytes(self) -> int:
        # The payload footprint, not the file footprint: consistent with
        # MemoryBackend, and what a --max-bytes cap naturally means.
        total = 0
        for path in self._iter_paths():
            total += self._payload_size(path)
        return total

    def entry_size(self, key: str) -> int:
        path = self._path(key)
        if not os.path.exists(path):
            return 0
        return self._payload_size(path)

    def gc(self, max_bytes: int) -> Tuple[int, int]:
        # The base implementation recomputes size_bytes() after every
        # eviction — each a full-store read — making GC O(n^2) entry
        # decodes.  One sizing pass and a running total give the same
        # oldest-mtime-first eviction order in O(n).
        entries: List[Tuple[float, str, int]] = []
        total = 0
        for path in self._iter_paths():
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                continue  # deleted underneath us
            size = self._payload_size(path)
            entries.append((mtime, path, size))
            total += size
        entries.sort()
        evicted = freed = 0
        for _mtime, path, size in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            evicted += 1
            freed += size
            total -= size
        return evicted, freed

    @staticmethod
    def _payload_size(path: str) -> int:
        try:
            with open(path) as fh:
                entry = json.load(fh)
            return len(base64.b64decode(entry.get("payload", "")))
        except (OSError, json.JSONDecodeError, binascii.Error, TypeError):
            # A corrupt entry still occupies roughly its file size; use
            # that so GC can reclaim damaged files too.
            try:
                return os.path.getsize(path)
            except OSError:
                return 0
