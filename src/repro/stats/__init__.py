"""repro.stats — the full statistical-inference layer.

:mod:`repro.core.stats` holds the primitives (summaries, Student-t and
percentile-bootstrap intervals, distribution functions); this package
adds the machinery a defensible performance conclusion needs on top:

- :mod:`repro.stats.inference` — Wilcoxon signed-rank and Mann-Whitney
  U tests, rank-biserial / Cliff's delta effect sizes, Hodges–Lehmann
  location estimates,
- :mod:`repro.stats.bootstrap` — BCa (bias-corrected, accelerated)
  bootstrap intervals,
- :mod:`repro.stats.samplesize` — sequential required-sample-size
  estimation for the F8 randomized protocol,
- :mod:`repro.stats.speedup` — :func:`analyze_speedups`, the one-call
  work-up whose output feeds reports, manifests, and ``repro audit``.

Everything is dependency-free and deterministic (LCG resampling, no
:mod:`random`); degenerate inputs raise the typed
:class:`~repro.core.errors.StatsError`.  See docs/statistics.md for
method choices and operator recipes.
"""

from repro.stats.bootstrap import bca_confidence_interval, jackknife_acceleration
from repro.stats.inference import (
    RankTestResult,
    cliffs_delta,
    hodges_lehmann,
    mann_whitney_u,
    paired_speedup_test,
    rank_biserial,
    rankdata,
    wilcoxon_signed_rank,
)
from repro.stats.samplesize import (
    SampleSizeEstimate,
    convergence_trajectory,
    required_setups,
)
from repro.stats.speedup import (
    SKEW_THRESHOLD,
    SpeedupAnalysis,
    analyze_speedups,
)

__all__ = [
    "RankTestResult",
    "SKEW_THRESHOLD",
    "SampleSizeEstimate",
    "SpeedupAnalysis",
    "analyze_speedups",
    "bca_confidence_interval",
    "cliffs_delta",
    "convergence_trajectory",
    "hodges_lehmann",
    "jackknife_acceleration",
    "mann_whitney_u",
    "paired_speedup_test",
    "rank_biserial",
    "rankdata",
    "required_setups",
    "wilcoxon_signed_rank",
]
