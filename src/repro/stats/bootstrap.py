"""Bias-corrected and accelerated (BCa) bootstrap intervals.

The percentile bootstrap in :mod:`repro.core.stats` is already
distribution-free, but it inherits two finite-sample defects: the
interval is biased when the bootstrap distribution is not centred on
the estimate, and it ignores how fast the statistic's variance changes
with the data (skew).  Efron's BCa interval corrects both — a bias
correction ``z0`` read off the bootstrap distribution and an
acceleration ``a`` estimated by the jackknife — and is the interval
Touati (2009) recommends for speedup reporting.

Everything here is deterministic given ``seed``: resampling uses the
suite's LCG (the same stream the percentile bootstrap uses, so the two
intervals are comparable draw for draw), never :mod:`random`.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

from repro._errors import StatsError
from repro.core.stats import (
    ConfidenceInterval,
    check_sample,
    normal_cdf,
    normal_ppf,
    quantile,
)


def jackknife_acceleration(
    values: Sequence[float], statistic: Callable[[Sequence[float]], float]
) -> float:
    """The BCa acceleration constant ``a`` via the jackknife.

    ``a = sum(d^3) / (6 * sum(d^2)^1.5)`` where ``d_i`` is the
    deviation of the leave-one-out statistic from the jackknife mean.
    Returns 0.0 (no acceleration) when the leave-one-out statistics do
    not vary — the interval then degrades gracefully to the
    bias-corrected percentile interval.
    """
    n = len(values)
    loo = [
        statistic([v for j, v in enumerate(values) if j != i])
        for i in range(n)
    ]
    loo_mean = sum(loo) / n
    d = [loo_mean - v for v in loo]
    d2 = sum(x * x for x in d)
    if d2 == 0.0:
        return 0.0
    d3 = sum(x * x * x for x in d)
    return d3 / (6.0 * d2 ** 1.5)


def bca_confidence_interval(
    values: Sequence[float],
    level: float = 0.95,
    n_resamples: int = 2000,
    statistic: Optional[Callable[[Sequence[float]], float]] = None,
    seed: int = 0,
) -> ConfidenceInterval:
    """Efron's BCa bootstrap CI (default statistic: mean).

    The bias correction ``z0`` is the normal quantile of the fraction
    of bootstrap estimates below the observed statistic (ties counted
    half, and the fraction clamped away from 0 and 1 so ``z0`` stays
    finite); the acceleration comes from
    :func:`jackknife_acceleration`.  Degenerate samples (n < 2, zero
    variance) and out-of-range levels raise
    :class:`~repro.core.errors.StatsError`, matching the other interval
    constructors.
    """
    check_sample(values, level, "BCa interval")
    from repro.workloads.base import lcg_stream

    stat = statistic if statistic is not None else (lambda xs: sum(xs) / len(xs))
    theta = stat(list(values))
    rng = lcg_stream(seed + 7919)
    n = len(values)
    estimates: List[float] = []
    for __ in range(n_resamples):
        sample = [values[rng() % n] for __ in range(n)]
        estimates.append(stat(sample))
    estimates.sort()

    below = sum(1 for e in estimates if e < theta)
    ties = sum(1 for e in estimates if e == theta)
    fraction = (below + 0.5 * ties) / n_resamples
    fraction = min(max(fraction, 0.5 / n_resamples), 1.0 - 0.5 / n_resamples)
    z0 = normal_ppf(fraction)
    a = jackknife_acceleration(values, stat)

    alpha = (1.0 - level) / 2.0

    def adjusted(q: float) -> float:
        z = normal_ppf(q)
        denom = 1.0 - a * (z0 + z)
        if denom <= 0.0:
            raise StatsError(
                f"BCa acceleration degenerated (a={a:.4f}, z0={z0:.4f}): "
                "the jackknife says the statistic's variance changes too "
                "fast for this sample size — report the percentile "
                "bootstrap instead"
            )
        return normal_cdf(z0 + (z0 + z) / denom)

    lo_q, hi_q = adjusted(alpha), adjusted(1.0 - alpha)
    return ConfidenceInterval(
        lo=quantile(estimates, lo_q),
        hi=quantile(estimates, hi_q),
        level=level,
        mean=theta,
        method="BCa",
    )
