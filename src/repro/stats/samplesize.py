"""Required-sample-size estimation: "how many random setups until the
confidence interval stabilizes?".

The F8 protocol answers "is the treatment beneficial?" with a mean and
a confidence interval over randomized setups.  The natural follow-up —
*have I sampled enough setups, or should I keep going?* — is a
sample-size question: find the smallest n whose t interval half-width
falls below a target fraction of the estimate.  This module implements
the sequential version of that estimate (Touati 2009's stopping rule):
after every batch of setups, re-estimate the dispersion and project the
n that would reach the target width.

The projection is honest about its own standing: it is itself an
estimate from the observed dispersion, so the report line says
"recommend ~N setups", and :func:`convergence_trajectory` exposes the
raw width-vs-n curve so an operator can see the interval stabilize (or
fail to) rather than trust a single number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro._errors import StatsError
from repro.core.stats import SummaryStats, normal_ppf, t_ppf

#: Upper bound on the projected recommendation: past this, the honest
#: advice is "the dispersion is too large for this target", not a number.
MAX_PROJECTED_N = 100_000


@dataclass(frozen=True)
class SampleSizeEstimate:
    """The sequential estimator's verdict after ``n_observed`` setups.

    ``half_width`` / ``rel_half_width`` describe the current t interval;
    ``recommended_n`` is the projected total number of setups needed to
    bring the relative half-width under ``target_rel_width`` (never less
    than ``n_observed`` when already converged); ``converged`` says
    whether the current sample already meets the target.
    """

    n_observed: int
    half_width: float
    rel_half_width: float
    target_rel_width: float
    level: float
    recommended_n: int
    converged: bool
    method: str = "t-width projection"

    def summary_line(self) -> str:
        """One report line, e.g. for the F8 tables and ``repro randomized``."""
        state = (
            "converged"
            if self.converged
            else f"recommend ~{self.recommended_n} setups"
        )
        return (
            f"sample size: {self.n_observed} setups, CI half-width "
            f"{self.rel_half_width:.2%} of mean "
            f"(target {self.target_rel_width:.2%} at {self.level:.0%}) "
            f"-> {state}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for the manifest ``stats`` section."""
        return {
            "n_observed": self.n_observed,
            "half_width": self.half_width,
            "rel_half_width": self.rel_half_width,
            "target_rel_width": self.target_rel_width,
            "level": self.level,
            "recommended_n": self.recommended_n,
            "converged": self.converged,
            "method": self.method,
        }


def _half_width(std: float, n: int, level: float) -> float:
    """Half-width of the t interval for dispersion ``std`` at size ``n``."""
    if n < 2 or std == 0.0:
        return 0.0
    return t_ppf(0.5 + level / 2.0, n - 1) * std / math.sqrt(n)


def required_setups(
    speedups: Sequence[float],
    level: float = 0.95,
    target_rel_width: float = 0.01,
) -> SampleSizeEstimate:
    """Project how many random setups the protocol needs in total.

    Finds the smallest n with ``t_{n-1} * s / sqrt(n) <=
    target_rel_width * |mean|``, treating the observed sample standard
    deviation ``s`` as the dispersion estimate.  A zero-variance sample
    is already converged (the data show no dispersion to narrow); a
    sample whose mean is zero has no meaningful *relative* width and
    raises :class:`StatsError`, as do samples with fewer than two
    observations and out-of-range levels or targets.
    """
    if len(speedups) < 2:
        raise StatsError(
            "sample-size estimation needs at least 2 observed setups, "
            f"got {len(speedups)}"
        )
    if not 0.0 < level < 1.0:
        raise StatsError(f"level must be in (0, 1), got {level}")
    if target_rel_width <= 0.0:
        raise StatsError(
            f"target relative width must be positive, got {target_rel_width}"
        )
    stats = SummaryStats.from_values(speedups)
    if stats.mean == 0.0:
        raise StatsError(
            "relative interval width is undefined for a zero-mean sample"
        )
    n = stats.n
    half = _half_width(stats.std, n, level)
    rel = half / abs(stats.mean)
    if stats.std == 0.0:
        return SampleSizeEstimate(
            n_observed=n,
            half_width=0.0,
            rel_half_width=0.0,
            target_rel_width=target_rel_width,
            level=level,
            recommended_n=n,
            converged=True,
        )
    target_half = target_rel_width * abs(stats.mean)
    recommended = n
    if half > target_half:
        # Solve t_{m-1} * s / sqrt(m) <= target by fixed point: seed with
        # the normal-quantile solution (a lower bound, since t_crit >= z)
        # and re-solve with the t quantile at the current guess until it
        # stabilizes — a handful of t_ppf calls instead of one per
        # candidate m.
        q = 0.5 + level / 2.0
        z = normal_ppf(q)
        m = max(n + 1, int(math.ceil((z * stats.std / target_half) ** 2)))
        for __ in range(16):
            if m >= MAX_PROJECTED_N:
                m = MAX_PROJECTED_N
                break
            needed = max(
                n + 1,
                int(
                    math.ceil(
                        (t_ppf(q, m - 1) * stats.std / target_half) ** 2
                    )
                ),
            )
            if needed <= m:
                break
            m = needed
        while m < MAX_PROJECTED_N and _half_width(stats.std, m, level) > target_half:
            m += 1
        recommended = m
    return SampleSizeEstimate(
        n_observed=n,
        half_width=half,
        rel_half_width=rel,
        target_rel_width=target_rel_width,
        level=level,
        recommended_n=recommended,
        converged=half <= target_half,
    )


def convergence_trajectory(
    speedups: Sequence[float], level: float = 0.95
) -> List[Tuple[int, float]]:
    """The raw stabilization curve: ``(n, relative half-width)`` for
    every prefix of the sampled speedups (n >= 2).

    Prefixes, not resamples, so the curve is exactly what a sequential
    experimenter would have seen after each additional setup.
    Zero-variance and zero-mean prefixes contribute width 0.0 (nothing
    to narrow) rather than raising, so a curve can be drawn for any
    sample the estimator itself accepts.
    """
    if len(speedups) < 2:
        raise StatsError(
            "a convergence trajectory needs at least 2 observed setups, "
            f"got {len(speedups)}"
        )
    if not 0.0 < level < 1.0:
        raise StatsError(f"level must be in (0, 1), got {level}")
    out: List[Tuple[int, float]] = []
    for n in range(2, len(speedups) + 1):
        stats = SummaryStats.from_values(speedups[:n])
        half = _half_width(stats.std, n, level)
        rel = half / abs(stats.mean) if stats.mean != 0.0 else 0.0
        out.append((n, rel))
    return out
