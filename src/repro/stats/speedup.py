"""One-call statistical work-up of a paired speedup sample.

:func:`analyze_speedups` takes the per-setup speedup ratios an F8-style
randomized evaluation produces and returns everything an honest report
needs in one bundle: normal-theory and BCa intervals (each labeled with
its method), the paired Wilcoxon verdict with its effect size, robust
and conventional aggregates (Hodges–Lehmann, geometric mean), the
sample's skewness, and the sequential sample-size recommendation.

The bundle's :meth:`SpeedupAnalysis.to_dict` is the manifest ``stats``
section ``repro audit`` reads: it records the *raw* speedups alongside
every derived claim, so an auditor can recompute rather than trust.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._errors import StatsError
from repro.core.stats import (
    ConfidenceInterval,
    geometric_mean,
    skewness,
    t_confidence_interval,
)
from repro.stats.bootstrap import bca_confidence_interval
from repro.stats.inference import (
    RankTestResult,
    hodges_lehmann,
    paired_speedup_test,
)
from repro.stats.samplesize import SampleSizeEstimate, required_setups

#: |skewness| above which a normal-theory (t) interval alone is suspect
#: and the BCa interval should carry the conclusion.  Shared with the
#: auditor's ``weak-ci`` rule so reports and audits apply one standard.
SKEW_THRESHOLD = 1.0


@dataclass(frozen=True)
class SpeedupAnalysis:
    """Full inference bundle for one paired speedup sample.

    ``distinct_setups`` is the number of *different* randomized setups
    behind the sample — equal to ``n`` in a clean F8 run, smaller when
    measurements were replicated under a shared setup (the
    pseudoreplication the auditor flags).
    """

    speedups: Tuple[float, ...]
    distinct_setups: int
    level: float
    t_interval: ConfidenceInterval
    bca_interval: ConfidenceInterval
    test: RankTestResult
    effect_size: float
    hl_speedup: float
    geomean: float
    skew: float
    sample_size: SampleSizeEstimate

    @property
    def n(self) -> int:
        """Number of speedup observations."""
        return len(self.speedups)

    @property
    def significant(self) -> bool:
        """True when the paired Wilcoxon test rejects "speedup == 1"."""
        return self.test.significant(self.level)

    @property
    def direction(self) -> str:
        """``"speedup"``, ``"slowdown"``, or ``"inconclusive"`` — the
        signed-rank verdict combined with the effect-size sign."""
        if not self.significant:
            return "inconclusive"
        return "speedup" if self.effect_size > 0 else "slowdown"

    def summary_lines(self) -> List[str]:
        """Report block for ``repro randomized`` and the F8 benchmark."""
        lines = [
            f"t interval:    {self.t_interval}",
            f"BCa interval:  {self.bca_interval}",
            f"{self.test.summary()} -> {self.direction}",
            f"effect size (rank-biserial): {self.effect_size:+.3f}",
            (
                f"geometric mean {self.geomean:.4f}x, "
                f"Hodges-Lehmann {self.hl_speedup:.4f}x, "
                f"skewness {self.skew:+.2f}"
            ),
            self.sample_size.summary_line(),
        ]
        if abs(self.skew) > SKEW_THRESHOLD:
            lines.append(
                f"note: |skewness| > {SKEW_THRESHOLD:g} — prefer the BCa "
                "interval over the t interval for this sample"
            )
        return lines

    def to_dict(self) -> Dict[str, Any]:
        """The manifest ``stats`` section (see docs/statistics.md)."""
        return {
            "n": self.n,
            "distinct_setups": self.distinct_setups,
            "level": self.level,
            "speedups": list(self.speedups),
            "skewness": self.skew,
            "aggregate": {"method": "geometric-mean", "value": self.geomean},
            "hodges_lehmann": self.hl_speedup,
            "intervals": [
                _interval_dict(self.t_interval),
                _interval_dict(self.bca_interval),
            ],
            "tests": [
                {
                    "method": self.test.method,
                    "statistic": self.test.statistic,
                    "z": self.test.z,
                    "p_value": self.test.p_value,
                    "n": self.test.n,
                    "effect_size": self.effect_size,
                }
            ],
            "sample_size": self.sample_size.to_dict(),
            "verdict": {
                "significant": self.significant,
                "direction": self.direction,
            },
        }


def _interval_dict(ci: ConfidenceInterval) -> Dict[str, Any]:
    """JSON form of one labeled confidence interval."""
    return {
        "method": ci.method,
        "lo": ci.lo,
        "hi": ci.hi,
        "mean": ci.mean,
        "level": ci.level,
    }


def analyze_speedups(
    speedups: Sequence[float],
    distinct_setups: Optional[int] = None,
    level: float = 0.95,
    target_rel_width: float = 0.01,
    seed: int = 0,
) -> SpeedupAnalysis:
    """Run the full inference battery over a paired speedup sample.

    ``distinct_setups`` defaults to ``len(speedups)`` — pass the true
    count when measurements share setups so the recorded sample is
    honest about its replication structure.  Deterministic given
    ``seed`` (bootstrap resampling uses the suite's LCG).  Raises
    :class:`StatsError` for samples no interval can answer for (n < 2,
    zero variance, non-positive ratios) — callers that cannot guarantee
    a healthy sample should catch it and omit the stats block rather
    than fabricate one.
    """
    if any(s <= 0.0 for s in speedups):
        raise StatsError("speedups must be positive ratios")
    n = len(speedups)
    distinct = distinct_setups if distinct_setups is not None else n
    if distinct > n:
        raise StatsError(
            f"distinct_setups ({distinct}) cannot exceed the number of "
            f"observations ({n})"
        )
    t_ci = t_confidence_interval(speedups, level=level)
    bca_ci = bca_confidence_interval(speedups, level=level, seed=seed)
    test, effect = paired_speedup_test(speedups)
    hl = math.exp(hodges_lehmann([math.log(s) for s in speedups]))
    return SpeedupAnalysis(
        speedups=tuple(float(s) for s in speedups),
        distinct_setups=distinct,
        level=level,
        t_interval=t_ci,
        bca_interval=bca_ci,
        test=test,
        effect_size=effect,
        hl_speedup=hl,
        geomean=geometric_mean(speedups),
        skew=skewness(speedups),
        sample_size=required_setups(
            speedups, level=level, target_rel_width=target_rel_width
        ),
    )
