"""Nonparametric inference for performance comparisons.

Touati (2009) makes the case that speedup statistics should not lean on
normality: performance samples over randomized setups are routinely
skewed, heavy-tailed, and small.  This module implements the
distribution-free machinery the suite's reports use:

- :func:`wilcoxon_signed_rank` — the paired test (base vs treatment
  measured under the *same* randomized setup, the F8 protocol's shape),
- :func:`mann_whitney_u` — the unpaired two-sample test (two independent
  pools of setups),
- :func:`rank_biserial` / :func:`cliffs_delta` — the matching effect
  sizes, so "significant" is always accompanied by "how big",
- :func:`hodges_lehmann` — the robust location estimate (median of
  Walsh averages) to report alongside the mean.

Both tests use the normal approximation with midrank tie handling and
the standard tie variance correction; the unit suite cross-checks the
p-values against scipy's ``method='approx'`` / ``'asymptotic'`` modes.
Degenerate inputs (empty samples, all-zero differences, all-tied pools)
raise :class:`~repro.core.errors.StatsError` instead of emitting a
meaningless p-value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._errors import StatsError
from repro.core.stats import normal_cdf


def rankdata(values: Sequence[float]) -> List[float]:
    """Midrank ranking (ties share the average of their rank range).

    The 1-based ranks scipy's ``rankdata(method='average')`` would
    assign, implemented here so the inference layer stays
    dependency-free.
    """
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def _tie_counts(values: Sequence[float]) -> List[int]:
    """Sizes of every tie group (groups of equal values), size >= 1."""
    counts: Dict[float, int] = {}
    for v in values:
        counts[v] = counts.get(v, 0) + 1
    return list(counts.values())


@dataclass(frozen=True)
class RankTestResult:
    """Outcome of a rank test: statistic, normal deviate, p-value.

    ``statistic`` is the raw rank statistic (W+ for the signed-rank
    test, U1 for Mann-Whitney); ``z`` its standardized form under the
    null; ``p_value`` the two-sided tail probability; ``n`` the
    effective sample size (zero differences are dropped by the
    signed-rank test); ``method`` the test's name for report rows.
    """

    statistic: float
    z: float
    p_value: float
    n: int
    method: str

    def significant(self, level: float = 0.95) -> bool:
        """True when the two-sided p-value rejects at ``level``."""
        return self.p_value < (1.0 - level)

    def summary(self) -> str:
        """One report line: method, statistic, z, p."""
        return (
            f"{self.method}: statistic={self.statistic:g} z={self.z:+.3f} "
            f"p={self.p_value:.4f} (n={self.n})"
        )


def _two_sided_p(z: float) -> float:
    """Two-sided normal tail probability for a deviate ``z``."""
    return min(1.0, 2.0 * (1.0 - normal_cdf(abs(z))))


def wilcoxon_signed_rank(
    x: Sequence[float], y: Optional[Sequence[float]] = None
) -> RankTestResult:
    """Wilcoxon signed-rank test (paired; null: symmetric about zero).

    With ``y`` given, tests the paired differences ``x - y``; alone,
    tests ``x`` against zero — pass log-speedups to test "speedup != 1"
    over matched setups.  Zero differences are dropped (Wilcoxon's
    original treatment); ties among the absolute differences get
    midranks and the tie-corrected variance.  Uses the two-sided normal
    approximation (no continuity correction) and reports W+ as the
    statistic.

    Raises :class:`StatsError` when no nonzero differences remain or
    the paired samples have different lengths.
    """
    if y is not None:
        if len(x) != len(y):
            raise StatsError(
                f"paired samples differ in length ({len(x)} vs {len(y)})"
            )
        diffs = [a - b for a, b in zip(x, y)]
    else:
        diffs = list(x)
    diffs = [d for d in diffs if d != 0.0]
    n = len(diffs)
    if n == 0:
        raise StatsError(
            "wilcoxon signed-rank needs at least one nonzero difference"
        )
    magnitudes = [abs(d) for d in diffs]
    ranks = rankdata(magnitudes)
    w_plus = sum(r for r, d in zip(ranks, diffs) if d > 0)
    mean = n * (n + 1) / 4.0
    variance = n * (n + 1) * (2 * n + 1) / 24.0
    variance -= sum(t ** 3 - t for t in _tie_counts(magnitudes)) / 48.0
    if variance <= 0.0:
        raise StatsError(
            "wilcoxon signed-rank variance degenerated to zero "
            f"(n={n}, all magnitudes tied)"
        )
    z = (w_plus - mean) / math.sqrt(variance)
    return RankTestResult(
        statistic=w_plus,
        z=z,
        p_value=_two_sided_p(z),
        n=n,
        method="wilcoxon-signed-rank",
    )


def mann_whitney_u(
    x: Sequence[float], y: Sequence[float]
) -> RankTestResult:
    """Mann-Whitney U test (unpaired; null: equal distributions).

    The two-sample rank test for *independent* pools of measurements —
    e.g. cycle samples from two machine models.  Midranks for ties, the
    standard tie-corrected variance, two-sided normal approximation, no
    continuity correction; reports U for the first sample.

    Raises :class:`StatsError` on an empty sample or when every value
    in both pools is identical (the variance degenerates to zero).
    """
    n1, n2 = len(x), len(y)
    if n1 == 0 or n2 == 0:
        raise StatsError(
            f"mann-whitney needs two non-empty samples, got {n1} and {n2}"
        )
    combined = list(x) + list(y)
    ranks = rankdata(combined)
    r1 = sum(ranks[:n1])
    u1 = r1 - n1 * (n1 + 1) / 2.0
    total = n1 + n2
    mean = n1 * n2 / 2.0
    tie_term = sum(t ** 3 - t for t in _tie_counts(combined))
    variance = (
        n1 * n2 / 12.0 * ((total + 1) - tie_term / (total * (total - 1)))
    )
    if variance <= 0.0:
        raise StatsError(
            "mann-whitney variance degenerated to zero "
            f"(all {total} values tied)"
        )
    z = (u1 - mean) / math.sqrt(variance)
    return RankTestResult(
        statistic=u1,
        z=z,
        p_value=_two_sided_p(z),
        n=total,
        method="mann-whitney-u",
    )


def rank_biserial(diffs: Sequence[float]) -> float:
    """Matched-pairs rank-biserial correlation — the effect size that
    accompanies the signed-rank test.

    ``(W+ - W-) / (n(n+1)/2)`` over the nonzero differences: +1 when
    every difference is positive, -1 when every one is negative, near 0
    when positives and negatives balance in rank mass.
    """
    nonzero = [d for d in diffs if d != 0.0]
    n = len(nonzero)
    if n == 0:
        return 0.0
    ranks = rankdata([abs(d) for d in nonzero])
    w_plus = sum(r for r, d in zip(ranks, nonzero) if d > 0)
    w_minus = sum(r for r, d in zip(ranks, nonzero) if d < 0)
    return (w_plus - w_minus) / (n * (n + 1) / 2.0)


def cliffs_delta(x: Sequence[float], y: Sequence[float]) -> float:
    """Cliff's delta — the unpaired ordinal effect size for two pools.

    ``(#{x > y} - #{x < y}) / (n1 * n2)`` over all cross pairs: +1 when
    every x exceeds every y, -1 for the reverse, 0 for full overlap.
    """
    if not x or not y:
        raise StatsError("cliffs delta needs two non-empty samples")
    gt = lt = 0
    for a in x:
        for b in y:
            if a > b:
                gt += 1
            elif a < b:
                lt += 1
    return (gt - lt) / (len(x) * len(y))


def hodges_lehmann(values: Sequence[float]) -> float:
    """One-sample Hodges-Lehmann estimator: the median of all Walsh
    averages ``(x_i + x_j)/2`` (i <= j).

    The location estimate paired with the signed-rank test — robust to
    the outliers and skew that drag an arithmetic mean around.
    """
    n = len(values)
    if n == 0:
        raise StatsError("hodges-lehmann needs a non-empty sample")
    walsh = sorted(
        (values[i] + values[j]) / 2.0
        for i in range(n)
        for j in range(i, n)
    )
    m = len(walsh)
    if m % 2 == 1:
        return walsh[m // 2]
    return 0.5 * (walsh[m // 2 - 1] + walsh[m // 2])


def paired_speedup_test(
    speedups: Sequence[float],
) -> Tuple[RankTestResult, float]:
    """The F8 protocol's paired nonparametric test: is the treatment's
    speedup distinguishable from 1.0 over matched random setups?

    Each speedup is a base/treatment ratio measured under one shared
    randomized setup, so the pairs are matched by construction; the
    test is the signed-rank test on log-speedups against zero (ratios
    compose multiplicatively, so the symmetric-under-null scale is the
    log scale).  Returns the test result and the matched-pairs
    rank-biserial effect size.

    Raises :class:`StatsError` for empty input, non-positive ratios, or
    all-exactly-1.0 samples (no evidence either way).
    """
    if not speedups:
        raise StatsError("paired speedup test needs a non-empty sample")
    if any(s <= 0.0 for s in speedups):
        raise StatsError("speedups must be positive ratios")
    logs = [math.log(s) for s in speedups]
    result = wilcoxon_signed_rank(logs)
    return result, rank_biserial(logs)
