"""Structured error taxonomy shared by every layer of the stack.

This is a *leaf* module: it imports nothing from :mod:`repro`, so the
arch/os/toolchain layers can raise taxonomy errors without importing
``repro.core`` (whose package ``__init__`` pulls in the whole experiment
stack and would create an import cycle).  The public face of the
taxonomy is :mod:`repro.core.errors`, which re-exports everything here.

Every failure mode of a measurement carries a **retryable / fatal**
classification, used by the sweep runner to decide between re-measuring
(transient infrastructure faults) and quarantining (real toolchain or
workload bugs).  The class attribute is the default; individual raise
sites may override it per instance (an injected internal compiler error
is retryable even though a malformed workload is not).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for every structured failure in the lab.

    Attributes:
        retryable: whether re-attempting the same measurement may
            succeed (transient fault) or is guaranteed to fail again
            (deterministic bug).  Class default, overridable per raise.
        context: free-form diagnostic mapping (workload, setup, path,
            record index, ...) attached at the raise site.
    """

    retryable: bool = False

    def __init__(
        self,
        message: str,
        *,
        retryable: Optional[bool] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        if retryable is not None:
            self.retryable = retryable
        self.context: Dict[str, Any] = dict(context) if context else {}


class BuildError(ReproError):
    """The compiler or linker failed to produce an executable.

    Fatal by default (a malformed workload stays malformed); raised with
    ``retryable=True`` for crash-style failures (an injected internal
    compiler error) where a rebuild may succeed.
    """

    retryable = False


class SimulationError(ReproError):
    """The simulated program performed an illegal operation.

    Traps (division by zero, wild return, runaway execution) are
    deterministic properties of the binary and input — fatal.  Counter
    corruption detected after a run is raised with ``retryable=True``.
    """

    retryable = False


class VerificationError(ReproError):
    """A simulated run produced the wrong answer.

    Retryable by default: in a fault-tolerant sweep a mismatch is first
    treated as possible transient corruption and re-measured; a
    *persistent* mismatch (a real miscompilation) exhausts its retries
    and is quarantined, which is exactly the paper-lab posture — never
    let a wrong answer masquerade as a performance result.
    """

    retryable = True


class RunTimeout(ReproError):
    """A measurement exceeded its cycle budget or wall-clock deadline."""

    retryable = True


class StatsError(ReproError, ValueError):
    """A statistical routine was handed a sample it cannot summarize
    honestly — fewer than two observations, zero variance, a level
    outside (0, 1).

    Fatal and loud by design: the alternative failure modes are a
    ``ZeroDivisionError`` deep in an interval formula or, worse, a
    zero-width "confidence" interval that lends false certainty to a
    degenerate sample (exactly the benchmarking crimes ``repro audit``
    exists to flag).  Also a ``ValueError`` so pre-taxonomy callers that
    guarded the old ad-hoc exceptions keep working.
    """

    retryable = False


class ArchiveCorruption(ReproError, ValueError):
    """A measurement archive or checkpoint journal failed validation.

    Carries the offending path and (when applicable) record index so a
    corrupted sweep can be repaired instead of silently dropped.  Also a
    ``ValueError`` for compatibility with pre-taxonomy callers that
    caught the load path's old ad-hoc exception.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        record: Optional[int] = None,
        retryable: Optional[bool] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        where = ""
        if path is not None:
            where = f"{path}: "
            if record is not None:
                where = f"{path}: record {record}: "
        super().__init__(where + message, retryable=retryable, context=context)
        self.path = path
        self.record = record


class StorageWriteError(ReproError):
    """A durable artifact (journal, archive, store entry) could not be
    written — ENOSPC, permission loss, a dying disk.

    Fatal by default: re-running the measurement does not make the disk
    bigger.  The sweep layers *degrade* around it instead of retrying —
    the store disables further writes, the journal falls back to memory
    — so one sick disk never costs a sweep its measurements.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        retryable: Optional[bool] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        where = f"{path}: " if path is not None else ""
        super().__init__(where + message, retryable=retryable, context=context)
        self.path = path


class JournalWriteError(StorageWriteError):
    """The checkpoint journal could not be written.

    Carries the journal path and the index of the record that failed to
    land, so a degraded sweep can report exactly where durability ended
    rather than surfacing a raw ``OSError`` traceback mid-sweep.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        record: Optional[int] = None,
        retryable: Optional[bool] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        if record is not None:
            message = f"record {record}: {message}"
        super().__init__(
            message, path=path, retryable=retryable, context=context
        )
        self.record = record


def is_retryable(exc: BaseException) -> bool:
    """The runner's classification: may re-attempting this succeed?

    Taxonomy errors answer for themselves; anything else (a stray
    ``KeyError`` deep in the substrate) is conservatively fatal —
    an unclassified failure should be looked at, not papered over.
    """
    if isinstance(exc, ReproError):
        return exc.retryable
    return False


def classify(exc: BaseException) -> str:
    """"retryable" or "fatal" — the two fates a failed measurement has."""
    return "retryable" if is_retryable(exc) else "fatal"
