"""Simulated-cycle flamegraphs from per-PC cycle attribution.

The engine's ``profile_pcs`` hook attributes every simulated cycle to a
static instruction; the linker's placement records say which function
(and module) owns each instruction.  Folding the two together yields a
collapsed-stack profile — Brendan Gregg's ``folded`` format, one
``module;function <weight>`` line per function — plus a d3-flame-graph
JSON tree, both exported by ``repro obs flame``.

Weights are **integer centicycles** (``round(cycles * 100)``): every
machine cost constant is a multiple of 0.01 cycles and a flat
``math.fsum`` over the per-PC profile reproduces the engine's cycle
counter exactly, so the folded lines sum *exactly* to
``100 * engine.cycles``.  That makes "the flamegraph accounts for every
simulated cycle" an integer equality CI can assert, not a tolerance.

:func:`diff` is the visual companion of
:mod:`repro.analysis.profilediff`: the same per-function deltas, named
identically, so the widest bar here is the ``culprit()`` there.

:func:`fold_trace` applies the same collapsed-stack idea to wall-clock
span traces (self-time per span path, integer microseconds) — host
telemetry, never measurement data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FlameDelta",
    "FlameFrame",
    "diff",
    "flame_tree",
    "fold_pc_cycles",
    "fold_trace",
    "folded_lines",
    "frames_for_archive",
    "profile_flame",
    "total_centicycles",
    "validate_fold",
]


@dataclass(frozen=True)
class FlameFrame:
    """One function's folded weight: where its cycles came to rest."""

    module: str
    function: str
    centicycles: int

    @property
    def cycles(self) -> float:
        return self.centicycles / 100.0

    @property
    def stack(self) -> str:
        """The collapsed-stack label, ``module;function``."""
        return f"{self.module};{self.function}"


@dataclass(frozen=True)
class FlameDelta:
    """One function's weight change between two folded profiles."""

    module: str
    function: str
    centi_a: int
    centi_b: int

    @property
    def delta_centicycles(self) -> int:
        return self.centi_b - self.centi_a

    @property
    def delta_cycles(self) -> float:
        return self.delta_centicycles / 100.0


def fold_pc_cycles(exe: Any, pc_cycles: Sequence[float]) -> List[FlameFrame]:
    """Fold a per-PC cycle profile into per-function flame frames.

    ``exe`` is the :class:`~repro.isa.program.Executable` the profile
    was taken on; its placement records must cover every instruction
    (validated via :func:`repro.toolchain.linker.function_ranges`).
    Raises ``ValueError`` when the profile's length does not match the
    executable — a mismatched pair silently misattributes cycles, so it
    must be loud.
    """
    from repro.toolchain.linker import function_ranges

    n = exe.num_instructions()
    if len(pc_cycles) != n:
        raise ValueError(
            f"pc profile has {len(pc_cycles)} entries but the executable "
            f"has {n} instructions; profile and build do not match"
        )
    frames: List[FlameFrame] = []
    for start, end, pf in function_ranges(exe):
        centi = int(round(math.fsum(pc_cycles[start:end]) * 100))
        frames.append(FlameFrame(pf.module, pf.name, centi))
    return frames


def total_centicycles(frames: Sequence[FlameFrame]) -> int:
    return sum(f.centicycles for f in frames)


def validate_fold(
    frames: Sequence[FlameFrame], engine_cycles: float
) -> List[str]:
    """Check the fold is a partition of the run's cycles (empty == ok).

    Exact integer comparison: see the module docstring for why no
    tolerance is needed.
    """
    errors: List[str] = []
    expected = int(round(engine_cycles * 100))
    got = total_centicycles(frames)
    if got != expected:
        errors.append(
            f"folded weights sum to {got} centicycles but the engine "
            f"reported {expected}; the flamegraph is not a partition of "
            f"the run's cycles"
        )
    seen: Dict[str, str] = {}
    for f in frames:
        if f.function in seen:
            errors.append(
                f"function {f.function!r} appears in both "
                f"{seen[f.function]!r} and {f.module!r}"
            )
        seen[f.function] = f.module
        if f.centicycles < 0:
            errors.append(f"function {f.function!r} has negative weight")
    return errors


def folded_lines(
    frames: Sequence[FlameFrame], keep_zero: bool = False
) -> List[str]:
    """Collapsed-stack lines (``module;function <centicycles>``).

    Sorted by stack label — deterministic output so two identical runs
    produce byte-identical folded files.  Zero-weight functions are
    dropped by default (flamegraph convention; they cannot change the
    cycle-accounting sum).
    """
    kept = [f for f in frames if keep_zero or f.centicycles != 0]
    return [
        f"{f.stack} {f.centicycles}"
        for f in sorted(kept, key=lambda f: (f.module, f.function))
    ]


def flame_tree(
    frames: Sequence[FlameFrame], name: str = "all"
) -> Dict[str, Any]:
    """A d3-flame-graph JSON tree: root -> module -> function.

    Children are sorted by name; values are integer centicycles, and
    every interior node's value equals the sum of its children — the
    same partition property :func:`validate_fold` checks.
    """
    modules: Dict[str, List[FlameFrame]] = {}
    for f in frames:
        modules.setdefault(f.module, []).append(f)
    children = []
    for module in sorted(modules):
        funcs = sorted(modules[module], key=lambda f: f.function)
        children.append(
            {
                "name": module,
                "value": sum(f.centicycles for f in funcs),
                "children": [
                    {"name": f.function, "value": f.centicycles}
                    for f in funcs
                ],
            }
        )
    return {
        "name": name,
        "value": total_centicycles(frames),
        "unit": "centicycles",
        "children": children,
    }


def diff(
    frames_a: Sequence[FlameFrame], frames_b: Sequence[FlameFrame]
) -> List[FlameDelta]:
    """Per-function weight deltas, largest |delta| first.

    Functions are matched by name (the profiles must come from setups
    sharing a build, exactly like
    :func:`repro.analysis.profilediff.profile_diff`); the first entry is
    the culprit and names the same function ``ProfileDiff.culprit()``
    does, since both rank the identical per-function cycle deltas.
    """
    a = {f.function: f for f in frames_a}
    b = {f.function: f for f in frames_b}
    deltas = [
        FlameDelta(
            module=(a.get(name) or b[name]).module,
            function=name,
            centi_a=a[name].centicycles if name in a else 0,
            centi_b=b[name].centicycles if name in b else 0,
        )
        for name in set(a) | set(b)
    ]
    return sorted(
        deltas, key=lambda d: (-abs(d.delta_centicycles), d.function)
    )


# -- producing profiles ------------------------------------------------------


def profile_flame(
    experiment: Any, setup: Any
) -> Tuple[List[FlameFrame], Any]:
    """Profile ``experiment`` under ``setup`` and fold the result.

    Returns ``(frames, run_result)`` — the result carries the engine's
    counters so callers can :func:`validate_fold` against
    ``result.counters.cycles``.
    """
    result = experiment.profile(setup, functions=False, pcs=True)
    exe = experiment.build(setup)
    return fold_pc_cycles(exe, result.pc_cycles), result


def frames_for_archive(
    path: str, index: int = 0
) -> Tuple[Any, Any, List[FlameFrame], Any]:
    """Re-derive a flamegraph from an archived measurement.

    Archives store per-function cycles but not the per-PC profile, so
    — exactly like ``repro verify-archive`` — the measurement identity
    (workload, size, seed, setup) is re-instantiated and re-profiled;
    determinism makes the re-derived profile the archived run's profile.
    Returns ``(experiment, setup, frames, run_result)``.
    """
    from repro import workloads
    from repro.core.errors import ArchiveCorruption
    from repro.core.experiment import Experiment
    from repro.core.session import load_measurements

    archived = load_measurements(path)
    if not archived:
        raise ArchiveCorruption(f"{path}: archive is empty")
    if not (0 <= index < len(archived)):
        raise IndexError(
            f"archive {path} holds measurements 0..{len(archived) - 1}, "
            f"asked for {index}"
        )
    m = archived[index]
    exp = Experiment(workloads.get(m.workload), size=m.size, seed=m.seed)
    frames, result = profile_flame(exp, m.setup)
    return exp, m.setup, frames, result


# -- wall-clock span folding -------------------------------------------------


def fold_trace(data: Dict[str, Any]) -> List[str]:
    """Collapsed stacks from a Chrome-trace artifact (span *self* time).

    Each span path becomes a stack (``/`` -> ``;``); its weight is the
    span's duration minus its children's, in integer microseconds, so
    the folded total equals the trace's root wall time.  Same-path spans
    aggregate, which is what collapsed-stack tooling expects.
    """
    total: Dict[str, float] = {}
    child_total: Dict[str, float] = {}
    for ev in data.get("traceEvents", ()):
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        path = (ev.get("args") or {}).get("path")
        if not isinstance(path, str) or not path:
            continue
        dur = float(ev.get("dur", 0.0))
        total[path] = total.get(path, 0.0) + dur
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            child_total[parent] = child_total.get(parent, 0.0) + dur
    lines = []
    for path in sorted(total):
        self_us = int(round(max(0.0, total[path] - child_total.get(path, 0.0))))
        if self_us:
            lines.append(f"{path.replace('/', ';')} {self_us}")
    return lines


def render_flame(
    frames: Sequence[FlameFrame],
    top: Optional[int] = None,
    title: str = "",
) -> str:
    """A terminal flamegraph: per-function bars scaled to total cycles."""
    from repro.core.report import render_table

    totals = total_centicycles(frames)
    ranked = sorted(frames, key=lambda f: (-f.centicycles, f.function))
    if top is not None:
        ranked = ranked[:top]
    width = 30
    rows = []
    for f in ranked:
        share = f.centicycles / totals if totals else 0.0
        rows.append(
            [
                f.function,
                f.module,
                f"{f.cycles:.2f}",
                f"{share * 100:.2f}%",
                "#" * max(1 if f.centicycles else 0, int(share * width)),
            ]
        )
    return render_table(
        ["function", "module", "cycles", "share", "flame"],
        rows,
        title=title or f"flame: {totals / 100.0:.2f} cycles",
    )
