"""Hierarchical tracing spans with deterministic identities.

The paper's lesson is that conclusions die when the measurement setup is
invisible; the same is true of the measurement *process*.  A
:class:`Tracer` records a tree of timed spans — ``compile`` with nested
``parse``/``opt``/``codegen``/``link``, ``load``, ``run``, per-setup
sweep spans — so a surprising sweep can be opened up and inspected
instead of re-run under a debugger.

Design constraints:

- **deterministic identities** — a span's id is a hash of its *path*
  (``sweep#0/setup#3/run#0``), which depends only on the nesting
  structure, never on wall-clock time or process ids.  Two runs of the
  same pipeline produce the same span tree with the same ids, which is
  what the determinism tests assert.
- **near-zero overhead when disabled** — the module-level
  :func:`span`/:func:`instant` helpers dispatch through the *active*
  tracer, which defaults to a :class:`NullTracer` whose ``span()``
  returns one shared no-op context manager.  No allocation, no clock
  read, no branches in the engine's hot loop (the engine is never traced
  per-instruction; spans wrap whole pipeline stages).
- **standard output formats** — :meth:`Tracer.to_chrome_trace` emits the
  Chrome ``trace_event`` JSON object format, loadable directly in
  ``chrome://tracing`` or https://ui.perfetto.dev; :meth:`Tracer.to_json`
  is the same payload (the object format tolerates extra keys, so one
  file serves both the browser and ``repro obs``).

Usage::

    from repro.obs import trace

    tracer = trace.Tracer()
    with trace.tracing(tracer):
        with trace.span("compile", unit="main") as sp:
            ...
            sp.set(instructions=123)
    tracer.write("trace.json")          # open in Perfetto
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Format marker carried in the trace file's ``otherData``.
TRACE_FORMAT = "repro-trace-v1"


def span_id_for_path(path: str) -> str:
    """Deterministic 12-hex-digit id for a span path."""
    return hashlib.sha256(path.encode()).hexdigest()[:12]


class Span:
    """One timed, attributed node of the span tree.

    Spans are created by :meth:`Tracer.span` and used as context
    managers; :meth:`set` attaches attributes (e.g. the simulated-cycle
    attribution of a ``run`` span) at any point before exit.
    """

    __slots__ = (
        "name",
        "category",
        "path",
        "span_id",
        "parent_id",
        "depth",
        "start",
        "duration",
        "attrs",
        "_tracer",
        "_child_counts",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        path: str,
        parent_id: Optional[str],
        depth: int,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.path = path
        self.span_id = span_id_for_path(path)
        self.parent_id = parent_id
        self.depth = depth
        self.start = 0.0
        self.duration: Optional[float] = None
        self.attrs = attrs
        self._child_counts: Dict[str, int] = {}

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cat": self.category,
            "id": self.span_id,
            "parent": self.parent_id,
            "path": self.path,
            "depth": self.depth,
            "start": self.start,
            "dur": self.duration,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        dur = f"{self.duration:.6f}s" if self.duration is not None else "open"
        return f"Span({self.path}, {dur})"


class Tracer:
    """Collects a tree of spans plus instant events.

    Args:
        clock: monotonic time source (injectable so tests can assert
            byte-identical traces).
        label: human-facing name for the traced process (shown as the
            process name in Chrome/Perfetto).
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, label: str = "repro") -> None:
        self._clock = clock
        self.label = label
        self._epoch = clock()
        self._stack: List[Span] = []
        self._root_counts: Dict[str, int] = {}
        self.spans: List[Span] = []
        self.instants: List[Dict[str, Any]] = []

    # -- recording --------------------------------------------------------

    def span(self, name: str, category: str = "repro", **attrs: Any) -> Span:
        """Create (but do not start) a span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            counts = self._root_counts
            parent_path = ""
            parent_id = None
            depth = 0
        else:
            counts = parent._child_counts
            parent_path = parent.path + "/"
            parent_id = parent.span_id
            depth = parent.depth + 1
        k = counts.get(name, 0)
        counts[name] = k + 1
        path = f"{parent_path}{name}#{k}"
        return Span(self, name, category, path, parent_id, depth, dict(attrs))

    def instant(self, name: str, category: str = "repro", **attrs: Any) -> None:
        """Record a zero-duration event at the current nesting point."""
        parent = self._stack[-1] if self._stack else None
        self.instants.append(
            {
                "name": name,
                "cat": category,
                "parent": parent.span_id if parent is not None else None,
                "ts": self._clock() - self._epoch,
                "attrs": dict(attrs),
            }
        )

    def _push(self, span: Span) -> None:
        span.start = self._clock() - self._epoch
        self._stack.append(span)
        self.spans.append(span)  # start order == deterministic record order

    def _pop(self, span: Span) -> None:
        span.duration = (self._clock() - self._epoch) - span.start
        # Tolerate mismatched exits instead of corrupting the stack.
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.duration is None:
                dangling.duration = span.duration
        if self._stack:
            self._stack.pop()

    # -- merging ----------------------------------------------------------

    def graft(
        self,
        records: List[Dict[str, Any]],
        parent: Optional[Span] = None,
        alias: Optional[str] = None,
        offset: Optional[float] = None,
    ) -> List[Span]:
        """Re-root span records from another tracer under this one.

        Worker processes trace each task into their own tracer and ship
        ``to_dicts()`` records back with the result; the parent grafts
        them under its sweep span so one trace file shows the whole
        sweep.  Paths are rewritten (``parent.path`` + ``alias`` prefix)
        and span ids re-derived from the new paths, so grafted ids stay
        deterministic and collision-free across workers; ``alias`` is a
        pure path segment (it gets no span of its own).  Distributed
        sweeps pass host-qualified aliases (``host:port/setup@i.a``),
        which work the same way: every "/" adds a path level, so one
        trace file attributes each attempt to the machine that ran it.
        Worker clocks are not comparable to ours, so ``offset`` defaults
        to placing the *end* of the grafted batch at this tracer's
        current time.
        """
        if not records:
            return []
        if offset is None:
            latest = max(
                r["start"] + (r["dur"] or 0.0) for r in records
            )
            offset = (self._clock() - self._epoch) - latest
        base_path = parent.path + "/" if parent is not None else ""
        prefix = alias + "/" if alias else ""
        base_depth = parent.depth + 1 if parent is not None else 0
        grafted: List[Span] = []
        for rec in records:
            path = f"{base_path}{prefix}{rec['path']}"
            if rec["depth"] == 0:
                parent_id = parent.span_id if parent is not None else None
            else:
                parent_id = span_id_for_path(path.rsplit("/", 1)[0])
            sp = Span(
                self,
                rec["name"],
                rec["cat"],
                path,
                parent_id,
                base_depth + rec["depth"],
                dict(rec["attrs"]),
            )
            sp.start = offset + rec["start"]
            sp.duration = rec["dur"]
            self.spans.append(sp)
            grafted.append(sp)
        return grafted

    # -- export -----------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Span records in start order (open spans have ``dur: None``)."""
        return [s.to_dict() for s in self.spans]

    def to_chrome_trace(self, pid: int = 1) -> Dict[str, Any]:
        """The Chrome ``trace_event`` object format (Perfetto-loadable)."""
        events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 1,
                "args": {"name": self.label},
            }
        ]
        for s in self.spans:
            dur = s.duration if s.duration is not None else 0.0
            events.append(
                {
                    "ph": "X",
                    "name": s.name,
                    "cat": s.category,
                    "ts": s.start * 1e6,
                    "dur": dur * 1e6,
                    "pid": pid,
                    "tid": 1,
                    "args": {**s.attrs, "id": s.span_id, "path": s.path},
                }
            )
        for ev in self.instants:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": ev["name"],
                    "cat": ev["cat"],
                    "ts": ev["ts"] * 1e6,
                    "pid": pid,
                    "tid": 1,
                    "args": dict(ev["attrs"]),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"format": TRACE_FORMAT, "label": self.label},
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_chrome_trace(), indent=indent)

    def write(self, path: str) -> None:
        """Write the Chrome-trace JSON file."""
        with open(path, "w") as fh:
            fh.write(self.to_json())

    def __repr__(self) -> str:
        return f"Tracer({self.label!r}, {len(self.spans)} spans)"


# -- the disabled path -------------------------------------------------------


class _NullSpan:
    """Shared no-op span: the entire cost of disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class NullTracer:
    """Recorder that records nothing (the default)."""

    enabled = False
    spans: tuple = ()
    instants: tuple = ()

    def span(self, name: str, category: str = "repro", **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, category: str = "repro", **attrs: Any) -> None:
        return None

    def graft(self, records, parent=None, alias=None, offset=None) -> list:
        return []


NULL_TRACER = NullTracer()

_active = NULL_TRACER


def active():
    """The tracer pipeline instrumentation currently reports to."""
    return _active


def install(tracer) -> Any:
    """Install ``tracer`` (None restores the no-op recorder); returns the
    previously active tracer."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer) -> Iterator[Any]:
    """Scope ``tracer`` as the active recorder (None is a no-op scope)."""
    previous = install(tracer)
    try:
        yield _active
    finally:
        install(previous)


def span(name: str, category: str = "repro", **attrs: Any):
    """Open a span on the active tracer (no-op when tracing is off)."""
    return _active.span(name, category, **attrs)


def instant(name: str, category: str = "repro", **attrs: Any) -> None:
    """Record an instant event on the active tracer."""
    _active.instant(name, category, **attrs)
