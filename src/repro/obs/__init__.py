"""repro.obs — the observability layer.

Makes every run self-describing, in four pieces:

- :mod:`~repro.obs.trace` — hierarchical tracing spans with
  deterministic ids, exported as Chrome ``trace_event`` JSON
  (``chrome://tracing`` / Perfetto);
- :mod:`~repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms, snapshotted into sweep reports, journals and
  manifests;
- :mod:`~repro.obs.manifest` — run provenance manifests: toolchain
  profile, machine config, setup parameters, seeds, fault plan, package
  version, artifact checksums;
- :mod:`~repro.obs.progress` — pluggable live sweep progress reporters
  (live TTY line, structured lines, or silence).

:mod:`~repro.obs.inspect` (imported on demand) summarizes, merges,
diffs and validates the trace and manifest artifacts; see
docs/observability.md for formats and workflows.

Everything defaults to *off*: the active tracer is a no-op recorder and
the sweep runner's default reporter ignores every event, so the
measurement substrate is unchanged until a caller opts in.
"""

from repro.obs import metrics, progress, trace
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    environment_fingerprint,
    file_checksum,
    load_manifest,
    save_manifest,
    text_checksum,
    validate_manifest,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.progress import (
    NULL_PROGRESS,
    LineProgress,
    LiveProgress,
    ProgressReporter,
    for_stream,
)
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_FORMAT,
    NullTracer,
    Span,
    Tracer,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LineProgress",
    "LiveProgress",
    "MANIFEST_FORMAT",
    "MetricsRegistry",
    "NULL_PROGRESS",
    "NULL_TRACER",
    "NullTracer",
    "ProgressReporter",
    "Span",
    "TRACE_FORMAT",
    "Tracer",
    "build_manifest",
    "environment_fingerprint",
    "file_checksum",
    "for_stream",
    "load_manifest",
    "metrics",
    "progress",
    "save_manifest",
    "text_checksum",
    "trace",
    "tracing",
    "validate_manifest",
]
