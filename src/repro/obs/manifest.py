"""Run provenance manifests: "exactly how was this measured?".

The paper's survey found that of 133 papers, none reported enough of
their experimental setup to reproduce it; van der Kouwe et al. (2018)
list missing setup description among the most common benchmarking
crimes.  A manifest is the antidote: every sweep (and every archived
benchmark result) emits a JSON document naming the package version, the
host, the toolchain profiles, the machine models, every setup parameter
(env size, link order, alignments), every seed (input, backoff, fault),
the fault plan, the runner policy, a metrics snapshot, and SHA-256
checksums of the artifacts it produced.  Any archived result can then
answer the reproduction question without the original author.

Manifests are *descriptive*, not canonical: they carry wall-clock
timestamps and host fingerprints by design, so they are never compared
byte-for-byte (that is what archive record checksums are for).
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

#: Format marker for manifest files.
MANIFEST_FORMAT = "repro-manifest-v1"

#: Keys every valid manifest must carry.
REQUIRED_KEYS = (
    "format",
    "created_unix",
    "package",
    "environment",
    "experiment",
    "setups",
    "seeds",
    "fault_plan",
    "artifacts",
)


def environment_fingerprint() -> Dict[str, str]:
    """The host half of provenance: interpreter and platform identity."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "byteorder": sys.byteorder,
    }


def file_checksum(path: str) -> str:
    """SHA-256 of a file's bytes (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def text_checksum(text: str) -> str:
    """SHA-256 of a text artifact (UTF-8)."""
    return hashlib.sha256(text.encode()).hexdigest()


def _setup_entry(setup) -> Dict[str, Any]:
    from repro.core.session import setup_to_dict

    entry = setup_to_dict(setup)
    entry["describe"] = setup.describe()
    return entry


def build_manifest(
    experiment=None,
    setups: Sequence = (),
    runner_config=None,
    fault_plan=None,
    report=None,
    metrics: Optional[Dict[str, Any]] = None,
    artifacts: Optional[Dict[str, str]] = None,
    hosts: Optional[Sequence[Dict[str, Any]]] = None,
    store=None,
    perf: Optional[Dict[str, Any]] = None,
    stats: Optional[Dict[str, Any]] = None,
    audit: Optional[Dict[str, Any]] = None,
    note: str = "",
) -> Dict[str, Any]:
    """Assemble a provenance manifest for one run or sweep.

    Args:
        experiment: the :class:`~repro.core.experiment.Experiment`
            measured (workload/input/seed identity), or None for
            experiment-free artifacts.
        setups: every :class:`~repro.core.setup.ExperimentalSetup`
            measured, in request order.
        runner_config: the :class:`~repro.core.runner.RunnerConfig`
            executed under, if any.
        fault_plan: the :class:`~repro.faults.FaultPlan` injected, if any.
        report: the :class:`~repro.core.runner.SweepReport`, if any.
        metrics: a metrics registry snapshot
            (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`).
        artifacts: artifact path -> SHA-256 checksum.
        hosts: for distributed sweeps, the per-agent provenance from
            :attr:`~repro.core.runner.SweepRunner.hosts_served` — one
            entry per agent address (hostname, pid, agent version, jobs,
            results served, sessions).  The ``environment`` fingerprint
            describes only the coordinator; this names every machine
            that actually produced a number.
        store: the :class:`repro.store.MeasurementStore` the sweep ran
            through, if any; its key-scheme version, engine fingerprint,
            and hit/miss tallies land in a ``store`` section, so an
            archived result records which numbers were re-computed and
            which were served from the store.
        perf: a performance-telemetry snapshot
            (:func:`repro.obs.perf.snapshot` — engine self-profiling
            counters and wall timings).  Wall-clock facts belong here,
            in the manifest, never in canonical report JSON.
        stats: the statistical-inference section
            (:meth:`repro.stats.SpeedupAnalysis.to_dict` — raw
            speedups, labeled intervals, nonparametric test results,
            the sample-size recommendation).  This is the section
            ``repro audit`` recomputes claims from.
        audit: an audit verdict (:meth:`repro.audit.AuditResult.to_dict`)
            recorded as provenance — which crimes, if any, a prior
            ``repro audit --record`` run found in this document.
        note: free-form description.
    """
    from dataclasses import asdict

    from repro import __version__

    setups = list(setups)
    manifest: Dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "created_unix": time.time(),
        "note": note,
        "package": {"name": "repro", "version": __version__},
        "environment": environment_fingerprint(),
    }

    if experiment is not None:
        manifest["experiment"] = {
            "workload": experiment.workload.name,
            "size": experiment.size,
            "seed": experiment.seed,
            "verify": experiment.verify,
        }
    else:
        manifest["experiment"] = None

    manifest["setups"] = [_setup_entry(s) for s in setups]
    manifest["toolchain"] = {
        "profiles": sorted({s.compiler for s in setups}),
        "opt_levels": sorted({s.opt_level for s in setups}),
        "function_alignments": sorted({s.function_alignment for s in setups}),
    }
    manifest["machines"] = sorted({s.machine_name for s in setups})

    seeds: Dict[str, Any] = {}
    if experiment is not None:
        seeds["input"] = experiment.seed
    if runner_config is not None:
        seeds["backoff"] = runner_config.backoff_seed
    if fault_plan is not None:
        seeds["faults"] = fault_plan.seed
    manifest["seeds"] = seeds

    if runner_config is not None:
        manifest["runner"] = {
            "jobs": runner_config.jobs,
            "timeout": runner_config.timeout,
            "max_cycles": runner_config.max_cycles,
            "max_retries": runner_config.max_retries,
            "backoff_base": runner_config.backoff_base,
            "backoff_seed": runner_config.backoff_seed,
            "heartbeat_interval": runner_config.heartbeat_interval,
            "hang_timeout": runner_config.hang_timeout,
            "max_respawns": runner_config.max_respawns,
            "trace_sample": getattr(runner_config, "trace_sample", 1),
            "timeline_interval": getattr(
                runner_config, "timeline_interval", 0.0
            ),
        }
    else:
        manifest["runner"] = None

    manifest["fault_plan"] = asdict(fault_plan) if fault_plan is not None else None

    if experiment is not None and setups and runner_config is not None:
        from repro.core.runner import sweep_id

        manifest["sweep_id"] = sweep_id(
            experiment.workload.name, experiment.size, experiment.seed, setups
        )

    manifest["report"] = report.to_dict() if report is not None else None
    manifest["metrics"] = metrics if metrics is not None else {}
    manifest["artifacts"] = dict(artifacts) if artifacts else {}
    manifest["hosts"] = [dict(h) for h in hosts] if hosts else []
    manifest["store"] = store.provenance() if store is not None else None
    manifest["perf"] = perf
    manifest["stats"] = stats
    manifest["audit"] = audit
    return manifest


def save_manifest(path: str, manifest: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)


def load_manifest(path: str) -> Dict[str, Any]:
    """Read and validate a manifest file.

    Raises :class:`~repro.core.errors.ArchiveCorruption` on invalid JSON
    or a document that fails :func:`validate_manifest`.
    """
    from repro._errors import ArchiveCorruption

    try:
        with open(path) as fh:
            data = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ArchiveCorruption(
            f"manifest is not valid JSON: {exc}", path=path
        ) from exc
    errors = validate_manifest(data)
    if errors:
        raise ArchiveCorruption(
            "invalid manifest: " + "; ".join(errors), path=path
        )
    return data


def validate_manifest(data: Any) -> List[str]:
    """Schema check; returns a list of problems (empty == valid)."""
    errors: List[str] = []
    if not isinstance(data, dict):
        return ["manifest root is not an object"]
    if data.get("format") != MANIFEST_FORMAT:
        errors.append(
            f"format is {data.get('format')!r}, expected {MANIFEST_FORMAT!r}"
        )
    for key in REQUIRED_KEYS:
        if key not in data:
            errors.append(f"missing required key {key!r}")
    if errors:
        return errors
    if not isinstance(data["created_unix"], (int, float)):
        errors.append("created_unix is not a number")
    pkg = data["package"]
    if not (isinstance(pkg, dict) and "name" in pkg and "version" in pkg):
        errors.append("package must name the package and its version")
    env = data["environment"]
    if not (isinstance(env, dict) and "python" in env and "platform" in env):
        errors.append("environment must carry python and platform")
    if not isinstance(data["setups"], list):
        errors.append("setups is not a list")
    else:
        for i, entry in enumerate(data["setups"]):
            if not isinstance(entry, dict):
                errors.append(f"setup {i} is not an object")
                continue
            for key in ("machine", "compiler", "opt_level", "env_bytes"):
                if key not in entry:
                    errors.append(f"setup {i} missing {key!r}")
    if not isinstance(data["seeds"], dict):
        errors.append("seeds is not an object")
    if data["fault_plan"] is not None and not isinstance(
        data["fault_plan"], dict
    ):
        errors.append("fault_plan must be null or an object")
    if not isinstance(data["artifacts"], dict):
        errors.append("artifacts is not an object")
    else:
        for path, checksum in data["artifacts"].items():
            if not (isinstance(checksum, str) and len(checksum) == 64):
                errors.append(f"artifact {path!r} checksum is not SHA-256 hex")
    hosts = data.get("hosts", [])
    if not isinstance(hosts, list):
        errors.append("hosts is not a list")
    else:
        for i, entry in enumerate(hosts):
            if not isinstance(entry, dict) or "host" not in entry:
                errors.append(f"hosts[{i}] must be an object naming its host")
    # Optional (added after v1 manifests shipped): absent and null both
    # mean "no store"; when present it must name its key scheme.
    store = data.get("store")
    if store is not None:
        if not isinstance(store, dict) or "scheme" not in store:
            errors.append("store must be null or an object naming its scheme")
    # Optional perf telemetry: absent and null both mean "not collected";
    # when present it must carry the engine self-profile.
    perf = data.get("perf")
    if perf is not None:
        if not isinstance(perf, dict) or not isinstance(
            perf.get("engine"), dict
        ):
            errors.append(
                "perf must be null or an object carrying an engine profile"
            )
        elif "opcode_classes" not in perf["engine"]:
            errors.append("perf.engine lacks opcode_classes")
    # Optional statistical-inference section: absent and null both mean
    # "no statistical claim recorded"; when present it must carry the
    # raw sample so an auditor can recompute the claims.
    stats = data.get("stats")
    if stats is not None:
        if not isinstance(stats, dict) or not isinstance(
            stats.get("speedups"), list
        ):
            errors.append(
                "stats must be null or an object carrying the raw "
                "speedups list"
            )
        elif not isinstance(stats.get("intervals", []), list):
            errors.append("stats.intervals is not a list")
    # Optional audit verdict (provenance of a prior `repro audit --record`).
    audit = data.get("audit")
    if audit is not None:
        if not isinstance(audit, dict) or "findings" not in audit:
            errors.append(
                "audit must be null or an object carrying its findings"
            )
    return errors
