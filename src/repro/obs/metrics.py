"""A process-wide registry of counters, gauges and histograms.

Where spans (:mod:`repro.obs.trace`) answer "what happened, in what
order, and how long did it take?", metrics answer "how much, in total?":
compiles performed vs served from cache, engine instructions retired and
retirement rate, sweep retries and quarantines.  Snapshots land in
:class:`~repro.core.runner.SweepReport`, checkpoint journals, provenance
manifests and benchmark sidecars, so every published artifact carries
the counters that produced it.

Metrics come in two determinism classes, and consumers must keep them
apart:

- **counters of events** (builds, cache hits, retries) are deterministic
  for a deterministic pipeline — safe to include in byte-identical
  reports;
- **timings** (``engine.run_seconds``, ``engine.ips``) are wall-clock
  facts about one host — they belong in manifests and sidecars, never in
  canonical report JSON.

The module keeps one default registry; sweep-scoped accounting uses a
private :class:`MetricsRegistry` instance instead of resetting the
global one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Union

Number = Union[int, float]


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins value (e.g. current retirement rate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary of observed values (count/total/min/max)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Named metrics, created on first use.

    A name is owned by the first kind that claims it; asking for the same
    name as a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, kind) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metric values, grouped by kind, names sorted."""
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.summary()
        return out

    def counters(self) -> Dict[str, Number]:
        """Just the counter values (the deterministic class)."""
        return {
            name: m.value
            for name, m in sorted(self._metrics.items())
            if isinstance(m, Counter)
        }

    def reset(self) -> None:
        self._metrics.clear()

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


_default = MetricsRegistry()
_active = _default


def registry() -> MetricsRegistry:
    """The registry pipeline instrumentation currently reports to."""
    return _active


def set_registry(reg: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Swap the active registry (None restores the process default);
    returns the previously active registry."""
    global _active
    previous = _active
    _active = reg if reg is not None else _default
    return previous


@contextmanager
def scoped(reg: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scope a (fresh by default) registry as the active one."""
    reg = reg if reg is not None else MetricsRegistry()
    previous = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(previous)


def counter(name: str) -> Counter:
    return _active.counter(name)


def gauge(name: str) -> Gauge:
    return _active.gauge(name)


def histogram(name: str) -> Histogram:
    return _active.histogram(name)
