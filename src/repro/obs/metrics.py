"""A process-wide registry of counters, gauges and histograms.

Where spans (:mod:`repro.obs.trace`) answer "what happened, in what
order, and how long did it take?", metrics answer "how much, in total?":
compiles performed vs served from cache, engine instructions retired and
retirement rate, sweep retries and quarantines.  Snapshots land in
:class:`~repro.core.runner.SweepReport`, checkpoint journals, provenance
manifests and benchmark sidecars, so every published artifact carries
the counters that produced it.

Metrics come in two determinism classes, and consumers must keep them
apart:

- **counters of events** (builds, cache hits, retries) are deterministic
  for a deterministic pipeline — safe to include in byte-identical
  reports;
- **timings** (``engine.run_seconds``, ``engine.ips``) are wall-clock
  facts about one host — they belong in manifests and sidecars, never in
  canonical report JSON.

The module keeps one default registry; sweep-scoped accounting uses a
private :class:`MetricsRegistry` instance instead of resetting the
global one.
"""

from __future__ import annotations

import collections
import math
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, Optional, Union

Number = Union[int, float]

#: Geometric bin resolution for histogram quantiles: 8 bins per octave
#: (~9% relative width), so a quantile estimate is at most one bin edge
#: away from the true sample value.
_BINS_PER_OCTAVE = 8


def _bin_index(value: float) -> int:
    """Deterministic geometric bin for ``value > 0``.

    Bin ``k`` covers ``[2**(k/8), 2**((k+1)/8))``; the float-log guess is
    corrected against the exact edge so boundary values land consistently
    on every platform.
    """
    k = int(math.floor(math.log2(value) * _BINS_PER_OCTAVE))
    while 2.0 ** ((k + 1) / _BINS_PER_OCTAVE) <= value:
        k += 1
    while 2.0 ** (k / _BINS_PER_OCTAVE) > value:
        k -= 1
    return k


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins value (e.g. current retirement rate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary of observed values with fixed-bin quantiles.

    Values are tallied into deterministic geometric bins (8 per octave;
    non-positive values get a dedicated bucket), so :meth:`quantile` is a
    pure function of the observed multiset — no sample list is retained
    and two runs observing the same values report identical summaries.
    The estimate returned is the upper edge of the bin holding the rank,
    clamped to the observed ``[min, max]``; for a window of identical
    values it is therefore exact.

    With ``window=N`` the histogram is *rolling*: only the most recent
    ``N`` observations count (the supervisor's adaptive hang-timeout
    uses this for its rolling p95; see
    :meth:`~repro.core.supervisor.SupervisedPool.effective_hang_timeout`).
    """

    __slots__ = (
        "name", "count", "total", "min", "max", "_bins", "_low",
        "_window", "_samples",
    )

    def __init__(self, name: str, window: Optional[int] = None) -> None:
        if window is not None and window < 1:
            raise ValueError(f"histogram window must be >= 1, got {window}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._bins: Dict[int, int] = {}
        self._low = 0  # observations <= 0 (no geometric bin)
        self._window = window
        self._samples: Optional[Deque[float]] = (
            collections.deque() if window is not None else None
        )

    def observe(self, value: Number) -> None:
        value = float(value)
        if self._samples is not None:
            assert self._window is not None
            if len(self._samples) >= self._window:
                self._evict(self._samples.popleft())
            self._samples.append(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value > 0.0:
            k = _bin_index(value)
            self._bins[k] = self._bins.get(k, 0) + 1
        else:
            self._low += 1

    def extend(self, values) -> None:
        """Observe every value in ``values``."""
        for value in values:
            self.observe(value)

    def clear(self) -> None:
        """Forget everything observed so far."""
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._bins.clear()
        self._low = 0
        if self._samples is not None:
            self._samples.clear()

    def _evict(self, value: float) -> None:
        """Roll one observation out of a windowed histogram."""
        self.count -= 1
        self.total -= value
        if value > 0.0:
            k = _bin_index(value)
            remaining = self._bins.get(k, 0) - 1
            if remaining > 0:
                self._bins[k] = remaining
            else:
                self._bins.pop(k, None)
        else:
            self._low -= 1
        if self._samples:
            if value == self.min:
                self.min = min(self._samples)
            if value == self.max:
                self.max = max(self._samples)
        else:
            self.min = self.max = None
            self.total = 0.0
            self.count = 0

    @property
    def samples(self) -> tuple:
        """The current window's raw observations (windowed mode only)."""
        if self._samples is None:
            raise TypeError(
                f"histogram {self.name!r} has no window; raw samples are "
                "not retained"
            )
        return tuple(self._samples)

    def __len__(self) -> int:
        return self.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic fixed-bin quantile estimate (0 <= q <= 1).

        Rank semantics match the nearest-rank convention the supervisor's
        rolling p95 used before histogram binning: rank
        ``int(q * (count - 1))`` of the ascending multiset.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        rank = int(q * (self.count - 1))
        cumulative = self._low
        if rank < cumulative:
            # Ranks inside the <=0 bucket: 0 clamped to the observed range.
            return max(self.min, min(self.max, 0.0))
        for k in sorted(self._bins):
            cumulative += self._bins[k]
            if rank < cumulative:
                upper = 2.0 ** ((k + 1) / _BINS_PER_OCTAVE)
                return max(self.min, min(self.max, upper))
        return self.max

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }

    #: Dict form of the summary (alias; the snapshot/export surface).
    to_dict = summary

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Named metrics, created on first use.

    A name is owned by the first kind that claims it; asking for the same
    name as a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, kind) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metric values, grouped by kind, names sorted."""
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.summary()
        return out

    def counters(self) -> Dict[str, Number]:
        """Just the counter values (the deterministic class)."""
        return {
            name: m.value
            for name, m in sorted(self._metrics.items())
            if isinstance(m, Counter)
        }

    def reset(self) -> None:
        self._metrics.clear()

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


_default = MetricsRegistry()
_active = _default


def registry() -> MetricsRegistry:
    """The registry pipeline instrumentation currently reports to."""
    return _active


def set_registry(reg: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Swap the active registry (None restores the process default);
    returns the previously active registry."""
    global _active
    previous = _active
    _active = reg if reg is not None else _default
    return previous


@contextmanager
def scoped(reg: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scope a (fresh by default) registry as the active one."""
    reg = reg if reg is not None else MetricsRegistry()
    previous = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(previous)


def counter(name: str) -> Counter:
    return _active.counter(name)


def gauge(name: str) -> Gauge:
    return _active.gauge(name)


def histogram(name: str) -> Histogram:
    return _active.histogram(name)
