"""Performance telemetry: engine self-profiling, metrics timeseries,
and deterministic trace sampling.

Three pillars of the perf subsystem live here (the fourth — the bench
regression gate — is ``tools/bench_compare.py``):

- **engine self-profiling**: a process-wide, opt-in
  :class:`~repro.arch.engine.EngineProfile` that every
  :meth:`~repro.core.experiment.Experiment.run` feeds when enabled
  (``REPRO_ENGINE_PROFILE=1`` or :func:`enable_engine_profiling`).
  :func:`snapshot` packages it as the ``perf`` section of provenance
  manifests and bench sidecars — wall-clock facts stay out of canonical
  report JSON, per the metrics determinism contract
  (:mod:`repro.obs.metrics`);
- **metrics timeseries**: :class:`TimelineRecorder`, a ring-buffered
  periodic snapshotter that streams sweep throughput, worker
  utilisation, queue depth and store hit tallies as JSONL next to the
  checkpoint journal, rendered by ``repro obs timeline``;
- **trace sampling**: :func:`trace_sampled`, a deterministic 1-in-N
  draw by hash of the setup's fault key, so very large sweeps can keep
  span volume bounded while byte-identity tests still know exactly
  which setups carry spans (the rate is recorded in the manifest).

Telemetry here describes *hosts and runs*, never measurements: nothing
in this module may influence (or appear in) canonical report JSON.
"""

from __future__ import annotations

import collections
import hashlib
import json
import os
import threading
import time
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.arch.engine import EngineProfile

__all__ = [
    "TIMELINE_FORMAT",
    "TimelineRecorder",
    "disable_engine_profiling",
    "enable_engine_profiling",
    "engine_profile",
    "engine_profiling_enabled",
    "snapshot",
    "trace_sampled",
]

#: Format marker for timeline JSONL files (header line).
TIMELINE_FORMAT = "repro-timeline-v1"

#: Environment flag that turns engine self-profiling on process-wide.
ENGINE_PROFILE_ENV = "REPRO_ENGINE_PROFILE"

_profile: Optional[EngineProfile] = None
_profile_lock = threading.Lock()


def enable_engine_profiling() -> EngineProfile:
    """Turn on process-wide engine self-profiling; returns the profile.

    Idempotent: repeated calls keep accumulating into the same
    :class:`~repro.arch.engine.EngineProfile`.
    """
    global _profile
    with _profile_lock:
        if _profile is None:
            _profile = EngineProfile()
        return _profile


def disable_engine_profiling() -> None:
    """Turn engine self-profiling off and drop the accumulated profile."""
    global _profile
    with _profile_lock:
        _profile = None


def engine_profiling_enabled() -> bool:
    """Is the process currently collecting an engine profile?"""
    return engine_profile() is not None


def engine_profile() -> Optional[EngineProfile]:
    """The active process-wide engine profile, or None when disabled.

    The ``REPRO_ENGINE_PROFILE`` environment variable (any non-empty
    value except ``0``) arms profiling lazily on first use, so bench
    runs and CI can opt in without code changes.
    """
    if _profile is None:
        flag = os.environ.get(ENGINE_PROFILE_ENV, "").strip()
        if flag and flag != "0":
            return enable_engine_profiling()
    return _profile


def snapshot() -> Optional[Dict[str, Any]]:
    """The ``perf`` manifest/sidecar section, or None when there is
    nothing to report (profiling disabled or no profiled runs yet)."""
    prof = engine_profile()
    if prof is None or prof.runs == 0:
        return None
    return {"engine": prof.to_dict()}


# -- deterministic trace sampling -------------------------------------------


def trace_sampled(key: str, rate: int) -> bool:
    """Deterministic 1-in-``rate`` trace-sampling draw for one setup.

    ``key`` is the setup's fault key (stable across processes, runs and
    hosts); the draw hashes it, so which setups carry per-setup spans is
    a pure function of (setup identity, rate) — serial, parallel and
    resumed sweeps sample identically, and a recorded ``trace_sample``
    rate in the manifest fully determines the expected span set.
    ``rate <= 1`` samples everything.
    """
    if rate <= 1:
        return True
    digest = hashlib.sha256(f"trace-sample:{key}".encode()).hexdigest()
    return int(digest[:8], 16) % rate == 0


# -- metrics timeseries ------------------------------------------------------


class TimelineRecorder:
    """Ring-buffered periodic metrics snapshotter streaming JSONL.

    A daemon thread samples ``sampler()`` every ``interval`` seconds
    (the runner wires the interval to a multiple of its worker-heartbeat
    interval by default) and appends one JSON object per sample to
    ``path`` — line 1 is a header carrying :data:`TIMELINE_FORMAT`.
    The most recent ``capacity`` samples are also kept in memory
    (:attr:`samples`) for in-process consumers.

    Samples are wall-clock facts about one host; the file lives next to
    the journal/trace, never inside canonical report JSON.  Sampling
    failures are swallowed after the first: telemetry must never take
    down the sweep it observes.
    """

    def __init__(
        self,
        path: str,
        interval: float = 1.0,
        capacity: int = 512,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"timeline interval must be > 0, got {interval}")
        if capacity < 1:
            raise ValueError(f"timeline capacity must be >= 1, got {capacity}")
        self.path = path
        self.interval = interval
        self.capacity = capacity
        self.samples: Deque[Dict[str, Any]] = collections.deque(
            maxlen=capacity
        )
        self._fh: Optional[Any] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._sampler: Optional[Callable[[], Dict[str, Any]]] = None
        self._t0 = 0.0
        #: Samples dropped because the sampler raised (reported once).
        self.sample_errors = 0

    # -- lifecycle --------------------------------------------------------

    def start(self, sampler: Callable[[], Dict[str, Any]]) -> None:
        """Open the JSONL stream and start the sampling thread."""
        assert self._thread is None, "timeline already started"
        self._sampler = sampler
        self._fh = open(self.path, "w")
        header = {
            "format": TIMELINE_FORMAT,
            "interval": self.interval,
            "created_unix": time.time(),
        }
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        self._fh.flush()
        self._t0 = time.monotonic()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-timeline", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Take one final sample, stop the thread, close the stream."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=max(5.0, 4 * self.interval))
        self._thread = None
        self._take_sample()  # closing sample: the sweep's final shape
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TimelineRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- sampling ---------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._take_sample()

    def _take_sample(self) -> None:
        if self._sampler is None or self._fh is None:
            return
        try:
            sample = dict(self._sampler())
        except Exception:  # noqa: BLE001 — telemetry must not kill sweeps
            self.sample_errors += 1
            return
        record: Dict[str, Any] = {
            "t": round(time.monotonic() - self._t0, 6)
        }
        record.update(sample)
        self.samples.append(record)
        try:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        except (OSError, ValueError):
            self.sample_errors += 1


# -- timeline validation/rendering helpers (backs `repro obs timeline`) -----


def validate_timeline(data: Dict[str, Any]) -> List[str]:
    """Schema check of a loaded timeline artifact (empty == valid).

    ``data`` is the ``{"timeline": {header, lines, path}}`` wrapper from
    :func:`repro.obs.inspect.load_json_artifact`.
    """
    tl = data.get("timeline") or {}
    header = tl.get("header") or {}
    errors: List[str] = []
    if header.get("format") != TIMELINE_FORMAT:
        errors.append(
            f"timeline header format is {header.get('format')!r}, "
            f"expected {TIMELINE_FORMAT!r}"
        )
    interval = header.get("interval")
    if not (isinstance(interval, (int, float)) and interval > 0):
        errors.append("timeline header lacks a positive sampling interval")
    last_t = -1.0
    for lineno, line in enumerate(tl.get("lines") or [], start=2):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            errors.append(f"line {lineno}: not valid JSON")
            continue
        if not isinstance(rec, dict):
            errors.append(f"line {lineno}: sample is not an object")
            continue
        t = rec.get("t")
        if not isinstance(t, (int, float)):
            errors.append(f"line {lineno}: sample lacks a numeric 't'")
            continue
        if t < last_t:
            errors.append(
                f"line {lineno}: sample time {t} goes backwards "
                f"(previous {last_t})"
            )
        last_t = float(t)
        for key, value in rec.items():
            if key == "t":
                continue
            if not isinstance(value, (int, float)):
                errors.append(
                    f"line {lineno}: field {key!r} is not a number"
                )
    return errors


def timeline_samples(data: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The parsed samples of a loaded timeline artifact, in order."""
    tl = data.get("timeline") or {}
    samples: List[Dict[str, Any]] = []
    for line in tl.get("lines") or []:
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(rec, dict) and isinstance(rec.get("t"), (int, float)):
            samples.append(rec)
    return samples


def summarize_timeline(data: Dict[str, Any], rows: int = 20) -> str:
    """A metrics timeline as a table: progress, throughput, utilisation.

    Long timelines are downsampled to ~``rows`` evenly spaced samples;
    the last sample is always shown (it is the sweep's final shape).
    """
    from repro.core.report import render_table

    tl = data.get("timeline") or {}
    header = tl.get("header") or {}
    samples = timeline_samples(data)
    title = (
        f"timeline ({tl.get('path', '?')}): {len(samples)} samples @ "
        f"{header.get('interval', '?')}s"
    )
    if not samples:
        return render_table(["property", "value"], [["samples", 0]], title=title)
    keep = samples
    if len(samples) > rows:
        step = len(samples) / rows
        keep = [samples[int(i * step)] for i in range(rows)]
        if keep[-1] is not samples[-1]:
            keep.append(samples[-1])
    # Service timelines carry a "leases" gauge (outstanding lease count
    # from the sweep service's dispatch pool); show the column only when
    # at least one sample has it, so local-sweep output is unchanged.
    with_leases = any("leases" in s for s in keep)
    prev_t = 0.0
    prev_measured = 0
    table = []
    for s in keep:
        t = float(s.get("t", 0.0))
        measured = int(s.get("measured", 0) + s.get("resumed", 0))
        dt = t - prev_t
        rate = (measured - prev_measured) / dt if dt > 0 else 0.0
        row = [
            f"{t:.2f}",
            f"{measured}/{int(s.get('requested', 0))}",
            f"{rate:.2f}",
            int(s.get("pending", 0)),
            f"{int(s.get('workers_busy', 0))}/{int(s.get('workers_alive', 0))}",
            int(s.get("retries", 0)),
            int(s.get("store_hits", 0)),
        ]
        if with_leases:
            row.append(int(s.get("leases", 0)))
        table.append(row)
        prev_t, prev_measured = t, measured
    columns = [
        "t (s)",
        "done",
        "rate/s",
        "pending",
        "busy/alive",
        "retries",
        "store hits",
    ]
    if with_leases:
        columns.append("leases")
    return render_table(columns, table, title=title)
