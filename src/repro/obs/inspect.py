"""Inspection of observability artifacts: traces and manifests.

Backs the ``repro obs`` CLI and ``tools/validate_trace.py``:

- :func:`validate_trace` / :func:`validate_manifest` — schema checks
  (hand-rolled; the package has no dependencies to lean on);
- :func:`summarize_trace` / :func:`summarize_manifest` — human-facing
  tables;
- :func:`merge_traces` — combine traces from several runs into one
  Perfetto-loadable file (each input becomes its own process row);
- :func:`diff_traces` / :func:`diff_manifests` — where did the time (or
  the setup) change between two runs?
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.manifest import MANIFEST_FORMAT, validate_manifest
from repro.obs.trace import TRACE_FORMAT

__all__ = [
    "diff_manifests",
    "diff_traces",
    "is_journal",
    "is_manifest",
    "is_timeline",
    "is_trace",
    "load_json_artifact",
    "merge_traces",
    "summarize_journal",
    "summarize_manifest",
    "summarize_trace",
    "validate_journal",
    "validate_manifest",
    "validate_trace",
]


def load_json_artifact(path: str) -> Dict[str, Any]:
    """Load a trace, manifest, or checkpoint-journal file, raising
    ArchiveCorruption on junk.

    Journals and metrics timelines are JSON *Lines*, not one JSON
    document; they are detected by their header line and wrapped as
    ``{"journal": {...}}`` / ``{"timeline": {...}}`` so the same
    dispatch (``is_trace``/``is_manifest``/``is_journal``/
    ``is_timeline``) covers every artifact family.
    """
    from repro._errors import ArchiveCorruption
    from repro.obs.perf import TIMELINE_FORMAT

    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise ArchiveCorruption(f"unreadable artifact: {exc}", path=path) from exc
    first, _, _ = text.partition("\n")
    try:
        head = json.loads(first) if first.strip() else None
    except json.JSONDecodeError:
        head = None
    if isinstance(head, dict) and isinstance(head.get("format"), str):
        if head["format"].endswith("-journal"):
            return {
                "journal": {
                    "path": path,
                    "header": head,
                    "lines": text.splitlines()[1:],
                }
            }
        if head["format"] == TIMELINE_FORMAT:
            return {
                "timeline": {
                    "path": path,
                    "header": head,
                    "lines": text.splitlines()[1:],
                }
            }
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArchiveCorruption(
            f"not valid JSON: {exc}", path=path
        ) from exc
    if not isinstance(data, dict):
        raise ArchiveCorruption("artifact root is not an object", path=path)
    return data


def is_trace(data: Dict[str, Any]) -> bool:
    return "traceEvents" in data


def is_manifest(data: Dict[str, Any]) -> bool:
    return data.get("format") == MANIFEST_FORMAT


def is_journal(data: Dict[str, Any]) -> bool:
    return "journal" in data


def is_timeline(data: Dict[str, Any]) -> bool:
    return "timeline" in data


# -- traces ------------------------------------------------------------------


def validate_trace(data: Any) -> List[str]:
    """Chrome-trace schema check; returns problems (empty == valid)."""
    errors: List[str] = []
    if not isinstance(data, dict):
        return ["trace root is not an object (array-format traces are not emitted by repro)"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no 'traceEvents' list"]
    other = data.get("otherData")
    if not (isinstance(other, dict) and other.get("format") == TRACE_FORMAT):
        errors.append(f"otherData.format is not {TRACE_FORMAT!r}")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "B", "E", "C"):
            errors.append(f"event {i} has unknown phase {ph!r}")
            continue
        if "name" not in ev or "pid" not in ev:
            errors.append(f"event {i} lacks name/pid")
            continue
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(ev.get(key), (int, float)):
                    errors.append(f"event {i} ({ev['name']}) {key} is not a number")
            args = ev.get("args")
            if not (isinstance(args, dict) and "id" in args and "path" in args):
                errors.append(
                    f"event {i} ({ev['name']}) lacks deterministic id/path args"
                )
        if ph == "i" and "ts" not in ev:
            errors.append(f"event {i} ({ev['name']}) instant lacks ts")
    return errors


def _span_events(data: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [
        ev
        for ev in data.get("traceEvents", ())
        if isinstance(ev, dict) and ev.get("ph") == "X"
    ]


def _totals_by_name(
    events: Sequence[Dict[str, Any]]
) -> Dict[str, Tuple[int, float]]:
    """name -> (count, total duration in microseconds)."""
    totals: Dict[str, Tuple[int, float]] = {}
    for ev in events:
        count, total = totals.get(ev["name"], (0, 0.0))
        totals[ev["name"]] = (count + 1, total + float(ev.get("dur", 0.0)))
    return totals


def summarize_trace(data: Dict[str, Any], top: int = 20) -> str:
    """Per-span-name totals, largest first, plus the trace's envelope."""
    from repro.core.report import render_table

    events = _span_events(data)
    instants = [
        ev for ev in data.get("traceEvents", ()) if ev.get("ph") == "i"
    ]
    totals = _totals_by_name(events)
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][1])[:top]
    rows = [
        [name, count, f"{total / 1e3:.3f}", f"{total / count / 1e3:.3f}"]
        for name, (count, total) in ranked
    ]
    end = max(
        (float(ev["ts"]) + float(ev.get("dur", 0.0)) for ev in events),
        default=0.0,
    )
    label = (data.get("otherData") or {}).get("label", "?")
    title = (
        f"trace {label!r}: {len(events)} spans, {len(instants)} instants, "
        f"{end / 1e3:.3f} ms wall"
    )
    return render_table(
        ["span", "count", "total ms", "mean ms"], rows, title=title
    )


def merge_traces(
    traces: Sequence[Dict[str, Any]], labels: Optional[Sequence[str]] = None
) -> Dict[str, Any]:
    """Combine traces into one file; input *k* becomes process ``k+1``."""
    events: List[Dict[str, Any]] = []
    for k, trace in enumerate(traces):
        pid = k + 1
        label = (
            labels[k]
            if labels is not None
            else (trace.get("otherData") or {}).get("label", f"trace-{pid}")
        )
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 1,
                "args": {"name": label},
            }
        )
        for ev in trace.get("traceEvents", ()):
            if not isinstance(ev, dict) or ev.get("ph") == "M":
                continue
            merged = dict(ev)
            merged["pid"] = pid
            events.append(merged)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": TRACE_FORMAT, "label": "merged"},
    }


def diff_traces(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    """Per-span-name wall-time comparison of two traces."""
    from repro.core.report import render_table

    ta = _totals_by_name(_span_events(a))
    tb = _totals_by_name(_span_events(b))
    rows = []
    for name in sorted(set(ta) | set(tb)):
        ca, da = ta.get(name, (0, 0.0))
        cb, db = tb.get(name, (0, 0.0))
        rows.append((abs(db - da), [
            name,
            ca,
            cb,
            f"{da / 1e3:.3f}",
            f"{db / 1e3:.3f}",
            f"{(db - da) / 1e3:+.3f}",
        ]))
    rows.sort(key=lambda r: -r[0])
    return render_table(
        ["span", "count A", "count B", "total ms A", "total ms B", "delta ms"],
        [row for _, row in rows],
        title="trace diff (A -> B)",
    )


# -- manifests ---------------------------------------------------------------


def summarize_manifest(data: Dict[str, Any]) -> str:
    """The provenance story of one manifest as a property table."""
    from repro.core.report import render_table

    exp = data.get("experiment") or {}
    env = data.get("environment") or {}
    pkg = data.get("package") or {}
    setups = data.get("setups") or []
    report = data.get("report") or {}
    env_sizes = sorted(
        {s.get("env_bytes") for s in setups if s.get("env_bytes") is not None}
    )
    env_range = (
        f"{env_sizes[0]}..{env_sizes[-1]} ({len(env_sizes)} distinct)"
        if env_sizes
        else "baseline only"
    )
    link_orders = sum(1 for s in setups if s.get("link_order"))
    rows = [
        ["package", f"{pkg.get('name')} {pkg.get('version')}"],
        ["host", f"{env.get('platform')} / python {env.get('python')}"],
        [
            "experiment",
            f"{exp.get('workload')}/{exp.get('size')} seed={exp.get('seed')}"
            if exp
            else "(none)",
        ],
        ["setups", len(setups)],
        ["toolchain profiles", ", ".join((data.get("toolchain") or {}).get("profiles", []))],
        ["machines", ", ".join(data.get("machines", []))],
        ["env sizes", env_range],
        ["explicit link orders", link_orders],
        ["seeds", ", ".join(f"{k}={v}" for k, v in (data.get("seeds") or {}).items())],
        ["fault plan", "yes" if data.get("fault_plan") else "none"],
        [
            "sweep report",
            (
                f"{report.get('measured')} measured + {report.get('resumed')} "
                f"resumed + {len(report.get('quarantined', []))} quarantined"
            )
            if report
            else "(none)",
        ],
        ["artifacts", len(data.get("artifacts") or {})],
        [
            "store",
            (
                f"{store.get('hits')} hits / {store.get('misses')} misses "
                f"({store.get('scheme')})"
            )
            if (store := data.get("store"))
            else "none",
        ],
    ]
    runner = data.get("runner") or {}
    if runner.get("trace_sample", 1) > 1:
        rows.append(["trace sampling", f"1 in {runner['trace_sample']}"])
    if (perf := data.get("perf")) and isinstance(perf.get("engine"), dict):
        eng = perf["engine"]
        classes = eng.get("opcode_classes") or {}
        dispatched = sum(classes.values())
        blocks = eng.get("blocks") or {}
        rows.append(
            [
                "engine profile",
                f"{eng.get('runs')} runs, {dispatched} dispatches, "
                f"block replay ×{blocks.get('replay_ratio', 0):.1f}",
            ]
        )
    if isinstance(stats := data.get("stats"), dict):
        intervals = [
            iv for iv in stats.get("intervals") or [] if isinstance(iv, dict)
        ]
        methods = ", ".join(
            str(iv.get("method", "?")) for iv in intervals
        ) or "none"
        rows.append(
            [
                "stats",
                f"{stats.get('n')} speedups over "
                f"{stats.get('distinct_setups')} setups, "
                f"CI methods: {methods}",
            ]
        )
        for iv in intervals:
            rows.append(
                [
                    f"CI ({iv.get('method', '?')})",
                    f"[{iv.get('lo', 0.0):.4f}, {iv.get('hi', 0.0):.4f}] "
                    f"at {iv.get('level', 0.0):.0%}",
                ]
            )
        if isinstance(size := stats.get("sample_size"), dict):
            rows.append(
                [
                    "sample size",
                    "converged"
                    if size.get("converged")
                    else f"recommend ~{size.get('recommended_n')} setups",
                ]
            )
    if isinstance(audit := data.get("audit"), dict):
        findings = audit.get("findings") or []
        rows.append(
            [
                "audit",
                "clean"
                if not findings
                else ", ".join(
                    str(f.get("code", "?")) for f in findings
                ),
            ]
        )
    return render_table(
        ["property", "value"], rows, title=f"manifest ({data.get('note') or 'no note'})"
    )


def _manifest_facets(data: Dict[str, Any]) -> Dict[str, Any]:
    setups = data.get("setups") or []
    return {
        "package version": (data.get("package") or {}).get("version"),
        "python": (data.get("environment") or {}).get("python"),
        "platform": (data.get("environment") or {}).get("platform"),
        "workload": (data.get("experiment") or {}).get("workload"),
        "input size": (data.get("experiment") or {}).get("size"),
        "setups": len(setups),
        "machines": ",".join(data.get("machines", [])),
        "toolchain profiles": ",".join(
            (data.get("toolchain") or {}).get("profiles", [])
        ),
        "env sizes": ",".join(
            str(s.get("env_bytes")) for s in setups
        ),
        "seeds": json.dumps(data.get("seeds") or {}, sort_keys=True),
        "fault plan": json.dumps(data.get("fault_plan"), sort_keys=True),
        "store scheme": (data.get("store") or {}).get("scheme"),
        "sweep id": data.get("sweep_id"),
    }


def diff_manifests(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    """Field-by-field provenance comparison (the "what changed between
    these two measurement campaigns?" question)."""
    from repro.core.report import render_table

    fa = _manifest_facets(a)
    fb = _manifest_facets(b)
    rows = []
    for key in fa:
        va, vb = fa[key], fb[key]
        marker = "" if va == vb else "***"
        rows.append([key, _short(va), _short(vb), marker])
    return render_table(
        ["facet", "A", "B", "differs"], rows, title="manifest diff (A vs B)"
    )


def _short(value: Any, limit: int = 48) -> str:
    text = str(value)
    return text if len(text) <= limit else text[: limit - 1] + "…"


# -- checkpoint journals -----------------------------------------------------


def validate_journal(data: Dict[str, Any]) -> List[str]:
    """Integrity check of a sweep checkpoint journal (empty == valid).

    Flags torn/corrupt lines and *stale* duplicates (superseded records
    that ``repro journal compact`` would fold away); both are recoverable
    — resume drops them — but a clean journal has neither.
    """
    from repro.core.runner import JOURNAL_FORMAT, Journal

    j = data.get("journal") or {}
    header = j.get("header") or {}
    errors: List[str] = []
    if header.get("format") != JOURNAL_FORMAT:
        errors.append(
            f"journal header format is {header.get('format')!r}, "
            f"expected {JOURNAL_FORMAT!r}"
        )
    if not isinstance(header.get("sweep"), str) or not header.get("sweep"):
        errors.append("journal header lacks a sweep id")
    seen_records: set = set()
    seen_aux: set = set()
    for lineno, line in enumerate(j.get("lines") or [], start=2):
        if not line.strip():
            continue
        rec = Journal._parse_record(line)
        if rec is not None:
            if rec[0] in seen_records:
                errors.append(
                    f"line {lineno}: stale duplicate record for setup "
                    f"{rec[0]} (run `repro journal compact`)"
                )
            seen_records.add(rec[0])
            continue
        aux = Journal._parse_aux(line)
        if aux is not None:
            if aux["kind"] in seen_aux:
                errors.append(
                    f"line {lineno}: stale duplicate {aux['kind']!r} aux "
                    "record (run `repro journal compact`)"
                )
            seen_aux.add(aux["kind"])
            continue
        errors.append(
            f"line {lineno}: torn or corrupt record (dropped on resume)"
        )
    return errors


def summarize_journal(data: Dict[str, Any]) -> str:
    """One checkpoint journal's contents as a property table."""
    from repro.core.report import render_table
    from repro.core.runner import Journal

    j = data.get("journal") or {}
    header = j.get("header") or {}
    indices: List[int] = []
    aux_kinds: Dict[str, int] = {}
    corrupt = 0
    for line in j.get("lines") or []:
        if not line.strip():
            continue
        rec = Journal._parse_record(line)
        if rec is not None:
            indices.append(rec[0])
            continue
        aux = Journal._parse_aux(line)
        if aux is not None:
            aux_kinds[aux["kind"]] = aux_kinds.get(aux["kind"], 0) + 1
            continue
        corrupt += 1
    stale = len(indices) - len(set(indices)) + sum(
        n - 1 for n in aux_kinds.values()
    )
    rows = [
        ["sweep", str(header.get("sweep", "?"))[:12]],
        ["note", header.get("note") or "(none)"],
        ["measurement records", len(indices)],
        ["distinct setups", len(set(indices))],
        [
            "aux records",
            ", ".join(f"{k}×{n}" for k, n in sorted(aux_kinds.items()))
            or "none",
        ],
        ["torn/corrupt lines", corrupt],
        ["torn writes recovered", header.get("torn_recovered", 0)],
        ["stale lines (compactable)", stale],
    ]
    return render_table(
        ["property", "value"], rows, title=f"journal ({j.get('path', '?')})"
    )
