"""Pluggable live progress reporting for long sweeps.

Before this module a 5,000-setup sweep was silent for minutes and then
printed one summary line; a retry storm or a quarantined setup was
invisible until the end.  :class:`~repro.core.runner.SweepRunner` now
pushes every per-setup event through a reporter:

- :class:`ProgressReporter` — the interface (and the no-op default, so
  library callers see zero behaviour change);
- :class:`LineProgress` — one structured line per event, for logs and
  non-TTY pipelines;
- :class:`LiveProgress` — a single live status line on a TTY, rewritten
  in place, with retry/quarantine events surfaced as full lines the
  moment they happen.

:func:`for_stream` picks the right reporter for a stream; the CLI wires
it to stderr (``--quiet`` silences it) so stdout stays exactly the
published tables.
"""

from __future__ import annotations

from typing import Any, Optional, TextIO


class ProgressReporter:
    """Sweep progress interface; the base class ignores every event."""

    def sweep_started(self, total: int, resumed: int, sweep: str = "") -> None:
        """A sweep of ``total`` setups begins; ``resumed`` of them came
        from a checkpoint journal."""

    def setup_finished(
        self, index: int, setup: str, status: str, attempts: int = 1
    ) -> None:
        """Setup ``index`` reached a final fate ("measured" here;
        quarantines arrive via :meth:`quarantined`)."""

    def retry(
        self, index: int, setup: str, attempt: int, error_type: str, message: str
    ) -> None:
        """Setup ``index``'s attempt ``attempt`` failed retryably and
        will be re-attempted."""

    def quarantined(
        self,
        index: int,
        setup: str,
        error_type: str,
        fate: str,
        attempts: int,
        message: str,
    ) -> None:
        """Setup ``index`` exhausted its retries (or failed fatally)."""

    def worker_event(
        self,
        event: str,
        worker: int,
        index: Optional[int] = None,
        detail: str = "",
    ) -> None:
        """A worker-lifecycle event from the supervised pool: "crash",
        "hang", "respawn", or "degraded".  ``worker`` is the pool slot
        (-1 for pool-wide events); ``index`` names the in-flight setup,
        when there was one."""

    def store_hits(self, hits: int, total: int) -> None:
        """``hits`` of ``total`` setups were resolved from the
        content-addressed measurement store before dispatch (each one
        also arrived via :meth:`setup_finished`, status "measured")."""

    def sweep_finished(self, report: Any) -> None:
        """The sweep is over; ``report`` is the full SweepReport."""


#: Shared no-op reporter (the runner's default).
NULL_PROGRESS = ProgressReporter()


def _worker_event_text(
    event: str, worker: int, index: Optional[int], detail: str
) -> str:
    where = f" w{worker}" if worker >= 0 else ""
    at = f" during #{index}" if index is not None else ""
    note = f": {detail}" if detail else ""
    return f"sweep WORKER {event.upper()}{where}{at}{note}"


class _StreamReporter(ProgressReporter):
    def __init__(self, stream: TextIO) -> None:
        self.stream = stream
        self.total = 0
        self.done = 0
        self.measured = 0
        self.resumed = 0
        self.retries = 0
        self.quarantines = 0

    def _start(self, total: int, resumed: int) -> None:
        self.total = total
        self.done = resumed
        self.measured = 0
        self.resumed = resumed
        self.retries = 0
        self.quarantines = 0


class LineProgress(_StreamReporter):
    """One structured, grep-able line per sweep event."""

    def sweep_started(self, total: int, resumed: int, sweep: str = "") -> None:
        self._start(total, resumed)
        suffix = f" ({resumed} resumed from journal)" if resumed else ""
        name = f" {sweep}" if sweep else ""
        self.stream.write(f"sweep{name}: {total} setups{suffix}\n")
        self.stream.flush()

    def setup_finished(
        self, index: int, setup: str, status: str, attempts: int = 1
    ) -> None:
        self.done += 1
        self.measured += status == "measured"
        note = f" ({attempts} attempts)" if attempts > 1 else ""
        self.stream.write(
            f"sweep [{self.done}/{self.total}] {status} #{index} {setup}{note}\n"
        )
        self.stream.flush()

    def retry(
        self, index: int, setup: str, attempt: int, error_type: str, message: str
    ) -> None:
        self.retries += 1
        self.stream.write(
            f"sweep RETRY #{index} {setup}: attempt {attempt} failed with "
            f"{error_type}: {message}\n"
        )
        self.stream.flush()

    def quarantined(
        self,
        index: int,
        setup: str,
        error_type: str,
        fate: str,
        attempts: int,
        message: str,
    ) -> None:
        self.done += 1
        self.quarantines += 1
        self.stream.write(
            f"sweep QUARANTINED #{index} {setup}: {error_type} "
            f"({fate}, {attempts} attempts): {message}\n"
        )
        self.stream.flush()

    def worker_event(
        self,
        event: str,
        worker: int,
        index: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.stream.write(
            _worker_event_text(event, worker, index, detail) + "\n"
        )
        self.stream.flush()

    def store_hits(self, hits: int, total: int) -> None:
        self.stream.write(f"sweep STORE {hits}/{total} setups already held\n")
        self.stream.flush()

    def sweep_finished(self, report: Any) -> None:
        self.stream.write(
            f"sweep done: {report.measured} measured + {report.resumed} "
            f"resumed + {len(report.quarantined)} quarantined "
            f"({report.retries} retries)\n"
        )
        self.stream.flush()


class LiveProgress(_StreamReporter):
    """A single live status line, rewritten in place on a TTY.

    Retry and quarantine events break out of the live line as full
    lines, so the terminal scrollback keeps a record of every anomaly.
    """

    def _render(self) -> None:
        line = (
            f"sweep {self.done}/{self.total} | {self.measured} measured"
            f" | {self.resumed} resumed | {self.retries} retries"
            f" | {self.quarantines} quarantined"
        )
        self.stream.write("\r\x1b[2K" + line)
        self.stream.flush()

    def _event_line(self, text: str) -> None:
        self.stream.write("\r\x1b[2K" + text + "\n")
        self._render()

    def sweep_started(self, total: int, resumed: int, sweep: str = "") -> None:
        self._start(total, resumed)
        self._render()

    def setup_finished(
        self, index: int, setup: str, status: str, attempts: int = 1
    ) -> None:
        self.done += 1
        self.measured += status == "measured"
        self._render()

    def retry(
        self, index: int, setup: str, attempt: int, error_type: str, message: str
    ) -> None:
        self.retries += 1
        self._event_line(
            f"RETRY #{index} {setup}: attempt {attempt} failed with "
            f"{error_type}: {message}"
        )

    def quarantined(
        self,
        index: int,
        setup: str,
        error_type: str,
        fate: str,
        attempts: int,
        message: str,
    ) -> None:
        self.done += 1
        self.quarantines += 1
        self._event_line(
            f"QUARANTINED #{index} {setup}: {error_type} "
            f"({fate}, {attempts} attempts): {message}"
        )

    def worker_event(
        self,
        event: str,
        worker: int,
        index: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self._event_line(_worker_event_text(event, worker, index, detail))

    def store_hits(self, hits: int, total: int) -> None:
        self._event_line(f"STORE {hits}/{total} setups already held")

    def sweep_finished(self, report: Any) -> None:
        # Clear the live line; the caller prints the durable summary.
        self.stream.write("\r\x1b[2K")
        self.stream.flush()


def for_stream(
    stream: Optional[TextIO], quiet: bool = False
) -> ProgressReporter:
    """The right reporter for ``stream``: no-op when quiet or streamless,
    live line on a TTY, structured lines otherwise."""
    if quiet or stream is None:
        return NULL_PROGRESS
    try:
        is_tty = stream.isatty()
    except (AttributeError, ValueError):
        is_tty = False
    return LiveProgress(stream) if is_tty else LineProgress(stream)
