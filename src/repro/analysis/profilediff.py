"""Function- and instruction-level bias localization.

The paper's section-4 workflow narrows a whole-program bias down to the
function (then the loop, then the access) that absorbs it.  This module
does the function step — profile the same binary under two setups and
rank functions by how much their attributed cycles moved — and, via the
engine's per-PC cycle-attribution hook (``profile_pcs``), the
instruction step: :func:`pc_profile_diff` pinpoints the exact static
instructions (with their byte addresses) where the cycles went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.experiment import Experiment, Measurement
from repro.core.setup import ExperimentalSetup


@dataclass(frozen=True)
class FunctionDelta:
    """One function's share of a cycle difference between two setups."""

    function: str
    cycles_a: float
    cycles_b: float

    @property
    def delta(self) -> float:
        return self.cycles_b - self.cycles_a

    @property
    def relative(self) -> float:
        """Delta relative to the function's own baseline cycles."""
        if self.cycles_a == 0:
            return 0.0 if self.cycles_b == 0 else float("inf")
        return self.delta / self.cycles_a


@dataclass(frozen=True)
class ProfileDiff:
    """Per-function decomposition of a setup-induced cycle delta."""

    setup_a: ExperimentalSetup
    setup_b: ExperimentalSetup
    total_delta: float
    functions: Tuple[FunctionDelta, ...]

    def ranked(self) -> List[FunctionDelta]:
        """Functions by |delta|, largest first."""
        return sorted(self.functions, key=lambda f: -abs(f.delta))

    def culprit(self) -> FunctionDelta:
        """The function absorbing the most of the difference."""
        return self.ranked()[0]

    def concentration(self) -> float:
        """|culprit delta| / |total delta| — 1.0 means one function
        explains everything (the perlbench case in the paper)."""
        if self.total_delta == 0:
            return 0.0
        return abs(self.culprit().delta) / abs(self.total_delta)


def profile_diff(
    experiment: Experiment,
    setup_a: ExperimentalSetup,
    setup_b: ExperimentalSetup,
) -> ProfileDiff:
    """Profile under both setups and diff the per-function cycles.

    The two setups should share a build (same compiler/O-level/link
    order) so functions correspond one-to-one; a differing build raises.
    """
    if setup_a.build_key() != setup_b.build_key():
        raise ValueError(
            "profile_diff requires setups sharing a build; got "
            f"{setup_a.describe()} vs {setup_b.describe()}"
        )
    a: Measurement = experiment.run(setup_a, profile_functions=True)
    b: Measurement = experiment.run(setup_b, profile_functions=True)
    names = sorted(set(a.function_cycles) | set(b.function_cycles))
    functions = tuple(
        FunctionDelta(
            function=name,
            cycles_a=a.function_cycles.get(name, 0.0),
            cycles_b=b.function_cycles.get(name, 0.0),
        )
        for name in names
    )
    return ProfileDiff(
        setup_a=setup_a,
        setup_b=setup_b,
        total_delta=b.cycles - a.cycles,
        functions=functions,
    )


@dataclass(frozen=True)
class PCDelta:
    """One static instruction's share of a cycle difference."""

    index: int  # flat instruction index
    addr: int  # byte address (setup-independent for a shared build)
    function: str
    cycles_a: float
    cycles_b: float

    @property
    def delta(self) -> float:
        return self.cycles_b - self.cycles_a


@dataclass(frozen=True)
class PCProfileDiff:
    """Per-instruction decomposition of a setup-induced cycle delta."""

    setup_a: ExperimentalSetup
    setup_b: ExperimentalSetup
    total_delta: float
    pcs: Tuple[PCDelta, ...]

    def ranked(self, top: Optional[int] = None) -> List[PCDelta]:
        """Instructions by |delta|, largest first."""
        ordered = sorted(self.pcs, key=lambda p: -abs(p.delta))
        return ordered[:top] if top is not None else ordered

    def by_function(self) -> dict:
        """Aggregate the per-PC deltas back to function granularity
        (cross-check against :func:`profile_diff`)."""
        out: dict = {}
        for p in self.pcs:
            out[p.function] = out.get(p.function, 0.0) + p.delta
        return out


def pc_profile_diff(
    experiment: Experiment,
    setup_a: ExperimentalSetup,
    setup_b: ExperimentalSetup,
) -> PCProfileDiff:
    """Profile under both setups with the engine's per-PC attribution
    hook and diff cycles instruction by instruction.

    Like :func:`profile_diff`, the setups must share a build so static
    instructions correspond one-to-one.
    """
    if setup_a.build_key() != setup_b.build_key():
        raise ValueError(
            "pc_profile_diff requires setups sharing a build; got "
            f"{setup_a.describe()} vs {setup_b.describe()}"
        )
    a = experiment.profile(setup_a, functions=False, pcs=True)
    b = experiment.profile(setup_b, functions=False, pcs=True)
    if len(a.pc_cycles) != len(b.pc_cycles):
        # A shared build_key should make this impossible; if it ever
        # happens (e.g. a corrupted build cache), zip() would silently
        # truncate the diff to the shorter profile — fail loudly instead.
        raise ValueError(
            f"per-PC profiles differ in length ({len(a.pc_cycles)} vs "
            f"{len(b.pc_cycles)}); the setups did not produce the same "
            "program"
        )
    exe = experiment.build(setup_a)
    func_of = [""] * len(exe.ops)
    for pf in exe.placed:
        for i in range(pf.flat_start, pf.flat_end):
            func_of[i] = pf.name
    pcs = tuple(
        PCDelta(
            index=i,
            addr=exe.addrs[i],
            function=func_of[i],
            cycles_a=ca,
            cycles_b=cb,
        )
        for i, (ca, cb) in enumerate(zip(a.pc_cycles, b.pc_cycles))
        if ca != 0.0 or cb != 0.0
    )
    return PCProfileDiff(
        setup_a=setup_a,
        setup_b=setup_b,
        total_delta=b.counters.cycles - a.counters.cycles,
        pcs=pcs,
    )
