"""Function-level bias localization.

The paper's section-4 workflow narrows a whole-program bias down to the
function (then the loop, then the access) that absorbs it.  This module
does the function step: profile the same binary under two setups and
rank functions by how much their attributed cycles moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.experiment import Experiment, Measurement
from repro.core.setup import ExperimentalSetup


@dataclass(frozen=True)
class FunctionDelta:
    """One function's share of a cycle difference between two setups."""

    function: str
    cycles_a: float
    cycles_b: float

    @property
    def delta(self) -> float:
        return self.cycles_b - self.cycles_a

    @property
    def relative(self) -> float:
        """Delta relative to the function's own baseline cycles."""
        if self.cycles_a == 0:
            return 0.0 if self.cycles_b == 0 else float("inf")
        return self.delta / self.cycles_a


@dataclass(frozen=True)
class ProfileDiff:
    """Per-function decomposition of a setup-induced cycle delta."""

    setup_a: ExperimentalSetup
    setup_b: ExperimentalSetup
    total_delta: float
    functions: Tuple[FunctionDelta, ...]

    def ranked(self) -> List[FunctionDelta]:
        """Functions by |delta|, largest first."""
        return sorted(self.functions, key=lambda f: -abs(f.delta))

    def culprit(self) -> FunctionDelta:
        """The function absorbing the most of the difference."""
        return self.ranked()[0]

    def concentration(self) -> float:
        """|culprit delta| / |total delta| — 1.0 means one function
        explains everything (the perlbench case in the paper)."""
        if self.total_delta == 0:
            return 0.0
        return abs(self.culprit().delta) / abs(self.total_delta)


def profile_diff(
    experiment: Experiment,
    setup_a: ExperimentalSetup,
    setup_b: ExperimentalSetup,
) -> ProfileDiff:
    """Profile under both setups and diff the per-function cycles.

    The two setups should share a build (same compiler/O-level/link
    order) so functions correspond one-to-one; a differing build raises.
    """
    if setup_a.build_key() != setup_b.build_key():
        raise ValueError(
            "profile_diff requires setups sharing a build; got "
            f"{setup_a.describe()} vs {setup_b.describe()}"
        )
    a: Measurement = experiment.run(setup_a, profile_functions=True)
    b: Measurement = experiment.run(setup_b, profile_functions=True)
    names = sorted(set(a.function_cycles) | set(b.function_cycles))
    functions = tuple(
        FunctionDelta(
            function=name,
            cycles_a=a.function_cycles.get(name, 0.0),
            cycles_b=b.function_cycles.get(name, 0.0),
        )
        for name in names
    )
    return ProfileDiff(
        setup_a=setup_a,
        setup_b=setup_b,
        total_delta=b.cycles - a.cycles,
        functions=functions,
    )
