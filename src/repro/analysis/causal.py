"""Causal intervention experiments.

Correlation (``attribution``) suggests a mechanism; the paper's
methodology then *intervenes* — change the suspected cause, hold all else
fixed, and check whether the bias disappears.  Each intervention here
reruns an environment-size or link-order study under a modified world:

- :func:`confirm_stack_alignment_cause` — loader aligns ``sp`` to 16 bytes:
  if environment-size bias vanishes, stack data alignment was the cause
  (the paper's conclusion for perlbench).
- :func:`confirm_lsd_cause` — machine without a loop stream detector: if the
  O2/O3 flip vanishes, LSD eligibility asymmetry was the cause.
- :func:`confirm_function_alignment_cause` — linker aligns functions to one
  byte vs a full fetch window: separates set-mapping from window-offset
  link-order effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.core.bias import BiasReport, StudyResult, env_size_study, link_order_study
from repro.core.experiment import Experiment
from repro.core.setup import ExperimentalSetup


@dataclass(frozen=True)
class InterventionResult:
    """Bias before/after an intervention, with a verdict.

    The verdict is deliberately coarse (the paper's standard): the cause
    is *confirmed* when the intervention removes most of the bias.
    """

    name: str
    bias_before: BiasReport
    bias_after: BiasReport
    reduction_threshold: float = 0.7

    @property
    def bias_removed_fraction(self) -> float:
        """Fraction of the (max-min) bias span the intervention removed."""
        before = self.bias_before.stats.maximum - self.bias_before.stats.minimum
        after = self.bias_after.stats.maximum - self.bias_after.stats.minimum
        if before == 0:
            return 0.0
        return max(0.0, 1.0 - after / before)

    @property
    def confirmed(self) -> bool:
        return self.bias_removed_fraction >= self.reduction_threshold

    def summary_line(self) -> str:
        return (
            f"{self.name}: bias span "
            f"{self.bias_before.stats.maximum - self.bias_before.stats.minimum:.4f}"
            f" -> {self.bias_after.stats.maximum - self.bias_after.stats.minimum:.4f}"
            f" ({self.bias_removed_fraction:.0%} removed; "
            f"{'CAUSE CONFIRMED' if self.confirmed else 'not confirmed'})"
        )


def _speedup_bias(study: StudyResult) -> BiasReport:
    return study.speedup_bias()


def run_intervention(
    name: str,
    experiment: Experiment,
    base: ExperimentalSetup,
    treatment: ExperimentalSetup,
    transform: Callable[[ExperimentalSetup], ExperimentalSetup],
    env_sizes: Optional[Sequence[int]] = None,
    orders: Optional[Iterable[Sequence[str]]] = None,
    reduction_threshold: float = 0.7,
) -> InterventionResult:
    """Generic intervention: rerun a study with ``transform`` applied to
    both base and treatment, and compare speedup bias before/after.

    Exactly one of ``env_sizes`` / ``orders`` selects the study type.
    """
    if (env_sizes is None) == (orders is None):
        raise ValueError("provide exactly one of env_sizes or orders")

    def study(b: ExperimentalSetup, t: ExperimentalSetup) -> StudyResult:
        if env_sizes is not None:
            return env_size_study(experiment, b, t, env_sizes)
        return link_order_study(experiment, b, t, orders=orders)

    before = study(base, treatment)
    after = study(transform(base), transform(treatment))
    return InterventionResult(
        name=name,
        bias_before=_speedup_bias(before),
        bias_after=_speedup_bias(after),
        reduction_threshold=reduction_threshold,
    )


def confirm_stack_alignment_cause(
    experiment: Experiment,
    base: ExperimentalSetup,
    treatment: ExperimentalSetup,
    env_sizes: Sequence[int],
    aligned_to: int = 16,
    reduction_threshold: float = 0.7,
) -> InterventionResult:
    """Does force-aligning the stack remove the environment-size bias?"""
    return run_intervention(
        name=f"stack alignment (sp aligned to {aligned_to})",
        experiment=experiment,
        base=base,
        treatment=treatment,
        transform=lambda s: s.with_changes(stack_align=aligned_to),
        env_sizes=env_sizes,
        reduction_threshold=reduction_threshold,
    )


def confirm_lsd_cause(
    experiment: Experiment,
    base: ExperimentalSetup,
    treatment: ExperimentalSetup,
    env_sizes: Sequence[int],
    reduction_threshold: float = 0.5,
) -> InterventionResult:
    """Does disabling the loop stream detector remove the O2/O3 bias
    asymmetry?  (Both configurations lose the LSD.)"""

    def no_lsd(setup: ExperimentalSetup) -> ExperimentalSetup:
        machine = setup.machine_config().with_overrides(has_lsd=False)
        return setup.with_changes(machine=machine)

    return run_intervention(
        name="loop stream detector disabled",
        experiment=experiment,
        base=base,
        treatment=treatment,
        transform=no_lsd,
        env_sizes=env_sizes,
        reduction_threshold=reduction_threshold,
    )


def confirm_function_alignment_cause(
    experiment: Experiment,
    base: ExperimentalSetup,
    treatment: ExperimentalSetup,
    orders: Iterable[Sequence[str]],
    alignment: int = 64,
    reduction_threshold: float = 0.5,
) -> InterventionResult:
    """Does coarse function alignment change link-order bias?  Aligning
    every function to a cache line removes the line-phase component of
    relinking, isolating set-mapping and predictor aliasing effects."""
    return run_intervention(
        name=f"function alignment {alignment}",
        experiment=experiment,
        base=base,
        treatment=treatment,
        transform=lambda s: s.with_changes(function_alignment=alignment),
        orders=orders,
        reduction_threshold=reduction_threshold,
    )
