"""Cycle attribution: explain *where* a cycle difference came from.

The paper's section 4 traces observed bias back to microarchitectural
mechanisms using hardware performance counters.  Our machine model's cost
structure is linear in its counters with known weights, so the simulator
supports an exact version of that analysis: given two measurements of
the same binary-under-different-setups (or two binaries), decompose the
cycle delta into per-mechanism contributions.

For sweeps, :func:`counter_correlations` mirrors what an analyst does on
real hardware: correlate each counter with cycles across the sweep and
rank the suspects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.arch.machines import MachineConfig
from repro.core.experiment import Measurement

#: Counter -> the MachineConfig weight that prices it.  ``issue`` uses
#: instructions; cache-miss contributions are computed separately because
#: an L2 hit and a memory access have different prices.
_LINEAR_WEIGHTS: Tuple[Tuple[str, str], ...] = (
    ("instructions", "issue_cycles"),
    ("mispredicts", "mispredict_cycles"),
    ("taken_branches", "taken_branch_cycles"),
    ("window_fetches", "window_cycles"),
    ("window_straddles", "straddle_cycles"),
    ("unaligned_accesses", "unaligned_cycles"),
    ("line_splits", "split_line_cycles"),
    ("calls", "call_extra"),
    ("returns", "ret_extra"),
)


@dataclass(frozen=True)
class Attribution:
    """Cycle-delta decomposition between two measurements.

    ``contributions`` maps mechanism -> cycles it added going from
    ``baseline`` to ``subject`` (negative = it saved cycles).
    ``unexplained`` is the residual (op-latency mix, cache-level mix and
    load-use stalls are not per-counter decomposable).
    """

    baseline: Measurement
    subject: Measurement
    total_delta: float
    contributions: Dict[str, float]
    unexplained: float

    def ranked(self) -> List[Tuple[str, float]]:
        """Mechanisms sorted by absolute contribution, largest first."""
        return sorted(
            self.contributions.items(), key=lambda kv: -abs(kv[1])
        )

    def dominant_cause(self) -> str:
        """The mechanism contributing the most |cycles|."""
        ranked = self.ranked()
        return ranked[0][0] if ranked else "none"


def attribute_delta(
    baseline: Measurement, subject: Measurement, machine: MachineConfig
) -> Attribution:
    """Decompose ``subject.cycles - baseline.cycles`` by mechanism."""
    b = baseline.counters
    s = subject.counters
    contributions: Dict[str, float] = {}
    for counter_name, weight_name in _LINEAR_WEIGHTS:
        weight = getattr(machine, weight_name)
        delta = getattr(s, counter_name) - getattr(b, counter_name)
        if delta:
            contributions[counter_name] = delta * weight
    # Cache misses: L1 misses that hit L2 cost lat_l2; L2 misses cost
    # lat_mem - (already-counted lat_l2 is not charged on memory paths in
    # the engine, so price them independently).
    l1_delta = (s.l1i_misses + s.l1d_misses) - (b.l1i_misses + b.l1d_misses)
    l2_delta = s.l2_misses - b.l2_misses
    l2_hit_delta = l1_delta - l2_delta
    if l2_hit_delta:
        contributions["cache_l2_hits"] = l2_hit_delta * machine.lat_l2
    if l2_delta:
        contributions["cache_memory"] = l2_delta * machine.lat_mem
    total = s.cycles - b.cycles
    unexplained = total - sum(contributions.values())
    return Attribution(
        baseline=baseline,
        subject=subject,
        total_delta=total,
        contributions=contributions,
        unexplained=unexplained,
    )


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0.0 for degenerate inputs)."""
    n = len(xs)
    if n != len(ys):
        raise ValueError("xs and ys must align")
    if n < 2:
        return 0.0
    mx = sum(xs) / n
    my = sum(ys) / n
    sx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    sy = math.sqrt(sum((y - my) ** 2 for y in ys))
    if sx == 0 or sy == 0:
        return 0.0
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    return cov / (sx * sy)


def counter_correlations(
    measurements: Sequence[Measurement],
) -> List[Tuple[str, float]]:
    """Correlate each counter with cycles across a sweep, ranked by |r|.

    This is the portable (real-hardware) version of
    :func:`attribute_delta`: it needs no model weights, only counters.
    """
    if len(measurements) < 3:
        raise ValueError("need at least 3 measurements to correlate")
    cycles = [m.counters.cycles for m in measurements]
    names = [
        "instructions",
        "mispredicts",
        "taken_branches",
        "window_fetches",
        "window_straddles",
        "unaligned_accesses",
        "line_splits",
        "l1i_misses",
        "l1d_misses",
        "l2_misses",
        "lsd_covered",
    ]
    out: List[Tuple[str, float]] = []
    for name in names:
        xs = [float(getattr(m.counters, name)) for m in measurements]
        out.append((name, pearson(xs, cycles)))
    out.sort(key=lambda kv: -abs(kv[1]))
    return out


def hot_functions(
    measurement: Measurement, top: int = 5
) -> List[Tuple[str, float]]:
    """Top functions by attributed cycles (requires a run made with
    ``profile_functions=True``)."""
    if not measurement.function_cycles:
        raise ValueError(
            "measurement has no function profile; rerun with "
            "profile_functions=True"
        )
    ranked = sorted(
        measurement.function_cycles.items(), key=lambda kv: -kv[1]
    )
    return ranked[:top]
