"""Causal analysis of measurement bias (the paper's section 4).

Three complementary tools:

- :mod:`~repro.analysis.attribution` — decompose cycle deltas by
  mechanism and correlate counters with cycles across sweeps,
- :mod:`~repro.analysis.causal` — intervention experiments that confirm
  or refute a suspected cause,
- :mod:`~repro.analysis.layout` — static placement inspection (loop-head
  alignment, cache-set footprints, stack positions).
"""

from repro.analysis.attribution import (
    Attribution,
    attribute_delta,
    counter_correlations,
    hot_functions,
    pearson,
)
from repro.analysis.causal import (
    InterventionResult,
    run_intervention,
    confirm_function_alignment_cause,
    confirm_lsd_cause,
    confirm_stack_alignment_cause,
)
from repro.analysis.profilediff import (
    FunctionDelta,
    PCDelta,
    PCProfileDiff,
    ProfileDiff,
    pc_profile_diff,
    profile_diff,
)
from repro.workloads.characterize import (
    DynamicCharacter,
    StaticCharacter,
    dynamic_character,
    footprint_vs_cache,
    opcode_mix,
    static_character,
)
from repro.analysis.layout import (
    LoopHeadInfo,
    code_set_footprint,
    data_set_footprint,
    function_placement_table,
    loop_heads,
    set_conflict_score,
    stack_alignment_profile,
    stack_start_for_env,
)

__all__ = [
    "Attribution",
    "InterventionResult",
    "LoopHeadInfo",
    "attribute_delta",
    "code_set_footprint",
    "counter_correlations",
    "data_set_footprint",
    "function_placement_table",
    "hot_functions",
    "loop_heads",
    "pearson",
    "run_intervention",
    "set_conflict_score",
    "stack_alignment_profile",
    "stack_start_for_env",
    "confirm_function_alignment_cause",
    "confirm_lsd_cause",
    "confirm_stack_alignment_cause",
    "FunctionDelta",
    "PCDelta",
    "PCProfileDiff",
    "ProfileDiff",
    "pc_profile_diff",
    "profile_diff",
    "DynamicCharacter",
    "StaticCharacter",
    "dynamic_character",
    "footprint_vs_cache",
    "opcode_mix",
    "static_character",
]
