"""Static layout inspection.

Answers the "where exactly did everything land?" questions that the
paper's cause analysis needs: function placements, loop-head offsets
within fetch windows, cache-set footprints, and where a given environment
size puts the stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.cache import CacheConfig
from repro.isa.program import Executable
from repro.os.environment import Environment
from repro.os.loader import STACK_TOP


@dataclass(frozen=True)
class LoopHeadInfo:
    """Placement of one loop head (backward-branch target)."""

    function: str
    address: int
    window_offset: int  # address mod fetch window
    line_offset: int  # address mod cache line
    body_instructions: int


def loop_heads(
    exe: Executable, fetch_window: int = 16, line_size: int = 64
) -> List[LoopHeadInfo]:
    """All backward-branch targets with their alignment phases.

    A loop head near the end of a fetch window forces straddles on every
    iteration for non-LSD loops — the static signature behind the
    dynamic ``window_straddles`` counter.
    """
    heads: Dict[int, int] = {}  # target flat index -> body length
    for i, op in enumerate(exe.ops):
        if op in (28, 29, 30):  # BEQZ, BNEZ, JMP
            tgt = exe.targets[i]
            if 0 <= tgt <= i:
                body = i - tgt + 1
                prev = heads.get(tgt)
                if prev is None or body < prev:
                    heads[tgt] = body
    out: List[LoopHeadInfo] = []
    for tgt, body in sorted(heads.items()):
        addr = exe.addrs[tgt]
        pf = exe.function_at(tgt)
        out.append(
            LoopHeadInfo(
                function=pf.name if pf else "?",
                address=addr,
                window_offset=addr % fetch_window,
                line_offset=addr % line_size,
                body_instructions=body,
            )
        )
    return out


def function_placement_table(exe: Executable) -> List[Tuple[str, str, int, int]]:
    """(function, module, base address, size) rows in placement order."""
    return [(pf.name, pf.module, pf.base, pf.size) for pf in exe.placed]


def code_set_footprint(exe: Executable, cache: CacheConfig) -> Dict[int, int]:
    """Cache-set -> number of code lines mapping there.

    Two executables with identical code but different link orders have
    different footprints; comparing them explains I-cache-conflict
    components of link-order bias.
    """
    num_sets = cache.num_sets
    footprint: Dict[int, int] = {}
    for pf in exe.placed:
        first_line = pf.base // cache.line_size
        last_line = (pf.end - 1) // cache.line_size
        for line in range(first_line, last_line + 1):
            s = line % num_sets
            footprint[s] = footprint.get(s, 0) + 1
    return footprint


def data_set_footprint(exe: Executable, cache: CacheConfig) -> Dict[int, int]:
    """Cache-set -> number of global-data lines mapping there."""
    num_sets = cache.num_sets
    footprint: Dict[int, int] = {}
    for name, addr in exe.data_addrs.items():
        size = exe.data_counts[name] * (
            8 if exe.data_kinds[name] == "words" else 1
        )
        first_line = addr // cache.line_size
        last_line = (addr + size - 1) // cache.line_size
        for line in range(first_line, last_line + 1):
            s = line % num_sets
            footprint[s] = footprint.get(s, 0) + 1
    return footprint


def set_conflict_score(footprint: Dict[int, int], ways: int) -> int:
    """Lines exceeding associativity, summed over sets — a static proxy
    for conflict-miss pressure."""
    return sum(max(0, count - ways) for count in footprint.values())


def stack_start_for_env(
    environment: Environment,
    argv: Tuple[str, ...] = ("prog",),
    stack_align: int = 4,
) -> int:
    """Where the loader will put ``sp`` for this environment — computed
    without building a process (mirrors the loader's arithmetic)."""
    env_block = environment.total_bytes
    argv_block = sum(len(a) + 1 for a in argv)
    vector = 8 * (1 + len(argv) + 1 + len(environment) + 1)
    sp = STACK_TOP - env_block - argv_block - vector
    return sp & ~(stack_align - 1)


def stack_alignment_profile(
    env_sizes: List[int],
    base: Environment,
    stack_align: int = 4,
) -> List[Tuple[int, int, int]]:
    """(env size, sp mod 8, sp mod 64) per size: the static explanation
    for the environment-size bias structure (which sweep points run with
    misaligned stacks, and which stack slots straddle cache lines)."""
    out: List[Tuple[int, int, int]] = []
    for size in env_sizes:
        env = Environment.of_size(size, base)
        sp = stack_start_for_env(env, stack_align=stack_align)
        out.append((size, sp % 8, sp % 64))
    return out
