"""Process loading: executable + environment -> runnable process image.

Stack construction mirrors the Linux ELF loader:

.. code-block:: text

    STACK_TOP ->  +--------------------------+
                  | environment strings      |  total_bytes of Environment
                  +--------------------------+
                  | argv strings             |
                  +--------------------------+
                  | envp / argv pointer vec  |  8 bytes per entry + NULLs
                  | argc                     |
    sp        ->  +--------------------------+   (aligned down)

Every environment byte therefore shifts the initial stack pointer — and
with it the absolute address (hence the cache-line phase and cache-set
index) of every stack slot the program will ever use.  ``stack_align``
models the loader's final alignment of ``sp``; the paper-era behaviour
that lets byte-level environment changes reach data alignment corresponds
to small values (default 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.isa.program import Executable
from repro.obs import trace as obs_trace
from repro.os.environment import Environment

#: Top of the user stack (grows down), page-aligned.
STACK_TOP = 0x7FFF_F000

#: Default final sp alignment applied by the loader.
DEFAULT_STACK_ALIGN = 4


class LoaderError(Exception):
    """The process image cannot be constructed."""


@dataclass
class ProcessImage:
    """Everything the simulator needs to start executing.

    ``initial_memory`` maps byte addresses to initial values: word values
    for word-object addresses, byte values for byte-object addresses (the
    simulator's memory is access-width keyed; see
    :mod:`repro.arch.engine`).
    """

    executable: Executable
    environment: Environment
    argv: Tuple[str, ...]
    sp_start: int
    initial_memory: Dict[int, int] = field(default_factory=dict)
    stack_align: int = DEFAULT_STACK_ALIGN

    @property
    def env_bytes(self) -> int:
        return self.environment.total_bytes

    def __repr__(self) -> str:
        return (
            f"ProcessImage(sp={self.sp_start:#x}, env={self.env_bytes}B, "
            f"{len(self.initial_memory)} initialized cells)"
        )


InputBindings = Mapping[str, Union[int, Sequence[int]]]


def load_process(
    executable: Executable,
    environment: Optional[Environment] = None,
    argv: Sequence[str] = ("prog",),
    inputs: Optional[InputBindings] = None,
    stack_align: int = DEFAULT_STACK_ALIGN,
) -> ProcessImage:
    """Build a :class:`ProcessImage`.

    ``inputs`` binds named global data objects to initial contents — the
    workload harness's way of feeding each benchmark its input set without
    recompiling.  Scalars take an int; arrays take a sequence no longer
    than the object.  Raises :class:`LoaderError` for unknown symbols or
    oversized bindings.
    """
    environment = environment if environment is not None else Environment.empty()
    if stack_align < 1 or (stack_align & (stack_align - 1)) != 0:
        raise LoaderError(f"stack alignment must be a power of two: {stack_align}")

    with obs_trace.span(
        "load",
        category="os",
        env_bytes=environment.total_bytes,
        stack_align=stack_align,
    ) as load_span:
        return _build_image(
            executable, environment, argv, inputs, stack_align, load_span
        )


def _build_image(
    executable: Executable,
    environment: Environment,
    argv: Sequence[str],
    inputs: Optional[InputBindings],
    stack_align: int,
    load_span,
) -> ProcessImage:
    memory: Dict[int, int] = dict(executable.data_init)
    if inputs:
        for name, value in inputs.items():
            base = executable.data_addrs.get(name)
            if base is None:
                raise LoaderError(f"no data symbol {name!r} in executable")
            kind = executable.data_kinds[name]
            count = executable.data_counts[name]
            stride = 8 if kind == "words" else 1
            if isinstance(value, int):
                values: Sequence[int] = (value,)
            else:
                values = value
            if len(values) > count:
                raise LoaderError(
                    f"binding for {name!r} has {len(values)} elements; "
                    f"object holds {count}"
                )
            for i, v in enumerate(values):
                if kind == "bytes" and not 0 <= v <= 255:
                    raise LoaderError(
                        f"byte object {name!r} binding value {v} out of range"
                    )
                memory[base + i * stride] = v

    env_block = environment.total_bytes
    argv_block = sum(len(a) + 1 for a in argv)
    # Pointer vector: argc + argv pointers + NULL + envp pointers + NULL.
    vector = 8 * (1 + len(argv) + 1 + len(environment) + 1)
    sp = STACK_TOP - env_block - argv_block - vector
    sp &= ~(stack_align - 1)
    if sp <= executable.data_end:
        raise LoaderError("stack would collide with the data segment")

    load_span.set(sp_start=sp, initialized_cells=len(memory))
    return ProcessImage(
        executable=executable,
        environment=environment,
        argv=tuple(argv),
        sp_start=sp,
        initial_memory=memory,
        stack_align=stack_align,
    )
