"""UNIX environment model.

An environment is an ordered mapping of ``NAME`` to ``value`` strings.
Its *size in bytes* follows the kernel's accounting: each variable
occupies ``len("NAME=value") + 1`` bytes (the NUL terminator) in the
block copied to the top of the stack.

The paper's experiments vary total environment size byte-by-byte (e.g. by
growing a single padding variable); :meth:`Environment.of_size` builds
such environments exactly.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple


class Environment:
    """An immutable ordered set of environment variables."""

    __slots__ = ("_vars",)

    def __init__(self, variables: Optional[Mapping[str, str]] = None) -> None:
        self._vars: Dict[str, str] = dict(variables) if variables else {}
        for name in self._vars:
            if not name or "=" in name or "\0" in name:
                raise ValueError(f"invalid environment variable name {name!r}")

    @property
    def total_bytes(self) -> int:
        """Bytes the kernel copies for this environment (incl. NULs)."""
        return sum(len(n) + 1 + len(v) + 1 for n, v in self._vars.items())

    def items(self) -> Iterator[Tuple[str, str]]:
        return iter(self._vars.items())

    def __len__(self) -> int:
        return len(self._vars)

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __getitem__(self, name: str) -> str:
        return self._vars[name]

    def with_var(self, name: str, value: str) -> "Environment":
        """A new environment with ``name`` set to ``value``."""
        merged = dict(self._vars)
        merged[name] = value
        return Environment(merged)

    def without_var(self, name: str) -> "Environment":
        merged = dict(self._vars)
        merged.pop(name, None)
        return Environment(merged)

    @classmethod
    def empty(cls) -> "Environment":
        return cls()

    @classmethod
    def typical(cls) -> "Environment":
        """A small, fixed baseline resembling a login shell's environment."""
        return cls(
            {
                "HOME": "/home/user",
                "PATH": "/usr/local/bin:/usr/bin:/bin",
                "SHELL": "/bin/bash",
                "TERM": "xterm",
            }
        )

    @classmethod
    def of_size(cls, total_bytes: int, base: Optional["Environment"] = None) -> "Environment":
        """An environment of exactly ``total_bytes`` bytes.

        Starts from ``base`` (default: empty) and grows a single padding
        variable ``Z`` — the paper's methodology of varying one innocuous
        variable's length.  Raises :class:`ValueError` when the target is
        smaller than the base (or too small to fit the padding variable's
        minimal ``Z=\\0`` footprint when padding is needed).
        """
        base = base if base is not None else cls.empty()
        if "Z" in base:
            raise ValueError("base environment already defines the padding var Z")
        deficit = total_bytes - base.total_bytes
        if deficit == 0:
            return cls(dict(base._vars))
        # "Z=" + value + NUL -> 3 + len(value) bytes.
        if deficit < 3:
            raise ValueError(
                f"cannot reach {total_bytes} bytes from a {base.total_bytes}-byte "
                f"base (padding needs at least 3 bytes)"
            )
        return base.with_var("Z", "x" * (deficit - 3))

    def __repr__(self) -> str:
        return f"Environment({self.total_bytes} bytes, {len(self._vars)} vars)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Environment):
            return NotImplemented
        return self._vars == other._vars

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._vars.items())))
