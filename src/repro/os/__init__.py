"""Operating-system substrate: environment blocks and process loading.

The paper's headline bias source is the **UNIX environment size**: the
kernel copies environment strings to the top of the new process's stack,
so every byte of ``$ENV`` shifts the stack start address — and with it the
alignment and cache-set placement of every stack-allocated variable in the
program.  This package models exactly that mechanism.
"""

from repro.os.environment import Environment
from repro.os.loader import ProcessImage, load_process, STACK_TOP

__all__ = ["Environment", "ProcessImage", "STACK_TOP", "load_process"]
