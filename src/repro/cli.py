"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``workloads`` — list the benchmark suite,
- ``machines`` — list machine models and their key properties,
- ``run`` — measure one workload under one explicit setup,
- ``study`` — sweep environment size or link order for O-level pairs,
- ``randomized`` — the paper's randomized-setup evaluation protocol,

``study`` and ``randomized`` execute their sweeps through the
fault-tolerant :class:`~repro.core.runner.SweepRunner`: ``--jobs N``
parallelizes across processes, ``--timeout``/``--max-retries`` bound and
retry faulty measurements, and ``--resume PATH`` checkpoints every
completed measurement so an interrupted sweep picks up where it left
off (see docs/robustness.md).

Remaining commands:

- ``characterize`` — static + dynamic shape of one workload,
- ``archive`` / ``verify-archive`` — persist a sweep as JSON and later
  re-measure it, reporting any drift,
- ``survey`` — print the literature-survey table.

Every command prints plain text (the same renderers the benchmark
harness uses) and exits non-zero on verification failures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import workloads
from repro.arch import available_machines, get_machine
from repro.core import Experiment, ExperimentalSetup
from repro.core.bias import env_size_study, link_order_study, sample_link_orders
from repro.core.errors import ReproError
from repro.core.randomization import (
    evaluate_with_randomization,
    paired_random_setups,
)
from repro.core.report import render_series, render_table
from repro.core.runner import RunnerConfig, SweepRunner
from repro.core.survey import generate_corpus, survey_table


def _setup_from_args(args: argparse.Namespace, opt_level: int) -> ExperimentalSetup:
    return ExperimentalSetup(
        machine=args.machine,
        compiler=args.compiler,
        opt_level=opt_level,
        env_bytes=getattr(args, "env_bytes", None),
    )


def _add_setup_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine", default="core2", choices=list(available_machines())
    )
    parser.add_argument("--compiler", default="gcc", choices=["gcc", "icc"])
    parser.add_argument("--size", default="test", choices=["test", "train", "ref"])
    parser.add_argument("--seed", type=int, default=0)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerant sweep execution knobs (see docs/robustness.md)."""
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the sweep (1 = serial, in-process)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="wall-clock seconds allowed per measurement attempt",
    )
    parser.add_argument(
        "--max-retries", type=_non_negative_int, default=2,
        help="retries for retryable faults before quarantining a setup",
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help=(
            "checkpoint journal path; measurements land here as they "
            "complete, and an interrupted sweep re-run with the same "
            "PATH resumes without re-measuring"
        ),
    )


def _run_sweep(exp: Experiment, setups, args: argparse.Namespace) -> int:
    """Measure ``setups`` through the fault-tolerant runner, priming
    ``exp``'s run cache so the serial study code below is all cache
    hits.  Returns the number of quarantined setups."""
    runner = SweepRunner(
        exp,
        RunnerConfig(
            jobs=args.jobs,
            timeout=args.timeout,
            max_retries=args.max_retries,
        ),
        journal_path=args.resume,
    )
    result = runner.run(setups)
    report = result.report
    interesting = (
        report.resumed or report.retries or report.quarantined
        or args.jobs > 1 or args.resume
    )
    if interesting:
        print(report.summary_line())
    return len(report.quarantined)


def cmd_workloads(args: argparse.Namespace) -> int:
    rows = [
        [wl.name, len(wl.sources), wl.description]
        for wl in workloads.suite()
    ]
    print(render_table(["name", "modules", "description"], rows))
    return 0


def cmd_machines(args: argparse.Namespace) -> int:
    rows = []
    headers: Optional[List[str]] = None
    for name in available_machines():
        summary = get_machine(name).summary()
        if headers is None:
            headers = list(summary)
        rows.append([summary[h] for h in headers])
    assert headers is not None
    print(render_table(headers, rows))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    exp = Experiment(workloads.get(args.workload), size=args.size, seed=args.seed)
    setup = _setup_from_args(args, args.opt)
    m = exp.run(setup)
    c = m.counters
    rows = [[k, f"{v:,.0f}" if v >= 100 else f"{v:g}"] for k, v in c.as_dict().items()]
    print(render_table(["counter", "value"], rows, title=m.setup.describe()))
    print(f"\nexit value {m.exit_value} (verified against reference)")
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    exp = Experiment(workloads.get(args.workload), size=args.size, seed=args.seed)
    base = _setup_from_args(args, args.base_opt)
    treatment = _setup_from_args(args, args.treatment_opt)
    if args.parameter == "env":
        sweep = list(range(args.env_start, args.env_stop, args.env_step))
        setups = [
            s.with_changes(env_bytes=env)
            for env in sweep
            for s in (base, treatment)
        ]
        orders = None
    else:
        orders = sample_link_orders(
            exp.workload.module_names(), args.orders, seed=0
        )
        setups = [
            s.with_changes(link_order=tuple(order))
            for order in orders
            for s in (base, treatment)
        ]
    quarantined = _run_sweep(exp, setups, args)
    if quarantined:
        print(
            f"error: {quarantined} setup(s) quarantined — study needs every "
            "point; see the report above"
        )
        return 1
    if args.parameter == "env":
        study = env_size_study(exp, base, treatment, sweep)
    else:
        study = link_order_study(exp, base, treatment, orders=orders)
    print(
        render_series(
            study.points,
            study.speedups,
            title=(
                f"speedup of O{args.treatment_opt} over O{args.base_opt} "
                f"across {args.parameter} ({args.workload}, {args.machine})"
            ),
            reference=1.0,
        )
    )
    print("\n" + study.speedup_bias().summary_line())
    return 0


def cmd_randomized(args: argparse.Namespace) -> int:
    exp = Experiment(workloads.get(args.workload), size=args.size, seed=args.seed)
    base = _setup_from_args(args, args.base_opt)
    treatment = _setup_from_args(args, args.treatment_opt)
    pairs = paired_random_setups(
        exp, base, treatment, args.setups, seed=args.seed
    )
    quarantined = _run_sweep(
        exp, [s for pair in pairs for s in pair], args
    )
    if quarantined:
        print(
            f"error: {quarantined} setup(s) quarantined — the protocol "
            "needs every sampled setup; see the report above"
        )
        return 1
    ev = evaluate_with_randomization(
        exp, base, treatment, n_setups=args.setups, seed=args.seed
    )
    print(ev.summary_line())
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    from repro.workloads.characterize import (
        dynamic_character,
        opcode_mix,
        static_character,
    )

    exp = Experiment(workloads.get(args.workload), size=args.size, seed=args.seed)
    setup = _setup_from_args(args, args.opt)
    st = static_character(exp.build(setup))
    dyn = dynamic_character(exp, setup)
    mix = opcode_mix(exp.build(setup))
    rows = [
        ("modules", st.modules),
        ("functions", st.functions),
        ("static instructions", st.instructions),
        ("code bytes", st.code_bytes),
        ("data bytes", st.data_bytes),
        ("static loops", st.loops),
        ("dynamic instructions", f"{dyn.instructions:,}"),
        ("cycles", f"{dyn.cycles:,.0f}"),
        ("memory intensity", f"{dyn.memory_intensity:.1%}"),
        ("branch intensity", f"{dyn.branch_intensity:.1%}"),
        ("call intensity", f"{dyn.call_intensity:.2%}"),
        ("mispredict rate", f"{dyn.mispredict_rate:.1%}"),
        ("L1D miss rate", f"{dyn.l1d_miss_rate:.1%}"),
        ("hottest function", f"{dyn.hot_function} ({dyn.hot_share:.0%})"),
        ("opcode mix", ", ".join(f"{k}={v}" for k, v in mix.items())),
    ]
    print(
        render_table(
            ["property", "value"],
            rows,
            title=f"{args.workload} at {setup.describe()}",
        )
    )
    return 0


def cmd_archive(args: argparse.Namespace) -> int:
    from repro.core.session import save_measurements

    exp = Experiment(workloads.get(args.workload), size=args.size, seed=args.seed)
    setups = [
        _setup_from_args(args, args.opt).with_changes(env_bytes=env)
        for env in range(args.env_start, args.env_stop, args.env_step)
    ]
    measurements = [exp.run(s) for s in setups]
    save_measurements(args.path, measurements, note=f"{args.workload} sweep")
    print(f"archived {len(measurements)} measurements to {args.path}")
    return 0


def cmd_verify_archive(args: argparse.Namespace) -> int:
    from repro.core.errors import ArchiveCorruption
    from repro.core.session import load_measurements, verify_against_archive

    try:
        archived = load_measurements(args.path)
    except ArchiveCorruption as exc:
        print(f"CORRUPT: {exc}")
        return 1
    if not archived:
        print("archive is empty")
        return 1
    wl = archived[0].workload
    exp = Experiment(
        workloads.get(wl), size=archived[0].size, seed=archived[0].seed
    )
    drift = verify_against_archive(exp, archived)
    if drift is None:
        print(f"OK: {len(archived)} measurements reproduce exactly")
        return 0
    print(f"DRIFT: {drift}")
    return 1


def cmd_survey(args: argparse.Namespace) -> int:
    print(
        render_table(
            ["metric", "value"],
            survey_table(generate_corpus(args.seed)),
            title="literature survey (synthetic corpus; see DESIGN.md)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Measurement-bias laboratory (ASPLOS 2009 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the benchmark suite").set_defaults(
        func=cmd_workloads
    )
    sub.add_parser("machines", help="list machine models").set_defaults(
        func=cmd_machines
    )

    run = sub.add_parser("run", help="measure one workload once")
    run.add_argument("workload", choices=workloads.all_names())
    run.add_argument("--opt", type=int, default=2, choices=[0, 1, 2, 3])
    run.add_argument("--env-bytes", type=int, default=None)
    _add_setup_args(run)
    run.set_defaults(func=cmd_run)

    study = sub.add_parser("study", help="sweep an 'innocuous' parameter")
    study.add_argument("workload", choices=workloads.all_names())
    study.add_argument("parameter", choices=["env", "link"])
    study.add_argument("--base-opt", type=int, default=2, choices=[0, 1, 2, 3])
    study.add_argument(
        "--treatment-opt", type=int, default=3, choices=[0, 1, 2, 3]
    )
    study.add_argument("--env-start", type=int, default=100)
    study.add_argument("--env-stop", type=int, default=356)
    study.add_argument("--env-step", type=int, default=16)
    study.add_argument("--orders", type=int, default=6)
    _add_setup_args(study)
    _add_runner_args(study)
    study.set_defaults(func=cmd_study)

    rand = sub.add_parser(
        "randomized", help="the paper's randomized evaluation protocol"
    )
    rand.add_argument("workload", choices=workloads.all_names())
    rand.add_argument("--base-opt", type=int, default=2, choices=[0, 1, 2, 3])
    rand.add_argument(
        "--treatment-opt", type=int, default=3, choices=[0, 1, 2, 3]
    )
    rand.add_argument("--setups", type=int, default=12)
    _add_setup_args(rand)
    _add_runner_args(rand)
    rand.set_defaults(func=cmd_randomized)

    char = sub.add_parser("characterize", help="profile one workload's shape")
    char.add_argument("workload", choices=workloads.all_names())
    char.add_argument("--opt", type=int, default=2, choices=[0, 1, 2, 3])
    _add_setup_args(char)
    char.set_defaults(func=cmd_characterize)

    archive = sub.add_parser(
        "archive", help="measure an env sweep and save it as JSON"
    )
    archive.add_argument("workload", choices=workloads.all_names())
    archive.add_argument("path")
    archive.add_argument("--opt", type=int, default=2, choices=[0, 1, 2, 3])
    archive.add_argument("--env-start", type=int, default=100)
    archive.add_argument("--env-stop", type=int, default=196)
    archive.add_argument("--env-step", type=int, default=32)
    _add_setup_args(archive)
    archive.set_defaults(func=cmd_archive)

    verify = sub.add_parser(
        "verify-archive", help="re-measure an archive and report drift"
    )
    verify.add_argument("path")
    verify.set_defaults(func=cmd_verify_archive)

    survey = sub.add_parser("survey", help="print the literature survey")
    survey.add_argument("--seed", type=int, default=0)
    survey.set_defaults(func=cmd_survey)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Taxonomy errors are diagnoses, not crashes: one line, exit 1.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
