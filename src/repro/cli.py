"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``workloads`` — list the benchmark suite,
- ``machines`` — list machine models and their key properties,
- ``run`` — measure one workload under one explicit setup,
- ``study`` — sweep environment size or link order for O-level pairs,
- ``randomized`` — the paper's randomized-setup evaluation protocol,

``study`` and ``randomized`` execute their sweeps through the
fault-tolerant :class:`~repro.core.runner.SweepRunner`: ``--jobs N``
parallelizes across processes, ``--timeout``/``--max-retries`` bound and
retry faulty measurements, and ``--resume PATH`` checkpoints every
completed measurement so an interrupted sweep picks up where it left
off (see docs/robustness.md).  They also carry the observability
surface (see docs/observability.md): live per-setup progress on stderr
(``--quiet`` silences it), ``--trace-out FILE`` records a Chrome-trace
span timeline of the whole sweep, and ``--manifest-out FILE`` writes the
run's provenance manifest (written next to the trace by default).

Remaining commands:

- ``characterize`` — static + dynamic shape of one workload,
- ``archive`` / ``verify-archive`` — persist a sweep as JSON (with an
  embedded provenance manifest) and later re-measure it, reporting any
  drift,
- ``audit`` — flag benchmarking crimes (single-setup conclusions,
  pseudoreplication, weak CIs, selective reporting, ratio
  mis-aggregation) in any manifest, archive, or sweep report; exits
  nonzero when a crime is present (see docs/statistics.md),
- ``obs`` — summarize / validate / merge / diff traces, manifests, and
  checkpoint journals,
- ``journal`` — compact or summarize a sweep's checkpoint journal,
- ``store`` — stats / gc / verify / export for a content-addressed
  measurement store (see docs/store.md),
- ``survey`` — print the literature-survey table.

Incremental sweeps: ``--store DIR`` (or ``$REPRO_STORE``) backs
``run``/``study``/``randomized`` with a content-addressed store —
setups measured by any earlier run are served from the store instead of
executed, with the report, journal, and published tables byte-identical
to a cold run; ``--no-store`` opts out.  A ``store: hits=…`` summary
goes to stderr and the provenance manifest records the hit counts.

Chaos engineering: ``--fault-plan SPEC`` installs a deterministic
:class:`~repro.faults.FaultPlan` (``seed=3,worker_crash=0.4,...`` or a
JSON object) for the sweep, so the runner's supervision and recovery
paths can be exercised from the command line; ``--report-out FILE``
writes the canonical SweepReport JSON for byte-identity comparisons.

Distributed sweeps (see docs/distributed.md): ``agent`` starts a sweep
agent (``repro agent --listen HOST:PORT --jobs N``) and
``--hosts host1:port,host2:port`` on ``study``/``randomized`` dispatches
the sweep to those agents over TCP instead of local worker processes —
same report bytes, same journal, same trace (with host-qualified span
aliases), and the manifest names every agent that served results.

The sweep service (see docs/service.md): ``serve`` runs a long-lived
coordinator with a durable study queue — agents dial *in* with
``repro agent --connect HOST:PORT`` (reconnecting across coordinator
restarts on seeded backoff), clients submit studies with ``submit`` and
inspect them with ``status`` over a local HTTP/JSON API, and a
coordinator killed mid-study restarts from its write-ahead log and
finishes with byte-identical reports (``repro fsck`` audits the WAL).

Every command prints plain text (the same renderers the benchmark
harness uses) and exits non-zero on verification failures.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import faults, workloads
from repro.arch import available_machines, get_machine
from repro.core import Experiment, ExperimentalSetup
from repro.core.bias import env_size_study, link_order_study, sample_link_orders
from repro.core.errors import ReproError
from repro.core.randomization import (
    evaluate_with_randomization,
    paired_random_setups,
)
from repro.core.report import render_series, render_table
from repro.core.runner import RunnerConfig, SweepRunner
from repro.core.survey import generate_corpus, survey_table


def _setup_from_args(args: argparse.Namespace, opt_level: int) -> ExperimentalSetup:
    return ExperimentalSetup(
        machine=args.machine,
        compiler=args.compiler,
        opt_level=opt_level,
        env_bytes=getattr(args, "env_bytes", None),
    )


def _add_setup_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine", default="core2", choices=list(available_machines())
    )
    parser.add_argument("--compiler", default="gcc", choices=["gcc", "icc"])
    parser.add_argument("--size", default="test", choices=["test", "train", "ref"])
    parser.add_argument("--seed", type=int, default=0)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _fault_plan_arg(text: str) -> faults.FaultPlan:
    try:
        return faults.parse_plan(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _hosts_arg(text: str) -> str:
    from repro.core.distributed import parse_hosts

    try:
        parse_hosts(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return text


def _listen_arg(text: str):
    from repro.core.distributed import parse_host

    try:
        return parse_host(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerant sweep execution knobs (see docs/robustness.md)."""
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the sweep (1 = serial, in-process)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="wall-clock seconds allowed per measurement attempt",
    )
    parser.add_argument(
        "--max-retries", type=_non_negative_int, default=2,
        help="retries for retryable faults before quarantining a setup",
    )
    parser.add_argument(
        "--hang-timeout", type=float, default=None,
        help=(
            "seconds of heartbeat silence before a busy worker is "
            "declared hung and failed over (default: adapt to observed "
            "task durations; parallel mode only)"
        ),
    )
    parser.add_argument(
        "--max-respawns", type=_non_negative_int, default=8,
        help=(
            "replacement workers the pool may start before the sweep "
            "degrades to in-process execution (with --hosts: the "
            "coordinator's reconnection budget)"
        ),
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help=(
            "checkpoint journal path; measurements land here as they "
            "complete, and an interrupted sweep re-run with the same "
            "PATH resumes without re-measuring"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the live per-setup progress on stderr",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help=(
            "record the sweep as a Chrome-trace JSON file (open in "
            "chrome://tracing or https://ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--manifest-out", metavar="FILE", default=None,
        help=(
            "write the run's provenance manifest here (defaults to "
            "FILE.manifest.json next to --trace-out)"
        ),
    )
    parser.add_argument(
        "--trace-sample", metavar="N", type=_positive_int, default=1,
        help=(
            "keep per-setup trace spans for 1 in N setups (deterministic "
            "by setup identity; default 1 = every setup).  Measurements "
            "and reports are unaffected; the rate lands in the manifest"
        ),
    )
    parser.add_argument(
        "--timeline-out", metavar="FILE", default=None,
        help=(
            "stream a metrics timeline (throughput, worker utilisation, "
            "store hits) to this JSONL file; render with "
            "'repro obs timeline FILE'"
        ),
    )
    parser.add_argument(
        "--timeline-interval", metavar="SECONDS", type=float, default=1.0,
        help="seconds between timeline samples (default: 1.0)",
    )
    parser.add_argument(
        "--engine-profile", action="store_true",
        default=bool(os.environ.get("REPRO_ENGINE_PROFILE", "").strip()),
        help=(
            "collect engine self-profiling (opcode-class dispatch "
            "counts, block replay stats, per-class wall time) into the "
            "manifest's perf section (default: $REPRO_ENGINE_PROFILE); "
            "in-process runs only — use --jobs 1"
        ),
    )
    parser.add_argument(
        "--fault-plan", metavar="SPEC", type=_fault_plan_arg, default=None,
        help=(
            "deterministic chaos: inject faults per SPEC "
            "('seed=3,worker_crash=0.4,...' or a JSON object); kinds: "
            + ", ".join(faults.KINDS)
        ),
    )
    parser.add_argument(
        "--report-out", metavar="FILE", default=None,
        help="write the canonical SweepReport JSON here",
    )
    parser.add_argument(
        "--journal-max-records", metavar="N", type=_positive_int,
        default=None,
        help=(
            "auto-compact the --resume journal after the sweep once it "
            "exceeds N records"
        ),
    )
    parser.add_argument(
        "--hosts", metavar="H1:P1,H2:P2", type=_hosts_arg, default=None,
        help=(
            "dispatch the sweep to these remote agents (repro agent) "
            "over TCP instead of local worker processes; --jobs is "
            "ignored (each agent brings its own)"
        ),
    )
    parser.add_argument(
        "--secret", metavar="SECRET",
        default=os.environ.get("REPRO_AGENT_SECRET"),
        help=(
            "shared secret for the --hosts agent handshake (default: "
            "$REPRO_AGENT_SECRET); must match each agent's --secret"
        ),
    )
    _add_store_args(parser)


def _add_store_args(parser: argparse.ArgumentParser) -> None:
    """Content-addressed store flags (see docs/store.md)."""
    parser.add_argument(
        "--store", metavar="DIR", default=os.environ.get("REPRO_STORE"),
        help=(
            "content-addressed measurement store directory (default: "
            "$REPRO_STORE); setups already held there skip execution "
            "with byte-identical reports"
        ),
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="ignore $REPRO_STORE / --store and measure everything",
    )


def _store_from_args(args: argparse.Namespace):
    """The :class:`~repro.store.MeasurementStore` the flags ask for, or
    None (no --store/$REPRO_STORE, or --no-store)."""
    if getattr(args, "no_store", False) or not getattr(args, "store", None):
        return None
    from repro.store import open_store

    return open_store(args.store)


def _manifest_path(args: argparse.Namespace) -> Optional[str]:
    if args.manifest_out is not None:
        return args.manifest_out
    if args.trace_out is None:
        return None
    stem = args.trace_out
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    return stem + ".manifest.json"


def _run_sweep(
    exp: Experiment,
    setups,
    args: argparse.Namespace,
    stats_provider=None,
) -> int:
    """Measure ``setups`` through the fault-tolerant runner, priming
    ``exp``'s run cache so the serial study code below is all cache
    hits.  Returns the number of quarantined setups.

    Observability: progress goes to stderr (stdout stays exactly the
    published tables), ``--trace-out`` scopes a real tracer around the
    sweep, and a provenance manifest is written when asked for.
    ``stats_provider`` (optional, ``() -> Optional[dict]``) supplies the
    manifest's statistical-inference section; it is called only after a
    fully-covered sweep (every run a cache hit, no quarantines), so a
    partial sweep never records confident-looking statistics.
    """
    from repro.obs import manifest as obs_manifest
    from repro.obs import metrics as obs_metrics
    from repro.obs import perf as obs_perf
    from repro.obs import progress as obs_progress
    from repro.obs import trace as obs_trace

    config = RunnerConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        max_retries=args.max_retries,
        hang_timeout=args.hang_timeout,
        max_respawns=args.max_respawns,
        journal_max_records=args.journal_max_records,
        hosts=args.hosts,
        secret=args.secret,
        trace_sample=args.trace_sample,
        timeline_interval=args.timeline_interval,
    )
    if args.engine_profile:
        obs_perf.enable_engine_profiling()
    store = _store_from_args(args)
    runner = SweepRunner(
        exp,
        config,
        journal_path=args.resume,
        fault_plan=args.fault_plan,
        progress=obs_progress.for_stream(sys.stderr, quiet=args.quiet),
        timeline_path=args.timeline_out,
        store=store,
    )
    tracer = (
        obs_trace.Tracer(label=f"repro {args.command}")
        if args.trace_out
        else None
    )
    with obs_trace.tracing(tracer):
        result = runner.run(setups)
    report = result.report
    if tracer is not None:
        tracer.write(args.trace_out)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.timeline_out:
        print(f"timeline written to {args.timeline_out}", file=sys.stderr)
    manifest_path = _manifest_path(args)
    if manifest_path is not None:
        artifacts = {}
        if args.trace_out:
            artifacts[args.trace_out] = obs_manifest.file_checksum(
                args.trace_out
            )
        if args.timeline_out:
            artifacts[args.timeline_out] = obs_manifest.file_checksum(
                args.timeline_out
            )
        stats = (
            stats_provider()
            if stats_provider is not None and not report.quarantined
            else None
        )
        manifest = obs_manifest.build_manifest(
            experiment=exp,
            setups=setups,
            runner_config=config,
            fault_plan=args.fault_plan,
            report=report,
            metrics=obs_metrics.registry().snapshot(),
            artifacts=artifacts,
            hosts=runner.hosts_served,
            store=store,
            perf=obs_perf.snapshot(),
            stats=stats,
            note=f"repro {args.command} {args.workload}",
        )
        obs_manifest.save_manifest(manifest_path, manifest)
        print(f"manifest written to {manifest_path}", file=sys.stderr)
    if args.report_out is not None:
        with open(args.report_out, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report written to {args.report_out}", file=sys.stderr)
    if store is not None:
        # stderr, like progress: stdout stays exactly the published
        # tables (CI compares it byte-for-byte across runs).
        print(store.summary(), file=sys.stderr)
    interesting = (
        report.resumed or report.retries or report.quarantined
        or report.degraded or args.jobs > 1 or args.resume
        or args.fault_plan is not None
    )
    if interesting:
        print(report.summary_line())
    return len(report.quarantined)


def cmd_workloads(args: argparse.Namespace) -> int:
    """`repro workloads`: list the workload suite."""
    rows = [
        [wl.name, len(wl.sources), wl.description]
        for wl in workloads.suite()
    ]
    print(render_table(["name", "modules", "description"], rows))
    return 0


def cmd_machines(args: argparse.Namespace) -> int:
    """`repro machines`: list the modeled platforms."""
    rows = []
    headers: Optional[List[str]] = None
    for name in available_machines():
        summary = get_machine(name).summary()
        if headers is None:
            headers = list(summary)
        rows.append([summary[h] for h in headers])
    assert headers is not None
    print(render_table(headers, rows))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """`repro run`: one measurement, with counters and verification."""
    exp = Experiment(workloads.get(args.workload), size=args.size, seed=args.seed)
    setup = _setup_from_args(args, args.opt)
    store = _store_from_args(args)
    if store is not None:
        exp.attach_store(store)
        m = store.get_measurement(exp, setup)
        if m is None:
            m = exp.run(setup)
            store.put_measurement(exp, m)
        print(store.summary(), file=sys.stderr)
    else:
        m = exp.run(setup)
    c = m.counters
    rows = [[k, f"{v:,.0f}" if v >= 100 else f"{v:g}"] for k, v in c.as_dict().items()]
    print(render_table(["counter", "value"], rows, title=m.setup.describe()))
    print(f"\nexit value {m.exit_value} (verified against reference)")
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    """`repro study`: an env-size or link-order bias study."""
    exp = Experiment(workloads.get(args.workload), size=args.size, seed=args.seed)
    base = _setup_from_args(args, args.base_opt)
    treatment = _setup_from_args(args, args.treatment_opt)
    if args.parameter == "env":
        sweep = list(range(args.env_start, args.env_stop, args.env_step))
        setups = [
            s.with_changes(env_bytes=env)
            for env in sweep
            for s in (base, treatment)
        ]
        orders = None
    else:
        orders = sample_link_orders(
            exp.workload.module_names(), args.orders, seed=0
        )
        setups = [
            s.with_changes(link_order=tuple(order))
            for order in orders
            for s in (base, treatment)
        ]
    quarantined = _run_sweep(exp, setups, args)
    if quarantined:
        print(
            f"error: {quarantined} setup(s) quarantined — study needs every "
            "point; see the report above"
        )
        return 1
    if args.parameter == "env":
        study = env_size_study(exp, base, treatment, sweep)
    else:
        study = link_order_study(exp, base, treatment, orders=orders)
    print(
        render_series(
            study.points,
            study.speedups,
            title=(
                f"speedup of O{args.treatment_opt} over O{args.base_opt} "
                f"across {args.parameter} ({args.workload}, {args.machine})"
            ),
            reference=1.0,
        )
    )
    print("\n" + study.speedup_bias().summary_line())
    return 0


def cmd_randomized(args: argparse.Namespace) -> int:
    """`repro randomized`: the paper's setup-randomization protocol.

    Beyond the t interval, the verdict block carries the full inference
    work-up (see docs/statistics.md): a BCa bootstrap interval, the
    paired Wilcoxon signed-rank test with its rank-biserial effect
    size, robust aggregates, and the sequential required-sample-size
    recommendation.  The same bundle lands in the provenance manifest's
    ``stats`` section when ``--manifest`` is set, which is what
    ``repro audit`` later recomputes claims from.
    """
    from repro.core.errors import StatsError

    exp = Experiment(workloads.get(args.workload), size=args.size, seed=args.seed)
    base = _setup_from_args(args, args.base_opt)
    treatment = _setup_from_args(args, args.treatment_opt)
    pairs = paired_random_setups(
        exp, base, treatment, args.setups, seed=args.seed
    )

    # Computed at most once, after the sweep primes the run cache: the
    # manifest's stats section and the printed verdict block must come
    # from the same evaluation.
    cache = {}

    def evaluated():
        if "ev" not in cache:
            cache["ev"] = evaluate_with_randomization(
                exp, base, treatment, n_setups=args.setups, seed=args.seed
            )
            try:
                cache["analysis"] = cache["ev"].analysis(seed=args.seed)
            except StatsError as exc:
                cache["analysis"] = None
                cache["skip_reason"] = str(exc)
        return cache

    def stats_provider():
        analysis = evaluated()["analysis"]
        return analysis.to_dict() if analysis is not None else None

    quarantined = _run_sweep(
        exp,
        [s for pair in pairs for s in pair],
        args,
        stats_provider=stats_provider,
    )
    if quarantined:
        print(
            f"error: {quarantined} setup(s) quarantined — the protocol "
            "needs every sampled setup; see the report above"
        )
        return 1
    state = evaluated()
    print(state["ev"].summary_line())
    analysis = state["analysis"]
    if analysis is not None:
        for line in analysis.summary_lines():
            print(line)
    else:
        print(f"inference skipped: {state['skip_reason']}")
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    """`repro characterize`: a workload's static + dynamic shape."""
    from repro.workloads.characterize import (
        dynamic_character,
        opcode_mix,
        static_character,
    )

    exp = Experiment(workloads.get(args.workload), size=args.size, seed=args.seed)
    setup = _setup_from_args(args, args.opt)
    st = static_character(exp.build(setup))
    dyn = dynamic_character(exp, setup)
    mix = opcode_mix(exp.build(setup))
    rows = [
        ("modules", st.modules),
        ("functions", st.functions),
        ("static instructions", st.instructions),
        ("code bytes", st.code_bytes),
        ("data bytes", st.data_bytes),
        ("static loops", st.loops),
        ("dynamic instructions", f"{dyn.instructions:,}"),
        ("cycles", f"{dyn.cycles:,.0f}"),
        ("memory intensity", f"{dyn.memory_intensity:.1%}"),
        ("branch intensity", f"{dyn.branch_intensity:.1%}"),
        ("call intensity", f"{dyn.call_intensity:.2%}"),
        ("mispredict rate", f"{dyn.mispredict_rate:.1%}"),
        ("L1D miss rate", f"{dyn.l1d_miss_rate:.1%}"),
        ("hottest function", f"{dyn.hot_function} ({dyn.hot_share:.0%})"),
        ("opcode mix", ", ".join(f"{k}={v}" for k, v in mix.items())),
    ]
    print(
        render_table(
            ["property", "value"],
            rows,
            title=f"{args.workload} at {setup.describe()}",
        )
    )
    return 0


def cmd_archive(args: argparse.Namespace) -> int:
    """`repro archive`: measure a sweep and save it as an archive."""
    from repro.core.session import save_measurements
    from repro.obs import metrics as obs_metrics
    from repro.obs.manifest import build_manifest

    exp = Experiment(workloads.get(args.workload), size=args.size, seed=args.seed)
    setups = [
        _setup_from_args(args, args.opt).with_changes(env_bytes=env)
        for env in range(args.env_start, args.env_stop, args.env_step)
    ]
    measurements = [exp.run(s) for s in setups]
    manifest = build_manifest(
        experiment=exp,
        setups=setups,
        metrics=obs_metrics.registry().snapshot(),
        note=f"{args.workload} sweep",
    )
    save_measurements(
        args.path,
        measurements,
        note=f"{args.workload} sweep",
        manifest=manifest,
    )
    print(f"archived {len(measurements)} measurements to {args.path}")
    return 0


def cmd_verify_archive(args: argparse.Namespace) -> int:
    """`repro verify-archive`: re-measure an archive and compare."""
    from repro.core.errors import ArchiveCorruption
    from repro.core.session import load_measurements, verify_against_archive

    try:
        archived = load_measurements(args.path)
    except ArchiveCorruption as exc:
        print(f"CORRUPT: {exc}")
        return 1
    if not archived:
        print("archive is empty")
        return 1
    wl = archived[0].workload
    exp = Experiment(
        workloads.get(wl), size=archived[0].size, seed=archived[0].seed
    )
    drift = verify_against_archive(exp, archived)
    if drift is None:
        print(f"OK: {len(archived)} measurements reproduce exactly")
        return 0
    print(f"DRIFT: {drift}")
    return 1


def cmd_audit(args: argparse.Namespace) -> int:
    """`repro audit`: flag benchmarking crimes in a study document.

    ``PATH`` is a provenance manifest, a measurement archive, or a bare
    sweep report; the auditor names every statistical crime it finds
    (stable codes — see docs/statistics.md) and exits nonzero when any
    is present.  ``--json`` prints the machine-readable verdict;
    ``--record`` writes the verdict back into the document's manifest
    as an ``audit`` provenance section.
    """
    import json
    import time

    from repro.audit import audit_file
    from repro.obs.manifest import MANIFEST_FORMAT, save_manifest

    result = audit_file(args.path)
    if args.record:
        with open(args.path) as fh:
            document = json.load(fh)
        verdict = dict(result.to_dict(), created_unix=time.time())
        if document.get("format") == MANIFEST_FORMAT:
            document["audit"] = verdict
            save_manifest(args.path, document)
        elif isinstance(document.get("manifest"), dict):
            from repro import storageio

            document["manifest"]["audit"] = verdict
            storageio.atomic_write_text(
                args.path,
                json.dumps(document, indent=1),
                key=f"archive:{os.path.basename(args.path)}",
            )
        else:
            print(
                "error: --record needs a manifest (or an archive with an "
                "embedded manifest) to attach the verdict to",
                file=sys.stderr,
            )
            return 2
        print(f"audit verdict recorded in {args.path}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_dict(), indent=1, sort_keys=True))
    else:
        print("\n".join(result.summary_lines()))
    return 0 if result.clean else 1


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    """`repro obs flame`: simulated-cycle flamegraph of one measurement.

    ``PATH`` is a measurement archive (the per-PC profile is re-derived
    by deterministic re-execution, like ``verify-archive``) or a
    Chrome-trace file (folded wall-clock span self-times).  The folded
    output is checked against the engine's cycle counter before anything
    is printed — a flamegraph that does not account for every simulated
    cycle is an error, not a rendering.
    """
    import json

    from repro.obs import flame as obs_flame
    from repro.obs import inspect as obs_inspect

    data = obs_inspect.load_json_artifact(args.path)
    if obs_inspect.is_trace(data):
        lines = obs_flame.fold_trace(data)
        if args.folded:
            with open(args.folded, "w") as fh:
                fh.write("\n".join(lines) + "\n")
            print(f"folded stacks written to {args.folded}", file=sys.stderr)
        else:
            for line in lines:
                print(line)
        return 0

    exp, setup, frames, result = obs_flame.frames_for_archive(
        args.path, index=args.index
    )
    errors = obs_flame.validate_fold(frames, result.counters.cycles)
    if errors:
        print(f"INVALID flamegraph for {args.path}:")
        for problem in errors:
            print(f"  - {problem}")
        return 1
    if args.against is not None:
        frames_b, result_b = obs_flame.profile_flame(
            exp, load_archived_setup(args.path, args.against)
        )
        deltas = obs_flame.diff(frames, frames_b)
        rows = [
            [
                d.function,
                d.module,
                f"{d.centi_a / 100.0:.2f}",
                f"{d.centi_b / 100.0:.2f}",
                f"{d.delta_cycles:+.2f}",
            ]
            for d in deltas[: args.top]
        ]
        print(
            render_table(
                ["function", "module", "cycles A", "cycles B", "delta"],
                rows,
                title=(
                    f"flame diff [{args.index}] vs [{args.against}]: "
                    f"culprit {deltas[0].function} "
                    f"({deltas[0].delta_cycles:+.2f} cycles)"
                ),
            )
        )
    else:
        print(
            obs_flame.render_flame(
                frames,
                top=args.top,
                title=(
                    f"flame [{args.index}] {setup.describe()}: "
                    f"{result.counters.cycles:.2f} cycles"
                ),
            )
        )
    if args.folded:
        with open(args.folded, "w") as fh:
            fh.write("\n".join(obs_flame.folded_lines(frames)) + "\n")
        print(f"folded stacks written to {args.folded}", file=sys.stderr)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(obs_flame.flame_tree(frames), fh, indent=1)
        print(f"flame tree written to {args.json_out}", file=sys.stderr)
    return 0


def load_archived_setup(path: str, index: int) -> ExperimentalSetup:
    """The setup of measurement ``index`` in the archive at ``path``."""
    from repro.core.session import load_measurements

    archived = load_measurements(path)
    if not (0 <= index < len(archived)):
        raise ReproError(
            f"archive {path} holds measurements 0..{len(archived) - 1}, "
            f"asked for {index}"
        )
    return archived[index].setup


def cmd_obs(args: argparse.Namespace) -> int:
    """`repro obs`: summarize/validate/merge/diff observability artifacts."""
    import json

    from repro.obs import inspect as obs_inspect

    if args.obs_command == "summary":
        for path in args.paths:
            data = obs_inspect.load_json_artifact(path)
            if getattr(args, "json", False):
                # Machine-readable: the loaded artifact verbatim (JSONL
                # artifacts appear under their wrapper key), so scripts
                # can pick out e.g. manifest perf/store sections.
                print(json.dumps(data, indent=1, sort_keys=True))
                continue
            if obs_inspect.is_trace(data):
                print(obs_inspect.summarize_trace(data))
            elif obs_inspect.is_manifest(data):
                print(obs_inspect.summarize_manifest(data))
            elif obs_inspect.is_journal(data):
                print(obs_inspect.summarize_journal(data))
            elif obs_inspect.is_timeline(data):
                from repro.obs import perf as obs_perf

                print(obs_perf.summarize_timeline(data))
            else:
                print(
                    f"error: {path} is not a trace, manifest, journal, "
                    "or timeline",
                    file=sys.stderr,
                )
                return 1
        return 0

    if args.obs_command == "validate":
        from repro.obs import perf as obs_perf

        failures = 0
        for path in args.paths:
            data = obs_inspect.load_json_artifact(path)
            if obs_inspect.is_trace(data):
                kind, errors = "trace", obs_inspect.validate_trace(data)
            elif obs_inspect.is_manifest(data):
                kind, errors = "manifest", obs_inspect.validate_manifest(data)
            elif obs_inspect.is_journal(data):
                kind, errors = "journal", obs_inspect.validate_journal(data)
            elif obs_inspect.is_timeline(data):
                kind, errors = "timeline", obs_perf.validate_timeline(data)
            else:
                kind, errors = "artifact", [
                    "not a trace, manifest, journal, or timeline"
                ]
            if errors:
                failures += 1
                print(f"INVALID {kind} {path}:")
                for problem in errors:
                    print(f"  - {problem}")
            else:
                print(f"OK: valid {kind}: {path}")
        return 1 if failures else 0

    if args.obs_command == "flame":
        return _cmd_obs_flame(args)

    if args.obs_command == "timeline":
        from repro.obs import perf as obs_perf

        data = obs_inspect.load_json_artifact(args.path)
        if not obs_inspect.is_timeline(data):
            print(
                f"error: {args.path} is not a metrics timeline",
                file=sys.stderr,
            )
            return 1
        errors = obs_perf.validate_timeline(data)
        if errors:
            print(f"INVALID timeline {args.path}:")
            for problem in errors:
                print(f"  - {problem}")
            return 1
        print(obs_perf.summarize_timeline(data, rows=args.rows))
        return 0

    if args.obs_command == "merge":
        traces = [obs_inspect.load_json_artifact(p) for p in args.paths]
        bad = [
            p for p, t in zip(args.paths, traces) if not obs_inspect.is_trace(t)
        ]
        if bad:
            print(f"error: not traces: {', '.join(bad)}", file=sys.stderr)
            return 1
        merged = obs_inspect.merge_traces(traces, labels=list(args.paths))
        with open(args.out, "w") as fh:
            json.dump(merged, fh, indent=1)
        print(f"merged {len(traces)} traces into {args.out}")
        return 0

    # diff
    a = obs_inspect.load_json_artifact(args.a)
    b = obs_inspect.load_json_artifact(args.b)
    if obs_inspect.is_trace(a) and obs_inspect.is_trace(b):
        print(obs_inspect.diff_traces(a, b))
        return 0
    if obs_inspect.is_manifest(a) and obs_inspect.is_manifest(b):
        print(obs_inspect.diff_manifests(a, b))
        return 0
    print(
        "error: diff needs two traces or two manifests", file=sys.stderr
    )
    return 1


def cmd_journal(args: argparse.Namespace) -> int:
    """`repro journal`: compact or summarize checkpoint journals."""
    from repro.obs import inspect as obs_inspect

    if args.journal_command == "compact":
        from repro.core.runner import compact_journal

        for path in args.paths:
            print(compact_journal(path).summary_line())
        return 0

    # summary
    failures = 0
    for path in args.paths:
        data = obs_inspect.load_json_artifact(path)
        if not obs_inspect.is_journal(data):
            print(f"error: {path} is not a checkpoint journal", file=sys.stderr)
            failures += 1
            continue
        print(obs_inspect.summarize_journal(data))
    return 1 if failures else 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """`repro fsck`: audit (and with --repair, heal) on-disk artifacts.

    Walks journals, archives, store directories and manifests; exits
    nonzero when damage is found that this run did not (or could not)
    repair, so recovery scripts and CI can gate on it directly.
    """
    from repro.fsck import fsck_paths

    report = fsck_paths(args.paths, repair=args.repair)
    for line in report.summary_lines():
        print(line)
    if args.json is not None:
        text = report.to_json() + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text)
            print(f"report written to {args.json}", file=sys.stderr)
    return report.exit_code


def cmd_store(args: argparse.Namespace) -> int:
    """`repro store`: stats/gc/verify/export on a measurement store."""
    from repro.store import open_store

    if not args.dir:
        print(
            "error: no store directory (pass one or set $REPRO_STORE)",
            file=sys.stderr,
        )
        return 2
    store = open_store(args.dir)
    if args.store_command == "stats":
        stats = store.stats()
        rows = [[k, str(stats[k])] for k in sorted(stats)]
        print(render_table(["property", "value"], rows, title=args.dir))
        return 0

    if args.store_command == "gc":
        evicted, freed = store.gc(args.max_bytes)
        stats = store.stats()
        print(
            f"gc: evicted {evicted} entries ({freed} bytes); "
            f"{stats['entries']} entries ({stats['bytes']} bytes) remain"
        )
        return 0

    if args.store_command == "verify":
        ok, corrupt = store.verify()
        for key in corrupt:
            print(f"CORRUPT: {key}")
        print(f"{ok} entries verified, {len(corrupt)} corrupt")
        return 1 if corrupt else 0

    # export
    count = store.export(args.out, note=args.note)
    print(f"exported {count} measurements to {args.out}")
    return 0


def cmd_agent(args: argparse.Namespace) -> int:
    """`repro agent`: serve sweeps to remote coordinators over TCP.

    Two rendezvous directions share one agent: ``--listen`` waits for a
    coordinator to dial it (static ``--hosts`` rosters), ``--connect``
    dials a ``repro serve`` coordinator and re-dials it across restarts
    on seeded exponential backoff.
    """
    from repro.core.distributed import AgentServer

    server = AgentServer(
        host=args.listen[0],
        port=args.listen[1],
        jobs=args.jobs,
        port_file=args.port_file,
        quiet=args.quiet,
        secret=args.secret,
    )
    try:
        if args.connect is not None:
            host, port = args.connect
            if port == 0:
                print("error: --connect needs an explicit port", file=sys.stderr)
                return 2
            print(
                f"agent dialing coordinator {host}:{port} "
                f"({args.jobs} worker job(s)); Ctrl-C to stop",
                file=sys.stderr,
            )
            server.serve_connect(
                host,
                port,
                backoff_seed=args.backoff_seed,
                max_retries=args.reconnect_retries,
            )
        else:
            bound = server.bind()
            print(
                f"agent listening on {bound[0]}:{bound[1]} "
                f"({args.jobs} worker job(s)); Ctrl-C to stop",
                file=sys.stderr,
            )
            server.serve_forever()
    except KeyboardInterrupt:
        print("agent stopped", file=sys.stderr)
        return 0
    # A non-zero exit on an injected crash lets a process supervisor
    # (and the chaos harness) tell a killed agent from a retired one.
    return 1 if server.crashed else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """`repro serve`: the resilient sweep service coordinator."""
    from repro.core.service import ServiceCoordinator

    coordinator = ServiceCoordinator(
        workdir=args.workdir,
        http_addr=args.http,
        agent_addr=args.listen,
        secret=args.secret,
        fault_plan=args.fault_plan,
        max_queue=args.max_queue,
        max_retries=args.max_retries,
        timeout=args.timeout,
        heartbeat_interval=args.heartbeat_interval,
        lease_timeout=args.lease_timeout,
        agentless_grace=args.agentless_grace,
        port_file=args.port_file,
        quiet=args.quiet,
        note=args.note,
    )
    return coordinator.run()


def _spec_from_args(args: argparse.Namespace):
    from repro.core.service import StudySpec

    return StudySpec(
        workload=args.workload,
        parameter=args.parameter,
        base_opt=args.base_opt,
        treatment_opt=args.treatment_opt,
        env_start=args.env_start,
        env_stop=args.env_stop,
        env_step=args.env_step,
        orders=args.orders,
        machine=args.machine,
        compiler=args.compiler,
        size=args.size,
        seed=args.seed,
        tag=args.tag,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    """`repro submit`: send a study to a running `repro serve`."""
    from repro.core import service

    host, port = args.http
    spec = _spec_from_args(args)
    doc = service.submit_study(host, port, spec)
    sid = doc["study"]
    print(f"study {sid} {doc['state']}", file=sys.stderr)
    if args.no_wait:
        return 0
    doc = service.wait_for_study(
        host, port, sid, poll_interval=args.poll_interval,
        timeout=args.wait_timeout,
    )
    if doc["state"] != "done":
        print(f"error: study failed: {doc.get('error', '?')}", file=sys.stderr)
        return 1
    # Same bytes a local `repro study` would print / --report-out.
    sys.stdout.write(doc["tables"])
    if args.report_out:
        with open(args.report_out, "w") as fh:
            fh.write(doc["report"] + "\n")
        print(f"report: wrote {args.report_out}", file=sys.stderr)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """`repro status`: inspect a running `repro serve`."""
    import json as _json

    from repro.core import service

    import http.client as _http_client

    host, port = args.http

    def _fetch(call):
        # Unlike submit (idempotent, so it retries) a status probe of an
        # unreachable service is a plain diagnosis: one line, exit 1.
        try:
            return call()
        except (ConnectionError, _http_client.HTTPException, OSError) as exc:
            raise ReproError(
                f"could not reach service at {host}:{port}: {exc}"
            ) from exc

    if args.study:
        doc = _fetch(lambda: service.get_study(host, port, args.study))
        if args.json:
            print(_json.dumps(doc, indent=2, sort_keys=True))
            return 0
        print(f"study {doc['study']}")
        print(f"  state: {doc['state']}")
        print(f"  completed: {doc['completed']}/{doc['requested'] or '?'}")
        if doc.get("error"):
            print(f"  error: {doc['error']}")
        return 0
    doc = _fetch(lambda: service.get_status(host, port))
    if args.json:
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0
    states = ", ".join(
        f"{count} {state}" for state, count in sorted(doc["studies"].items())
    ) or "none"
    print(f"studies: {states} (queue limit {doc['queue_limit']})")
    print(f"agents: {len(doc['agents'])} registered")
    for agent in doc["agents"]:
        print(
            f"  {agent['label']}: {agent['jobs']} job(s), "
            f"{agent['in_flight']} in flight, {agent['results']} result(s)"
        )
    if doc["draining"]:
        print("draining: yes")
    for line in doc["degraded"]:
        print(f"degraded: {line}")
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    """`repro survey`: the paper's 133-paper literature survey."""
    print(
        render_table(
            ["metric", "value"],
            survey_table(generate_corpus(args.seed)),
            title="literature survey (synthetic corpus; see DESIGN.md)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree (one subcommand per cmd_* handler)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Measurement-bias laboratory (ASPLOS 2009 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the benchmark suite").set_defaults(
        func=cmd_workloads
    )
    sub.add_parser("machines", help="list machine models").set_defaults(
        func=cmd_machines
    )

    run = sub.add_parser("run", help="measure one workload once")
    run.add_argument("workload", choices=workloads.all_names())
    run.add_argument("--opt", type=int, default=2, choices=[0, 1, 2, 3])
    run.add_argument("--env-bytes", type=int, default=None)
    _add_setup_args(run)
    _add_store_args(run)
    run.set_defaults(func=cmd_run)

    study = sub.add_parser("study", help="sweep an 'innocuous' parameter")
    study.add_argument("workload", choices=workloads.all_names())
    study.add_argument("parameter", choices=["env", "link"])
    study.add_argument("--base-opt", type=int, default=2, choices=[0, 1, 2, 3])
    study.add_argument(
        "--treatment-opt", type=int, default=3, choices=[0, 1, 2, 3]
    )
    study.add_argument("--env-start", type=int, default=100)
    study.add_argument("--env-stop", type=int, default=356)
    study.add_argument("--env-step", type=int, default=16)
    study.add_argument("--orders", type=int, default=6)
    _add_setup_args(study)
    _add_runner_args(study)
    study.set_defaults(func=cmd_study)

    rand = sub.add_parser(
        "randomized", help="the paper's randomized evaluation protocol"
    )
    rand.add_argument("workload", choices=workloads.all_names())
    rand.add_argument("--base-opt", type=int, default=2, choices=[0, 1, 2, 3])
    rand.add_argument(
        "--treatment-opt", type=int, default=3, choices=[0, 1, 2, 3]
    )
    rand.add_argument("--setups", type=int, default=12)
    _add_setup_args(rand)
    _add_runner_args(rand)
    rand.set_defaults(func=cmd_randomized)

    char = sub.add_parser("characterize", help="profile one workload's shape")
    char.add_argument("workload", choices=workloads.all_names())
    char.add_argument("--opt", type=int, default=2, choices=[0, 1, 2, 3])
    _add_setup_args(char)
    char.set_defaults(func=cmd_characterize)

    archive = sub.add_parser(
        "archive", help="measure an env sweep and save it as JSON"
    )
    archive.add_argument("workload", choices=workloads.all_names())
    archive.add_argument("path")
    archive.add_argument("--opt", type=int, default=2, choices=[0, 1, 2, 3])
    archive.add_argument("--env-start", type=int, default=100)
    archive.add_argument("--env-stop", type=int, default=196)
    archive.add_argument("--env-step", type=int, default=32)
    _add_setup_args(archive)
    archive.set_defaults(func=cmd_archive)

    verify = sub.add_parser(
        "verify-archive", help="re-measure an archive and report drift"
    )
    verify.add_argument("path")
    verify.set_defaults(func=cmd_verify_archive)

    audit = sub.add_parser(
        "audit",
        help="flag benchmarking crimes in a report/archive/manifest",
    )
    audit.add_argument(
        "path", help="study document: manifest, archive, or sweep report"
    )
    audit.add_argument(
        "--json",
        action="store_true",
        help="machine-readable verdict with stable finding codes",
    )
    audit.add_argument(
        "--record",
        action="store_true",
        help="write the verdict into the document's manifest as an "
        "'audit' provenance section",
    )
    audit.set_defaults(func=cmd_audit)

    obs = sub.add_parser(
        "obs", help="inspect traces and provenance manifests"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_summary = obs_sub.add_parser(
        "summary", help="summarize traces/manifests as tables"
    )
    obs_summary.add_argument("paths", nargs="+")
    obs_summary.add_argument(
        "--json", action="store_true",
        help="print the loaded artifact as JSON instead of tables",
    )
    obs_validate = obs_sub.add_parser(
        "validate", help="schema-check traces/manifests (exit 1 on problems)"
    )
    obs_validate.add_argument("paths", nargs="+")
    obs_flame = obs_sub.add_parser(
        "flame",
        help=(
            "simulated-cycle flamegraph of an archived measurement "
            "(or wall-clock span folding of a trace)"
        ),
    )
    obs_flame.add_argument("path", help="measurement archive or trace file")
    obs_flame.add_argument(
        "--index", type=_non_negative_int, default=0,
        help="which archived measurement to profile (default: 0)",
    )
    obs_flame.add_argument(
        "--against", type=_non_negative_int, default=None, metavar="M",
        help=(
            "diff against archived measurement M (same build): prints "
            "per-function cycle deltas, culprit first"
        ),
    )
    obs_flame.add_argument(
        "--folded", metavar="FILE", default=None,
        help="write collapsed stacks (module;function centicycles) here",
    )
    obs_flame.add_argument(
        "--json", dest="json_out", metavar="FILE", default=None,
        help="write a d3-flame-graph JSON tree here",
    )
    obs_flame.add_argument(
        "--top", type=_positive_int, default=20,
        help="rows to print (default: 20)",
    )
    obs_timeline = obs_sub.add_parser(
        "timeline", help="render a sweep's metrics-timeline JSONL"
    )
    obs_timeline.add_argument("path")
    obs_timeline.add_argument(
        "--rows", type=_positive_int, default=20,
        help="samples to show (long timelines are downsampled)",
    )
    obs_merge = obs_sub.add_parser(
        "merge", help="merge traces into one Perfetto-loadable file"
    )
    obs_merge.add_argument("out")
    obs_merge.add_argument("paths", nargs="+")
    obs_diff = obs_sub.add_parser(
        "diff", help="compare two traces (or two manifests)"
    )
    obs_diff.add_argument("a")
    obs_diff.add_argument("b")
    obs.set_defaults(func=cmd_obs)

    journal = sub.add_parser(
        "journal", help="manage sweep checkpoint journals"
    )
    journal_sub = journal.add_subparsers(dest="journal_command", required=True)
    journal_compact = journal_sub.add_parser(
        "compact",
        help=(
            "atomically rewrite a journal down to one record per setup "
            "(+ latest aux records), with integrity verification"
        ),
    )
    journal_compact.add_argument("paths", nargs="+")
    journal_summary = journal_sub.add_parser(
        "summary", help="summarize a journal's contents"
    )
    journal_summary.add_argument("paths", nargs="+")
    journal.set_defaults(func=cmd_journal)

    fsck = sub.add_parser(
        "fsck",
        help="audit (and repair) journals, archives, stores, manifests",
    )
    fsck.add_argument(
        "paths", nargs="+", metavar="PATH",
        help=(
            "artifacts to audit: journal/archive/manifest files or "
            "store directories (classified by content)"
        ),
    )
    fsck.add_argument(
        "--repair", action="store_true",
        help=(
            "apply each artifact's safe recovery action (compact "
            "journals, drop damaged archive records, purge corrupt "
            "store entries); manifests are never rewritten"
        ),
    )
    fsck.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the machine-readable fsck report to FILE ('-': stdout)",
    )
    fsck.set_defaults(func=cmd_fsck)

    store = sub.add_parser(
        "store", help="manage a content-addressed measurement store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_dir_help = "store directory (default: $REPRO_STORE)"

    def _store_dir(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "dir", nargs="?", default=os.environ.get("REPRO_STORE"),
            help=store_dir_help,
        )

    store_stats = store_sub.add_parser(
        "stats", help="entry counts, footprint, and key scheme"
    )
    _store_dir(store_stats)
    store_gc = store_sub.add_parser(
        "gc", help="evict least-recently-used entries down to a size cap"
    )
    _store_dir(store_gc)
    store_gc.add_argument(
        "--max-bytes", type=_non_negative_int, required=True,
        help="target payload footprint in bytes",
    )
    store_verify = store_sub.add_parser(
        "verify",
        help="audit every entry's checksum (exit 1 if any are corrupt)",
    )
    _store_dir(store_verify)
    store_export = store_sub.add_parser(
        "export", help="write every stored measurement to a v2 archive"
    )
    _store_dir(store_export)
    store_export.add_argument("out", help="archive path to write")
    store_export.add_argument(
        "--note", default="", help="note recorded in the archive"
    )
    store.set_defaults(func=cmd_store)

    agent = sub.add_parser(
        "agent", help="serve sweep setups to remote coordinators over TCP"
    )
    agent.add_argument(
        "--listen", metavar="HOST:PORT", type=_listen_arg,
        default=("127.0.0.1", 0),
        help=(
            "interface and port to listen on (port 0 picks a free one; "
            "default 127.0.0.1:0)"
        ),
    )
    agent.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="local worker processes this agent runs per session",
    )
    agent.add_argument(
        "--port-file", metavar="FILE", default=None,
        help=(
            "write the bound port here after binding (the race-free way "
            "for scripts to use --listen HOST:0)"
        ),
    )
    agent.add_argument(
        "--quiet", action="store_true",
        help="suppress per-session log lines on stderr",
    )
    agent.add_argument(
        "--secret", metavar="SECRET",
        default=os.environ.get("REPRO_AGENT_SECRET"),
        help=(
            "require coordinators to present this shared secret in the "
            "hello handshake (default: $REPRO_AGENT_SECRET; unset = "
            "no authentication)"
        ),
    )
    agent.add_argument(
        "--connect", metavar="HOST:PORT", type=_listen_arg, default=None,
        help=(
            "dial in to a `repro serve` coordinator instead of listening; "
            "the agent re-dials across coordinator restarts"
        ),
    )
    agent.add_argument(
        "--backoff-seed", type=int, default=0,
        help=(
            "seed for the --connect reconnect backoff (give each agent in "
            "a fleet its own seed to de-synchronize re-registration)"
        ),
    )
    agent.add_argument(
        "--reconnect-retries", type=_non_negative_int, default=None,
        help=(
            "give up after this many failed --connect redials per outage "
            "(default: keep trying forever)"
        ),
    )
    agent.set_defaults(func=cmd_agent)

    serve = sub.add_parser(
        "serve", help="run the resilient sweep service coordinator"
    )
    serve.add_argument(
        "--workdir", metavar="DIR", required=True,
        help=(
            "durable state directory: study-queue WAL, content-addressed "
            "store, and result documents all live here"
        ),
    )
    serve.add_argument(
        "--http", metavar="HOST:PORT", type=_listen_arg,
        default=("127.0.0.1", 0),
        help="client API address (port 0 picks a free one; see --port-file)",
    )
    serve.add_argument(
        "--listen", metavar="HOST:PORT", type=_listen_arg,
        default=("127.0.0.1", 0),
        help="agent rendezvous address (agents dial it with --connect)",
    )
    serve.add_argument(
        "--port-file", metavar="FILE", default=None,
        help='write {"http": P, "agents": P} here once both ports are bound',
    )
    serve.add_argument(
        "--secret", metavar="SECRET",
        default=os.environ.get("REPRO_AGENT_SECRET"),
        help=(
            "require registering agents to prove this shared secret "
            "(default: $REPRO_AGENT_SECRET; unset = open rendezvous)"
        ),
    )
    serve.add_argument(
        "--fault-plan", metavar="SPEC", type=_fault_plan_arg, default=None,
        help="install a deterministic chaos plan for every study served",
    )
    serve.add_argument(
        "--max-queue", type=_positive_int, default=16,
        help="admission control: reject submissions past this many queued "
             "studies with a typed queue_full error (default 16)",
    )
    serve.add_argument(
        "--max-retries", type=_non_negative_int, default=2,
        help="per-setup measurement retry budget (default 2)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="per-measurement timeout in seconds",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=0.2,
        help="agent liveness cadence in seconds (default 0.2)",
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=None,
        help=(
            "fixed lease expiry in seconds (default: adapt to observed "
            "lease durations, like the worker hang deadline)"
        ),
    )
    serve.add_argument(
        "--agentless-grace", type=float, default=30.0,
        help=(
            "seconds to wait for an agent rendezvous before a study "
            "degrades to in-process execution (default 30)"
        ),
    )
    serve.add_argument(
        "--note", default="",
        help="free-form text echoed to registering agents and the WAL header",
    )
    serve.add_argument(
        "--quiet", action="store_true",
        help="suppress per-event log lines on stderr",
    )
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a study to a running `repro serve`"
    )
    submit.add_argument("workload", choices=workloads.all_names())
    submit.add_argument("parameter", choices=["env", "link"])
    submit.add_argument(
        "--base-opt", type=int, default=2, choices=[0, 1, 2, 3]
    )
    submit.add_argument(
        "--treatment-opt", type=int, default=3, choices=[0, 1, 2, 3]
    )
    submit.add_argument("--env-start", type=int, default=100)
    submit.add_argument("--env-stop", type=int, default=356)
    submit.add_argument("--env-step", type=int, default=16)
    submit.add_argument("--orders", type=int, default=6)
    _add_setup_args(submit)
    submit.add_argument(
        "--tag", default="",
        help=(
            "client label folded into the study's identity (distinct tags "
            "make distinct studies whose measurements still dedup through "
            "the service's store)"
        ),
    )
    submit.add_argument(
        "--http", metavar="HOST:PORT", type=_listen_arg, required=True,
        help="the service's client API address",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="enqueue and exit instead of waiting for the result",
    )
    submit.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="seconds between result polls while waiting (default 0.5)",
    )
    submit.add_argument(
        "--wait-timeout", type=float, default=None,
        help="give up waiting after this many seconds (default: never)",
    )
    submit.add_argument(
        "--report-out", metavar="FILE", default=None,
        help="also write the canonical SweepReport JSON here (byte-"
             "identical to a local `repro study --report-out`)",
    )
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser(
        "status", help="inspect a running `repro serve`"
    )
    status.add_argument(
        "study", nargs="?", default=None,
        help="a study id to show in detail (default: service overview)",
    )
    status.add_argument(
        "--http", metavar="HOST:PORT", type=_listen_arg, required=True,
        help="the service's client API address",
    )
    status.add_argument(
        "--json", action="store_true",
        help="print the raw API document instead of the summary",
    )
    status.set_defaults(func=cmd_status)

    survey = sub.add_parser("survey", help="print the literature survey")
    survey.add_argument("--seed", type=int, default=0)
    survey.set_defaults(func=cmd_survey)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Taxonomy errors are diagnoses, not crashes: one line, exit 1.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
