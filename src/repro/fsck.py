"""``repro fsck``: audit — and optionally heal — every on-disk artifact.

The robustness layer leaves five artifact classes on disk: checkpoint
journals (:class:`repro.core.runner.Journal`), measurement archives
(:mod:`repro.core.session`), content-addressed store entries
(:mod:`repro.store`), provenance manifests
(:mod:`repro.obs.manifest`) and the sweep service's study-queue WAL
(:mod:`repro.core.servicewal`).  Each already *detects* its own damage
at read time; what an operator recovering from a crash (or a chaos run)
needs is one doctor that walks all of them, says exactly what is wrong,
and — with ``--repair`` — applies each class's safe recovery action:

===========  =====================================  ====================
artifact     damage detected                        repair action
===========  =====================================  ====================
journal      torn/corrupt lines, stale duplicates   verified atomic
                                                    compaction
archive      per-record checksum failures           atomic rewrite
                                                    dropping the damaged
                                                    records
store        entries that fail deep verification,   purge the corrupt
             stale ``.tmp-`` debris                 keys (the store is a
                                                    cache; deletion is
                                                    full repair)
manifest     schema violations, artifact checksum   none — provenance is
             mismatches                             evidence, never
                                                    forged
service-wal  torn/corrupt lines, stale lease and    verified atomic
             requeue records from dead              compaction
             coordinator incarnations               (:func:`repro.core.
                                                    servicewal.
                                                    compact_wal`)
===========  =====================================  ====================

Anything fsck cannot repair (a journal with a destroyed header, a
truncated archive that no longer parses, any manifest damage) is
reported as *unrepaired* and drives a nonzero exit code, so CI and
operators can gate on ``repro fsck`` the way they gate on tests.  The
``--json`` report is machine-readable for exactly that use.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "FSCK_FORMAT",
    "FsckFinding",
    "FsckReport",
    "fsck_paths",
    "fsck_journal",
    "fsck_archive",
    "fsck_store",
    "fsck_manifest",
    "fsck_wal",
    "classify",
]

#: Format marker for the machine-readable ``--json`` report.
FSCK_FORMAT = "repro-fsck-v1"

#: A finding that threatens data (drives the exit code when unrepaired).
DAMAGE = "damage"
#: A finding that is hygiene only (stale duplicates, swept tmp debris).
HYGIENE = "hygiene"


@dataclass
class FsckFinding:
    """One problem found in one artifact.

    ``severity`` is :data:`DAMAGE` (lost or unreadable data) or
    :data:`HYGIENE` (recoverable clutter).  ``repaired`` records whether
    this run fixed it; ``repairable`` whether ``--repair`` *could* —
    manifest damage, for example, is deliberately never repairable.
    """

    path: str
    kind: str
    problem: str
    severity: str = DAMAGE
    repaired: bool = False
    repairable: bool = True

    def to_dict(self) -> Dict[str, Any]:
        """The finding as a JSON-ready dict."""
        return {
            "path": self.path,
            "kind": self.kind,
            "problem": self.problem,
            "severity": self.severity,
            "repaired": self.repaired,
            "repairable": self.repairable,
        }


@dataclass
class FsckReport:
    """Everything one ``repro fsck`` invocation saw and did."""

    repair: bool
    audited: List[Dict[str, str]] = field(default_factory=list)
    findings: List[FsckFinding] = field(default_factory=list)

    @property
    def unrepaired_damage(self) -> List[FsckFinding]:
        """Damage still standing after this run (drives the exit code)."""
        return [
            f
            for f in self.findings
            if f.severity == DAMAGE and not f.repaired
        ]

    @property
    def exit_code(self) -> int:
        """0 when every artifact is clean or fully healed, else 1."""
        return 1 if self.unrepaired_damage else 0

    def to_dict(self) -> Dict[str, Any]:
        """The report as a JSON-ready dict (machine-readable output)."""
        return {
            "format": FSCK_FORMAT,
            "repair": self.repair,
            "audited": list(self.audited),
            "findings": [f.to_dict() for f in self.findings],
            "unrepaired_damage": len(self.unrepaired_damage),
            "exit_code": self.exit_code,
        }

    def to_json(self) -> str:
        """The report serialized as deterministic, sorted JSON."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    def summary_lines(self) -> List[str]:
        """Human-readable audit log, one line per artifact or finding."""
        lines: List[str] = []
        by_path: Dict[str, List[FsckFinding]] = {}
        for f in self.findings:
            by_path.setdefault(f.path, []).append(f)
        for entry in self.audited:
            path, kind = entry["path"], entry["kind"]
            found = by_path.get(path, [])
            if not found:
                lines.append(f"{kind} {path}: clean")
                continue
            for f in found:
                state = (
                    "repaired"
                    if f.repaired
                    else ("UNREPAIRED" if f.severity == DAMAGE else "noted")
                )
                lines.append(f"{f.kind} {f.path}: {state}: {f.problem}")
        damage = self.unrepaired_damage
        verdict = (
            f"fsck: {len(damage)} unrepaired problem(s)"
            if damage
            else "fsck: clean"
        )
        lines.append(verdict)
        return lines


# -- classification ---------------------------------------------------------


def classify(path: str) -> Optional[str]:
    """Which artifact class lives at ``path`` — or None if unrecognized.

    Directories are store roots.  Files are sniffed by their format
    markers (journal first: its marker embeds the archive one), scanning
    the *head* rather than parsing the whole file so that truncated —
    i.e. exactly the damaged — artifacts still classify.
    """
    if os.path.isdir(path):
        return "store"
    from repro.core.runner import JOURNAL_FORMAT
    from repro.core.servicewal import WAL_FORMAT
    from repro.core.session import FORMAT_V1, FORMAT_V2
    from repro.obs.manifest import MANIFEST_FORMAT

    try:
        with open(path, errors="replace") as fh:
            head = fh.read(4096)
    except OSError:
        return None
    first_line = head.splitlines()[0] if head.splitlines() else ""
    if WAL_FORMAT in first_line:
        return "service-wal"
    if JOURNAL_FORMAT in first_line:
        return "journal"
    # An archive can *embed* a manifest (and vice versa never), so the
    # marker appearing earliest in the head decides the class.
    positions = {
        kind: min(p for p in (head.find(m) for m in markers) if p >= 0)
        for kind, markers in (
            ("manifest", (MANIFEST_FORMAT,)),
            ("archive", (FORMAT_V1, FORMAT_V2)),
        )
        if any(head.find(m) >= 0 for m in markers)
    }
    if not positions:
        return None
    return min(positions, key=positions.get)


# -- per-artifact audits ----------------------------------------------------


def fsck_journal(path: str, repair: bool) -> List[FsckFinding]:
    """Audit one checkpoint journal: torn/corrupt lines and stale
    duplicates.  Repair is the runner's own verified atomic compaction
    (:func:`repro.core.runner.compact_journal`), so a healed journal is
    bit-for-bit what a resumed sweep would have produced itself."""
    from repro.core.runner import JOURNAL_FORMAT, Journal, compact_journal

    findings: List[FsckFinding] = []
    with open(path, errors="replace") as fh:
        lines = fh.read().splitlines()
    header: Optional[Dict[str, Any]] = None
    if lines:
        try:
            parsed = json.loads(lines[0])
            if isinstance(parsed, dict) and parsed.get("format") == JOURNAL_FORMAT:
                header = parsed
        except json.JSONDecodeError:
            header = None
    if header is None:
        findings.append(
            FsckFinding(
                path,
                "journal",
                "header is damaged; the sweep id is lost and the journal "
                "cannot be compacted or resumed",
                repairable=False,
            )
        )
        return findings
    torn = 0
    seen: Dict[int, int] = {}
    aux_seen: Dict[str, int] = {}
    for line in lines[1:]:
        rec = Journal._parse_record(line)
        if rec is not None:
            seen[rec[0]] = seen.get(rec[0], 0) + 1
            continue
        aux = Journal._parse_aux(line)
        if aux is not None:
            kind = aux["kind"]
            aux_seen[kind] = aux_seen.get(kind, 0) + 1
            continue
        if line.strip():
            torn += 1
    duplicates = sum(n - 1 for n in seen.values()) + sum(
        n - 1 for n in aux_seen.values()
    )
    if torn:
        findings.append(
            FsckFinding(
                path,
                "journal",
                f"{torn} torn/corrupt line(s) (crash or power loss "
                "mid-append); the affected records are lost",
            )
        )
    if duplicates:
        findings.append(
            FsckFinding(
                path,
                "journal",
                f"{duplicates} stale duplicate record(s) from earlier "
                "resumed runs",
                severity=HYGIENE,
            )
        )
    if repair and (torn or duplicates):
        stats = compact_journal(path)
        for f in findings:
            f.repaired = True
        findings.append(
            FsckFinding(
                path,
                "journal",
                f"compacted: {stats.records_before} -> "
                f"{stats.records_after} records, dropped "
                f"{stats.dropped_corrupt} corrupt line(s)",
                severity=HYGIENE,
                repaired=True,
            )
        )
    return findings


def fsck_archive(path: str, repair: bool) -> List[FsckFinding]:
    """Audit one measurement archive record by record.

    A record whose checksum or schema fails is damage; repair rewrites
    the archive atomically *without* those records (every surviving
    record is re-verified by construction).  An archive that no longer
    parses as JSON at all is unrepairable — there is no record boundary
    left to salvage along.
    """
    from repro import storageio
    from repro._errors import ArchiveCorruption
    from repro.core.session import (
        FORMAT_V1,
        FORMAT_V2,
        load_measurement_record,
        record_checksum,
    )

    findings: List[FsckFinding] = []
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (json.JSONDecodeError, OSError) as exc:
        findings.append(
            FsckFinding(
                path,
                "archive",
                f"not parseable as JSON ({exc}); no records can be "
                "salvaged",
                repairable=False,
            )
        )
        return findings
    fmt = payload.get("format") if isinstance(payload, dict) else None
    records = (
        payload.get("measurements") if isinstance(payload, dict) else None
    )
    if fmt not in (FORMAT_V1, FORMAT_V2) or not isinstance(records, list):
        findings.append(
            FsckFinding(
                path,
                "archive",
                f"not a {FORMAT_V1}/{FORMAT_V2} archive (format "
                f"{fmt!r})",
                repairable=False,
            )
        )
        return findings
    good: List[Any] = []
    bad: List[int] = []
    for i, rec in enumerate(records):
        try:
            if fmt == FORMAT_V1:
                load_measurement_record(rec, path=path, record=i)
            else:
                data = (
                    rec.get("measurement") if isinstance(rec, dict) else None
                )
                if not isinstance(data, dict):
                    raise ArchiveCorruption(
                        "record lacks a measurement payload", path=path
                    )
                if rec.get("sha256") != record_checksum(data):
                    raise ArchiveCorruption(
                        "record checksum mismatch", path=path
                    )
                load_measurement_record(data, path=path, record=i)
        except ArchiveCorruption as exc:
            bad.append(i)
            findings.append(
                FsckFinding(
                    path,
                    "archive",
                    f"record {i}: {exc.args[0] if exc.args else exc}",
                )
            )
            continue
        good.append(rec)
    if bad and repair:
        payload["measurements"] = good
        storageio.atomic_write_text(
            path,
            json.dumps(payload, indent=1),
            key=f"fsck:{os.path.basename(path)}",
        )
        for f in findings:
            f.repaired = True
        findings.append(
            FsckFinding(
                path,
                "archive",
                f"rewrote archive without {len(bad)} damaged record(s); "
                f"{len(good)} verified record(s) kept",
                severity=HYGIENE,
                repaired=True,
            )
        )
    return findings


def fsck_store(root: str, repair: bool) -> List[FsckFinding]:
    """Deep-verify every store entry; repair purges the corrupt keys.

    Uses :meth:`repro.store.MeasurementStore.verify`, which goes beyond
    the backend's payload checksum: measurement entries must deserialize
    into valid records and artifact entries must unpickle under the
    restricted loader.  Purging is full repair — the store is a cache,
    and a missing entry is merely re-measured.  Stale ``.tmp-`` debris
    (a crash mid-put) is swept on open and reported as hygiene.
    """
    from repro.store import open_store

    findings: List[FsckFinding] = []
    store = open_store(root)
    swept = getattr(store.backend, "swept_tmp", 0)
    if swept:
        findings.append(
            FsckFinding(
                root,
                "store",
                f"swept {swept} stale .tmp- file(s) left by an "
                "interrupted put",
                severity=HYGIENE,
                repaired=True,
            )
        )
    ok, corrupt = store.verify()
    for key in corrupt:
        purged = repair and store.backend.delete(key)
        findings.append(
            FsckFinding(
                root,
                "store",
                f"entry {key} fails deep verification"
                + ("; purged (will re-measure)" if purged else ""),
                repaired=purged,
            )
        )
    return findings


def fsck_manifest(path: str, repair: bool) -> List[FsckFinding]:
    """Validate a provenance manifest and cross-check its artifact
    checksums against the files on disk.

    Never repairs anything: a manifest is *evidence* about how results
    were produced, and rewriting it to match changed artifacts would be
    forging provenance — the one thing this tool must never do.
    Artifact paths are resolved as written, then relative to the
    manifest's own directory.
    """
    from repro.obs.manifest import file_checksum, validate_manifest

    findings: List[FsckFinding] = []
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (json.JSONDecodeError, OSError) as exc:
        findings.append(
            FsckFinding(
                path,
                "manifest",
                f"not parseable as JSON ({exc})",
                repairable=False,
            )
        )
        return findings
    for problem in validate_manifest(data):
        findings.append(
            FsckFinding(
                path, "manifest", f"schema: {problem}", repairable=False
            )
        )
    artifacts = data.get("artifacts") if isinstance(data, dict) else None
    base = os.path.dirname(os.path.abspath(path))
    for art_path, expected in (
        artifacts.items() if isinstance(artifacts, dict) else ()
    ):
        candidates = [art_path, os.path.join(base, art_path)]
        resolved = next(
            (c for c in candidates if os.path.isfile(c)), None
        )
        if resolved is None:
            findings.append(
                FsckFinding(
                    path,
                    "manifest",
                    f"artifact {art_path!r} is missing on disk",
                    repairable=False,
                )
            )
            continue
        actual = file_checksum(resolved)
        if actual != expected:
            findings.append(
                FsckFinding(
                    path,
                    "manifest",
                    f"artifact {art_path!r} checksum mismatch (manifest "
                    f"{str(expected)[:12]}…, file {actual[:12]}…) — the "
                    "artifact changed after the manifest was written",
                    repairable=False,
                )
            )
    return findings


def fsck_wal(path: str, repair: bool) -> List[FsckFinding]:
    """Audit one sweep-service study-queue WAL.

    Torn or corrupt lines (a coordinator SIGKILLed mid-append) are
    damage — each one is a single lost queue transition the service's
    at-least-once dispatch re-derives, but an operator should still see
    it.  Lease and requeue records in a WAL *at rest* are hygiene: they
    are dispatch state of coordinator incarnations that no longer exist
    (a restart re-derives every lease), and a long-lived queue log
    accumulates them without bound.  Repair for both is the service's
    own verified atomic compaction
    (:func:`repro.core.servicewal.compact_wal`), which keeps exactly
    the replay-relevant records: each study's submission, then its
    ``done`` record or latest per-setup completions.
    """
    from repro.core.runner import Journal
    from repro.core.servicewal import WAL_FORMAT, WAL_KINDS, compact_wal

    findings: List[FsckFinding] = []
    with open(path, errors="replace") as fh:
        lines = fh.read().splitlines()
    header: Optional[Dict[str, Any]] = None
    if lines:
        try:
            parsed = json.loads(lines[0])
            if isinstance(parsed, dict) and parsed.get("format") == WAL_FORMAT:
                header = parsed
        except json.JSONDecodeError:
            header = None
    if header is None:
        findings.append(
            FsckFinding(
                path,
                "service-wal",
                "header is damaged; the study queue cannot be replayed "
                "or compacted",
                repairable=False,
            )
        )
        return findings
    torn = 0
    counts = {kind: 0 for kind in WAL_KINDS}
    for line in lines[1:]:
        rec = Journal._parse_aux(line)
        if rec is None:
            if line.strip():
                torn += 1
            continue
        kind = rec.get("kind")
        if kind in counts:
            counts[kind] += 1
    stale = counts["lease"] + counts["requeue"]
    if torn:
        findings.append(
            FsckFinding(
                path,
                "service-wal",
                f"{torn} torn/corrupt line(s) (coordinator killed "
                "mid-append); each is one lost queue transition that "
                "dispatch re-derives on restart",
            )
        )
    if stale:
        findings.append(
            FsckFinding(
                path,
                "service-wal",
                f"{stale} stale lease/requeue record(s) from past "
                "coordinator incarnations (dispatch state is re-derived "
                "on restart)",
                severity=HYGIENE,
            )
        )
    if repair and (torn or stale):
        stats = compact_wal(path)
        for f in findings:
            f.repaired = True
        findings.append(
            FsckFinding(
                path,
                "service-wal",
                stats.summary_line(),
                severity=HYGIENE,
                repaired=True,
            )
        )
    return findings


# -- driver -----------------------------------------------------------------

_AUDITS = {
    "journal": fsck_journal,
    "archive": fsck_archive,
    "store": fsck_store,
    "manifest": fsck_manifest,
    "service-wal": fsck_wal,
}


def fsck_paths(paths: List[str], repair: bool = False) -> FsckReport:
    """Audit every path (file or store directory) and return the report.

    Each path is classified by content (:func:`classify`) and handed to
    its artifact-class audit.  Unrecognized or missing paths are
    unrepairable damage: an operator pointing fsck at the wrong thing
    should hear about it, loudly, through the exit code.
    """
    report = FsckReport(repair=repair)
    for path in paths:
        if not os.path.exists(path):
            report.audited.append({"path": path, "kind": "missing"})
            report.findings.append(
                FsckFinding(
                    path, "missing", "path does not exist", repairable=False
                )
            )
            continue
        kind = classify(path)
        if kind is None:
            report.audited.append({"path": path, "kind": "unknown"})
            report.findings.append(
                FsckFinding(
                    path,
                    "unknown",
                    "not a recognizable repro artifact (journal, archive, "
                    "store directory, or manifest)",
                    repairable=False,
                )
            )
            continue
        report.audited.append({"path": path, "kind": kind})
        report.findings.extend(_AUDITS[kind](path, repair))
    return report
