"""hmmer-like workload: profile-HMM Viterbi dynamic programming.

The SPEC original searches protein databases with profile hidden Markov
models; its hot code is the Viterbi inner loop — per observation, per
state, a max over incoming transitions.  The two DP rows live on the
stack (the textbook rolling-array implementation), giving the kernel the
stack-alignment sensitivity the paper dissects.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled

_NS = 24  # states
_NO = 8  # observation alphabet

_VITERBI = """
int trans[576];
int emit[192];
int obs[2048];

func viterbi(t_len) {
    var prev[24];
    var cur[24];
    var t; var j; var k; var best; var cand; var o; var score;
    for (j = 0; j < 24; j = j + 1) { prev[j] = 0; }
    score = 0;
    for (t = 0; t < t_len; t = t + 1) {
        o = obs[t];
        for (j = 0; j < 24; j = j + 1) {
            best = prev[j] + trans[j * 24 + j];
            k = j - 1;
            if (k >= 0) {
                cand = prev[k] + trans[k * 24 + j];
                if (cand > best) { best = cand; }
            }
            k = j - 2;
            if (k >= 0) {
                cand = prev[k] + trans[k * 24 + j];
                if (cand > best) { best = cand; }
            }
            cur[j] = best + emit[j * 8 + o];
            if (cur[j] > 100000000) { cur[j] = cur[j] - 90000000; }
        }
        for (j = 0; j < 24; j = j + 1) { prev[j] = cur[j]; }
        score = (score + cur[23]) & 268435455;
    }
    return score;
}
"""

_MAIN = """
int p_tlen;
int p_reps;

func main() {
    var r; var s;
    s = 0;
    for (r = 0; r < p_reps; r = r + 1) {
        s = s + viterbi(p_tlen);
    }
    return s & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 83)
    tlen = scaled(size, 260, 700, 2048)
    reps = scaled(size, 1, 2, 3)
    trans = [rng() & 255 for __ in range(_NS * _NS)]
    emit = [rng() & 511 for __ in range(_NS * _NO)]
    obs = [rng() & 7 for __ in range(2048)]
    return {
        "p_tlen": tlen,
        "p_reps": reps,
        "trans": trans,
        "emit": emit,
        "obs": obs,
    }


def reference(bindings: Bindings) -> int:
    tlen = bindings["p_tlen"]
    reps = bindings["p_reps"]
    trans = bindings["trans"]
    emit = bindings["emit"]
    obs = bindings["obs"]

    def viterbi() -> int:
        prev: List[int] = [0] * _NS
        score = 0
        for t in range(tlen):
            o = obs[t]
            cur = [0] * _NS
            for j in range(_NS):
                best = prev[j] + trans[j * _NS + j]
                for dk in (1, 2):
                    k = j - dk
                    if k >= 0:
                        cand = prev[k] + trans[k * _NS + j]
                        if cand > best:
                            best = cand
                cur[j] = best + emit[j * _NO + o]
                if cur[j] > 100000000:
                    cur[j] -= 90000000
            prev = cur
            score = (score + cur[_NS - 1]) & 268435455
        return score

    s = 0
    for __ in range(reps):
        s += viterbi()
    return s & 1073741823


WORKLOAD = Workload(
    name="hmmer",
    description="profile-HMM Viterbi DP with rolling stack rows",
    sources={"viterbi": _VITERBI, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("dp", "stack-hot", "max-reduction"),
)
