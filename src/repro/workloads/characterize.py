"""Workload characterization.

Static and dynamic characterization of a workload — the data behind
suite tables like the paper's benchmark descriptions: opcode mix,
memory/branch intensity, code/data footprints, hot-function
concentration.  Used by the T2 bench and available as a library tool for
anyone adding workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch.counters import PerfCounters
from repro.core.experiment import Experiment, Measurement
from repro.core.setup import ExperimentalSetup
from repro.isa.program import Executable


@dataclass(frozen=True)
class StaticCharacter:
    """Compile-time shape of one built workload."""

    modules: int
    functions: int
    instructions: int
    code_bytes: int
    data_bytes: int
    loops: int


@dataclass(frozen=True)
class DynamicCharacter:
    """Run-time shape of one measured workload."""

    instructions: int
    cycles: float
    memory_intensity: float  # (loads+stores)/instructions
    branch_intensity: float  # branches/instructions
    call_intensity: float  # calls/instructions
    mispredict_rate: float
    l1d_miss_rate: float
    hot_function: str
    hot_share: float  # fraction of cycles in the hottest function


def static_character(exe: Executable) -> StaticCharacter:
    """Characterize a linked executable."""
    code_bytes = sum(pf.size for pf in exe.placed)
    data_bytes = exe.data_end - exe.data_start
    loops = sum(
        1
        for i, op in enumerate(exe.ops)
        if op in (28, 29, 30) and 0 <= exe.targets[i] <= i
    )
    return StaticCharacter(
        modules=len({pf.module for pf in exe.placed if pf.module != "<crt>"}),
        functions=len(exe.placed) - 1,  # excluding _start
        instructions=exe.num_instructions(),
        code_bytes=code_bytes,
        data_bytes=data_bytes,
        loops=loops,
    )


def dynamic_character(
    experiment: Experiment, setup: ExperimentalSetup
) -> DynamicCharacter:
    """Characterize one measured run (uses function profiling)."""
    m: Measurement = experiment.run(setup, profile_functions=True)
    c: PerfCounters = m.counters
    hot_function, hot_cycles = max(
        m.function_cycles.items(), key=lambda kv: kv[1]
    )
    n = c.instructions or 1
    return DynamicCharacter(
        instructions=c.instructions,
        cycles=c.cycles,
        memory_intensity=(c.loads + c.stores) / n,
        branch_intensity=c.branches / n,
        call_intensity=c.calls / n,
        mispredict_rate=c.mispredict_rate,
        l1d_miss_rate=c.l1d_miss_rate,
        hot_function=hot_function,
        hot_share=hot_cycles / c.cycles if c.cycles else 0.0,
    )


def opcode_mix(exe: Executable) -> Dict[str, int]:
    """Static opcode histogram, grouped into the families analysts use."""
    from repro.isa.instructions import (
        ALU_IMM_OPS,
        ALU_OPS,
        CONTROL_OPS,
        MEMORY_OPS,
        Op,
    )

    families = {
        "alu": 0,
        "const/mov": 0,
        "memory": 0,
        "control": 0,
        "nop": 0,
    }
    for op_int in exe.ops:
        op = Op(op_int)
        if op in ALU_OPS or op in ALU_IMM_OPS:
            families["alu"] += 1
        elif op in (Op.CONST, Op.MOV):
            families["const/mov"] += 1
        elif op in MEMORY_OPS:
            families["memory"] += 1
        elif op in CONTROL_OPS:
            families["control"] += 1
        else:
            families["nop"] += 1
    return families


def footprint_vs_cache(
    exe: Executable, cache_bytes: int
) -> Tuple[float, float]:
    """(code, data) footprints as fractions of a cache capacity —
    a quick pressure gauge against any cache level."""
    static = static_character(exe)
    return (
        static.code_bytes / cache_bytes,
        static.data_bytes / cache_bytes,
    )
