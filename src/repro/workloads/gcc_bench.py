"""gcc-like workload: dataflow bitsets + greedy register allocation.

The SPEC original is the GNU C compiler; its hot code is dominated by
bitset dataflow (liveness propagation over the CFG) and allocation-style
graph walks.  This kernel runs both: iterative liveness over word-packed
bitsets (regular, unrollable loops) and greedy graph coloring with
bit-scan inner loops (branchy, irregular).
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled
from repro.workloads.refops import band, bnot, bor, shl, shr

#: Problem shape: B basic blocks, W bitset words per block, N graph nodes.
_B = 192
_W = 3
_N = 160

_BITSET = """
int live_in[576];
int live_out[576];
int use_set[576];
int def_set[576];
int succ1[192];
int succ2[192];
int p_blocks;

func liveness_round() {
    var b; var w; var o; var s1; var s2; var changed; var outv; var inv;
    changed = 0;
    b = p_blocks - 1;
    while (b >= 0) {
        s1 = succ1[b];
        s2 = succ2[b];
        o = b * 3;
        for (w = 0; w < 3; w = w + 1) {
            outv = 0;
            if (s1 >= 0) { outv = outv | live_in[s1 * 3 + w]; }
            if (s2 >= 0) { outv = outv | live_in[s2 * 3 + w]; }
            live_out[o + w] = outv;
            inv = use_set[o + w] | (outv & (~def_set[o + w]));
            if (inv != live_in[o + w]) {
                live_in[o + w] = inv;
                changed = changed + 1;
            }
        }
        b = b - 1;
    }
    return changed;
}
"""

_COLOR = """
int adj[480];
int color[160];
int p_nodes;

func pick_color(mask) {
    var c;
    c = 0;
    while ((mask & 1) != 0 && c < 62) {
        mask = mask >> 1;
        c = c + 1;
    }
    return c;
}

func color_all() {
    var i; var j; var w; var mask; var bits; var base; var total;
    total = 0;
    for (i = 0; i < p_nodes; i = i + 1) {
        mask = 0;
        base = i * 3;
        for (w = 0; w < 3; w = w + 1) {
            bits = adj[base + w];
            j = w * 64;
            while (bits != 0) {
                if ((bits & 1) != 0) {
                    if (j < i) {
                        mask = mask | (1 << color[j]);
                    }
                }
                bits = bits >> 1;
                j = j + 1;
            }
        }
        color[i] = pick_color(mask);
        total = total + color[i];
    }
    return total;
}
"""

_MAIN = """
int p_blocks;
int p_nodes;
int p_rounds;
int live_in[576];
int color[160];

func main() {
    var r; var s; var i; var ch; var iter;
    s = 0;
    for (r = 0; r < p_rounds; r = r + 1) {
        ch = 1;
        iter = 0;
        while (ch > 0 && iter < 20) {
            ch = liveness_round();
            s = s + ch;
            iter = iter + 1;
        }
        s = s + color_all();
        for (i = 0; i < p_blocks * 3; i = i + 1) {
            live_in[i] = live_in[i] ^ (s & 255);
        }
    }
    for (i = 0; i < p_nodes; i = i + 1) {
        s = s + color[i] * i;
    }
    return s & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 41)
    blocks = scaled(size, 128, 160, 192)
    nodes = scaled(size, 112, 136, 160)
    rounds = scaled(size, 2, 4, 8)
    use_set = [rng() & 0x3FFFFFFF for __ in range(_B * _W)]
    def_set = [rng() & 0x3FFFFFFF for __ in range(_B * _W)]
    succ1 = [(rng() % (blocks + 8)) - 8 for __ in range(_B)]
    succ2 = [(rng() % (blocks + 8)) - 8 for __ in range(_B)]
    succ1 = [s if s < blocks else -1 for s in succ1]
    succ2 = [s if s < blocks else -1 for s in succ2]
    adj: List[int] = [0] * (_N * _W)
    for __ in range(nodes * 3):
        a = rng() % nodes
        b = rng() % nodes
        if a != b:
            adj[a * _W + (b >> 6)] |= 1 << (b & 63)
            adj[b * _W + (a >> 6)] |= 1 << (a & 63)
    return {
        "p_blocks": blocks,
        "p_nodes": nodes,
        "p_rounds": rounds,
        "use_set": use_set,
        "def_set": def_set,
        "succ1": succ1,
        "succ2": succ2,
        "adj": adj,
    }


def reference(bindings: Bindings) -> int:
    blocks = bindings["p_blocks"]
    nodes = bindings["p_nodes"]
    rounds = bindings["p_rounds"]
    use_set = list(bindings["use_set"]) + [0] * (_B * _W)
    def_set = list(bindings["def_set"]) + [0] * (_B * _W)
    succ1 = bindings["succ1"]
    succ2 = bindings["succ2"]
    adj = list(bindings["adj"]) + [0] * (_N * _W)
    live_in = [0] * (_B * _W)
    live_out = [0] * (_B * _W)
    color = [0] * _N

    def liveness_round() -> int:
        changed = 0
        for b in range(blocks - 1, -1, -1):
            s1, s2 = succ1[b], succ2[b]
            o = b * 3
            for w in range(3):
                outv = 0
                if s1 >= 0:
                    outv = bor(outv, live_in[s1 * 3 + w])
                if s2 >= 0:
                    outv = bor(outv, live_in[s2 * 3 + w])
                live_out[o + w] = outv
                inv = bor(use_set[o + w], band(outv, bnot(def_set[o + w])))
                if inv != live_in[o + w]:
                    live_in[o + w] = inv
                    changed += 1
        return changed

    def pick_color(mask: int) -> int:
        c = 0
        while band(mask, 1) != 0 and c < 62:
            mask = shr(mask, 1)
            c += 1
        return c

    def color_all() -> int:
        total = 0
        for i in range(nodes):
            mask = 0
            base = i * 3
            for w in range(3):
                bits = adj[base + w]
                j = w * 64
                while bits != 0:
                    if band(bits, 1) != 0 and j < i:
                        mask = bor(mask, shl(1, color[j]))
                    bits = shr(bits, 1)
                    j += 1
            color[i] = pick_color(mask)
            total += color[i]
        return total

    s = 0
    for __ in range(rounds):
        ch = 1
        iters = 0
        while ch > 0 and iters < 20:
            ch = liveness_round()
            s += ch
            iters += 1
        s += color_all()
        for i in range(blocks * 3):
            live_in[i] = live_in[i] ^ (s & 255)
    for i in range(nodes):
        s += color[i] * i
    return s & 1073741823


WORKLOAD = Workload(
    name="gcc",
    description="liveness dataflow over bitsets + greedy graph coloring",
    sources={"bitset": _BITSET, "coloring": _COLOR, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("branchy", "bitsets", "irregular"),
)
