"""The SPEC-CPU2006-C-inspired workload suite.

Twelve multi-module minic benchmarks named for their SPEC counterparts.
Each is a domain-faithful kernel — not the original program, but code
whose hot loops exert the same *kind* of pressure (branchy interpreter
dispatch, byte-stream compression, pointer chasing, stencils, DP
recurrences, game-tree search, ...), which is what the paper's
measurement-bias experiments require of their suite.

Use :func:`get` / :func:`suite` for access; see
:class:`repro.workloads.base.Workload` for the per-workload API.
"""

from typing import Dict, List

from repro.workloads.base import SIZES, Bindings, Workload, WorkloadError

from repro.workloads import (  # noqa: E402  (registry population)
    bzip2,
    gcc_bench,
    gobmk,
    h264ref,
    hmmer,
    lbm,
    libquantum,
    mcf,
    milc,
    perlbench,
    sjeng,
    sphinx3,
)

_REGISTRY: Dict[str, Workload] = {
    wl.name: wl
    for wl in (
        perlbench.WORKLOAD,
        bzip2.WORKLOAD,
        gcc_bench.WORKLOAD,
        mcf.WORKLOAD,
        milc.WORKLOAD,
        gobmk.WORKLOAD,
        hmmer.WORKLOAD,
        sjeng.WORKLOAD,
        libquantum.WORKLOAD,
        h264ref.WORKLOAD,
        lbm.WORKLOAD,
        sphinx3.WORKLOAD,
    )
}


def get(name: str) -> Workload:
    """Look up a workload by (SPEC-counterpart) name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {all_names()}"
        ) from None


def all_names() -> List[str]:
    """All workload names, in the suite's canonical order."""
    return list(_REGISTRY)


def suite() -> List[Workload]:
    """The full suite, in canonical order."""
    return list(_REGISTRY.values())


__all__ = [
    "SIZES",
    "Bindings",
    "Workload",
    "WorkloadError",
    "all_names",
    "get",
    "suite",
]
