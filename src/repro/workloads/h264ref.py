"""h264ref-like workload: block motion estimation over byte frames.

The SPEC original is the H.264 reference encoder; the dominant kernel is
motion search — sum-of-absolute-differences (SAD) between a current
macroblock and candidate positions in a reference frame, both byte
arrays.  The SAD routine sits in its own module and is called per
candidate, putting a hot cross-module call inside the search loop.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled

_W = 96  # reference frame width
_H = 64  # reference frame height

_SAD = """
byte ref_frame[6144];
byte cur_block[64];

// SAD of the 8x8 current block against ref at (x, y); ref is 96 wide.
func sad_block(x, y) {
    var r; var c; var s; var d; var base;
    s = 0;
    for (r = 0; r < 8; r = r + 1) {
        base = (y + r) * 96 + x;
        for (c = 0; c < 8; c = c + 1) {
            d = cur_block[r * 8 + c] - ref_frame[base + c];
            if (d < 0) { d = 0 - d; }
            s = s + d;
        }
    }
    return s;
}
"""

_MOTION = """
int best_x;
int best_y;

func motion_search(cx, cy) {
    var dx; var dy; var best; var s; var x; var y;
    best = 1 << 30;
    for (dy = 0 - 7; dy <= 7; dy = dy + 1) {
        for (dx = 0 - 7; dx <= 7; dx = dx + 1) {
            x = cx + dx;
            y = cy + dy;
            if (x >= 0 && y >= 0 && x <= 88 && y <= 56) {
                s = sad_block(x, y);
                if (s < best) {
                    best = s;
                    best_x = x;
                    best_y = y;
                }
            }
        }
    }
    return best;
}
"""

_MAIN = """
int p_blocks;
int block_x[48];
int block_y[48];
byte cur_blocks[3072];
byte cur_block[64];
int best_x;
int best_y;

func main() {
    var b; var i; var s;
    s = 0;
    for (b = 0; b < p_blocks; b = b + 1) {
        for (i = 0; i < 64; i = i + 1) {
            cur_block[i] = cur_blocks[b * 64 + i];
        }
        s = s + motion_search(block_x[b], block_y[b]);
        s = s + best_x * 3 + best_y * 7;
    }
    return s & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 103)
    blocks = scaled(size, 2, 6, 16)
    # A smooth-ish reference frame: local gradients plus noise, so SAD
    # surfaces have real minima.
    ref_frame: List[int] = []
    for y in range(_H):
        for x in range(_W):
            ref_frame.append((x * 2 + y * 3 + (rng() & 15)) & 0xFF)
    block_x = [4 + (rng() % 80) for __ in range(48)]
    block_y = [4 + (rng() % 48) for __ in range(48)]
    cur_blocks: List[int] = []
    for b in range(48):
        bx, by = block_x[b], block_y[b]
        for r in range(8):
            for c in range(8):
                cur_blocks.append(
                    (ref_frame[(by + r) * _W + bx + c] + (rng() & 7)) & 0xFF
                )
    return {
        "p_blocks": blocks,
        "ref_frame": ref_frame,
        "block_x": block_x,
        "block_y": block_y,
        "cur_blocks": cur_blocks,
    }


def reference(bindings: Bindings) -> int:
    blocks = bindings["p_blocks"]
    ref_frame = bindings["ref_frame"]
    block_x = bindings["block_x"]
    block_y = bindings["block_y"]
    cur_blocks = bindings["cur_blocks"]

    def sad(cur: List[int], x: int, y: int) -> int:
        s = 0
        for r in range(8):
            base = (y + r) * _W + x
            for c in range(8):
                d = cur[r * 8 + c] - ref_frame[base + c]
                s += -d if d < 0 else d
        return s

    s = 0
    for b in range(blocks):
        cur = cur_blocks[b * 64 : b * 64 + 64]
        best = 1 << 30
        bx = by = 0
        for dy in range(-7, 8):
            for dx in range(-7, 8):
                x = block_x[b] + dx
                y = block_y[b] + dy
                if 0 <= x <= 88 and 0 <= y <= 56:
                    v = sad(cur, x, y)
                    if v < best:
                        best = v
                        bx, by = x, y
        s += best + bx * 3 + by * 7
    return s & 1073741823


WORKLOAD = Workload(
    name="h264ref",
    description="8x8 SAD motion search over byte frames",
    sources={"sad": _SAD, "motion": _MOTION, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("byte-stream", "nested-loops", "cross-module-hot-call"),
)
