"""bzip2-like workload: RLE + move-to-front + frequency modelling.

The SPEC original is block-sorting compression; its hot code is
byte-stream scanning (run-length encoding), the move-to-front transform's
search/shift loops, and frequency counting.  The MTF table lives on the
stack — a hot frame that makes this benchmark environment-size sensitive
through data alignment, like the paper's stack-allocation analysis.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled

_RLE = """
int p_n = 3000;
byte src[12288];
int rsym[8192];
int rlen[8192];

func rle_encode(n) {
    var i; var m; var sym; var run;
    i = 0; m = 0;
    while (i < n) {
        sym = src[i];
        run = 1;
        i = i + 1;
        while (i < n && src[i] == sym && run < 255) {
            run = run + 1;
            i = i + 1;
        }
        rsym[m] = sym;
        rlen[m] = run;
        m = m + 1;
    }
    return m;
}
"""

_MTF = """
int rsym[8192];
int mout[8192];

func mtf_encode(m) {
    var tab[64];
    var i; var j; var sym;
    for (i = 0; i < 64; i = i + 1) { tab[i] = i; }
    for (i = 0; i < m; i = i + 1) {
        sym = rsym[i];
        j = 0;
        while (tab[j] != sym) { j = j + 1; }
        mout[i] = j;
        while (j > 0) {
            tab[j] = tab[j - 1];
            j = j - 1;
        }
        tab[0] = sym;
    }
    return m;
}
"""

_MAIN = """
int p_n;
int rlen[8192];
int mout[8192];
int freq[64];

func main() {
    var m; var i; var s; var c;
    m = rle_encode(p_n);
    mtf_encode(m);
    for (i = 0; i < 64; i = i + 1) { freq[i] = 0; }
    s = 0;
    for (i = 0; i < m; i = i + 1) {
        c = mout[i];
        freq[c] = freq[c] + 1;
        s = s + c * rlen[i] + (s >> 7);
        s = s & 268435455;
    }
    for (i = 0; i < 64; i = i + 1) {
        s = s + freq[i] * i;
    }
    return (s + m) & 1073741823;
}
"""


def _gen_stream(total: int, seed: int) -> List[int]:
    rng = lcg_stream(seed + 29)
    out: List[int] = []
    while len(out) < total:
        sym = rng() & 63
        run = 1 + (rng() % 9)
        out.extend([sym] * run)
    return out[:total]


def make_input(size: str, seed: int) -> Bindings:
    n = scaled(size, 2200, 5500, 12288)
    return {"p_n": n, "src": _gen_stream(n, seed)}


def reference(bindings: Bindings) -> int:
    n = bindings["p_n"]
    src = bindings["src"]
    rsym: List[int] = []
    rlen: List[int] = []
    i = 0
    while i < n:
        sym = src[i]
        run = 1
        i += 1
        while i < n and src[i] == sym and run < 255:
            run += 1
            i += 1
        rsym.append(sym)
        rlen.append(run)
    m = len(rsym)
    tab = list(range(64))
    mout: List[int] = []
    for sym in rsym:
        j = tab.index(sym)
        mout.append(j)
        tab.pop(j)
        tab.insert(0, sym)
    freq = [0] * 64
    s = 0
    for k in range(m):
        c = mout[k]
        freq[c] += 1
        s = s + c * rlen[k] + (s >> 7)
        s &= 268435455
    for k in range(64):
        s += freq[k] * k
    return (s + m) & 1073741823


WORKLOAD = Workload(
    name="bzip2",
    description="run-length encoding + move-to-front + frequency modelling",
    sources={"rle": _RLE, "mtf": _MTF, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("byte-stream", "stack-hot", "search-loops"),
)
