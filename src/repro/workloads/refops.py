"""minic arithmetic semantics for Python reference implementations.

The simulated machine computes on signed 64-bit values: ``*`` and ``<<``
wrap, ``>>`` is a logical shift on the 64-bit pattern, bitwise operators
act on the 64-bit pattern, division truncates toward zero.  Reference
implementations must use these helpers wherever a value could leave the
positive 63-bit range, so that the oracle and the machine agree bit for
bit.
"""

from __future__ import annotations

_M64 = (1 << 64) - 1
_I64_MAX = (1 << 63) - 1


def wrap64(value: int) -> int:
    """Wrap an unbounded int to the machine's signed 64-bit domain."""
    value &= _M64
    if value > _I64_MAX:
        value -= 1 << 64
    return value


def mul(a: int, b: int) -> int:
    """Wrapping multiply."""
    return wrap64(a * b)


def shl(a: int, b: int) -> int:
    """Wrapping left shift (count taken mod 64)."""
    return wrap64((a & _M64) << (b & 63))


def shr(a: int, b: int) -> int:
    """Logical right shift on the 64-bit pattern (count mod 64)."""
    return (a & _M64) >> (b & 63)


def band(a: int, b: int) -> int:
    """Bitwise AND with minic's 64-bit-pattern semantics."""
    return wrap64((a & _M64) & (b & _M64))


def bor(a: int, b: int) -> int:
    """Bitwise OR."""
    return wrap64((a & _M64) | (b & _M64))


def bxor(a: int, b: int) -> int:
    """Bitwise XOR."""
    return wrap64((a & _M64) ^ (b & _M64))


def bnot(a: int) -> int:
    """Bitwise NOT (minic ``~`` is ``XORI -1``)."""
    return bxor(a, -1)


def sdiv(a: int, b: int) -> int:
    """Truncating (C-style) division; caller guarantees ``b != 0``."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def smod(a: int, b: int) -> int:
    """C-style remainder (sign of the dividend)."""
    return a - sdiv(a, b) * b
