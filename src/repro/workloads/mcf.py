"""mcf-like workload: shortest-path relaxation + pointer chasing.

The SPEC original is a network-simplex minimum-cost-flow solver whose
performance is dominated by irregular memory access over node/arc arrays.
This kernel keeps that character: Bellman-Ford relaxation sweeps over an
arc list (distance array larger than L1D) plus a permutation walk whose
loads are serially dependent — the classic latency-bound mcf signature.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled

_RELAX = """
int p_nodes;
int p_arcs;
int tail[3600];
int head[3600];
int cost[3600];
int dist[1100];

func relax_round(arcs) {
    var a; var d; var improved; var h;
    improved = 0;
    for (a = 0; a < arcs; a = a + 1) {
        d = dist[tail[a]] + cost[a];
        h = head[a];
        if (d < dist[h]) {
            dist[h] = d;
            improved = improved + 1;
        }
    }
    return improved;
}
"""

_CHASE = """
int nxt[1100];
int dist[1100];

func chase(start, steps) {
    var i; var cur; var s;
    cur = start;
    s = 0;
    for (i = 0; i < steps; i = i + 1) {
        s = s + dist[cur];
        cur = nxt[cur];
    }
    return s + cur;
}
"""

_MAIN = """
int p_nodes;
int p_arcs;
int p_rounds;
int dist[1100];

func main() {
    var i; var r; var s; var imp;
    for (i = 0; i < p_nodes; i = i + 1) { dist[i] = 1000000; }
    dist[0] = 0;
    s = 0;
    r = 0;
    imp = 1;
    while (imp > 0 && r < p_rounds) {
        imp = relax_round(p_arcs);
        s = s + imp;
        r = r + 1;
    }
    for (i = 0; i < p_nodes; i = i + 1) {
        if (dist[i] < 1000000) { s = s + dist[i]; }
    }
    s = s + chase(0, p_nodes * 2);
    return s & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 53)
    nodes = scaled(size, 600, 850, 1100)
    arcs = scaled(size, 2000, 2800, 3600)
    rounds = scaled(size, 6, 10, 16)
    tail = [rng() % nodes for __ in range(arcs)]
    head = [rng() % nodes for __ in range(arcs)]
    cost = [1 + (rng() % 97) for __ in range(arcs)]
    # A single-cycle permutation for the pointer chase (worst-case
    # dependent loads), built from a deterministic shuffle.
    perm = list(range(nodes))
    for i in range(nodes - 1, 0, -1):
        j = rng() % (i + 1)
        perm[i], perm[j] = perm[j], perm[i]
    nxt = [0] * nodes
    for i in range(nodes):
        nxt[perm[i]] = perm[(i + 1) % nodes]
    return {
        "p_nodes": nodes,
        "p_arcs": arcs,
        "p_rounds": rounds,
        "tail": tail,
        "head": head,
        "cost": cost,
        "nxt": nxt,
    }


def reference(bindings: Bindings) -> int:
    nodes = bindings["p_nodes"]
    arcs = bindings["p_arcs"]
    rounds = bindings["p_rounds"]
    tail = bindings["tail"]
    head = bindings["head"]
    cost = bindings["cost"]
    nxt = bindings["nxt"]
    dist: List[int] = [1000000] * nodes
    dist[0] = 0
    s = 0
    r = 0
    imp = 1
    while imp > 0 and r < rounds:
        imp = 0
        for a in range(arcs):
            d = dist[tail[a]] + cost[a]
            h = head[a]
            if d < dist[h]:
                dist[h] = d
                imp += 1
        s += imp
        r += 1
    for i in range(nodes):
        if dist[i] < 1000000:
            s += dist[i]
    cur = 0
    for __ in range(nodes * 2):
        s += dist[cur]
        cur = nxt[cur]
    s += cur
    return s & 1073741823


WORKLOAD = Workload(
    name="mcf",
    description="Bellman-Ford arc relaxation + permutation pointer chase",
    sources={"relax": _RELAX, "chase": _CHASE, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("memory-bound", "irregular", "latency"),
)
