"""perlbench-like workload: bytecode interpreter state machine + hash table.

The SPEC original is the Perl interpreter; its hot code is opcode dispatch
over interpreter state plus heavy hash-table traffic.  This kernel keeps
those two phases:

- ``interp``: a tight state-machine loop over a *stack-resident* state
  buffer — the loop fits Core 2's loop stream detector at O2 but not once
  O3 unrolls it, and its stack accesses make it environment-size
  sensitive.  This is the paper's Figure 3 headliner.
- ``hasht``: open-addressing hash table over an odd-sized global array
  (odd so relinking shifts its cache-set phase).
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled
from repro.workloads.refops import band, mul, shr

_INTERP = """
int p_n = 6000;
int p_reps = 2;
int p_seed = 3;

func interp_run(n, seed) {
    var st[12];
    var i; var h; var s; var j;
    h = seed; s = 0; j = 0;
    for (i = 0; i < 12; i = i + 1) { st[i] = seed + i * 13; }
    for (i = 0; i < n; i = i + 1) {
        h = (h * 33 + st[j]) & 262143;
        s = s + st[(h >> 4) & 7] - h;
        j = (j + 1) & 7;
    }
    return s;
}
"""

_HASHT = """
int htab[541];
int keys[512];

func ht_hash(k) {
    var h; var a; var b;
    a = k * 2654435761;
    b = (a >> 13) ^ a;
    h = b + (k << 3);
    a = h ^ (h >> 7);
    b = a + (a >> 17);
    h = b ^ (b << 5);
    h = h & 4194303;
    return h;
}

func ht_insert(k) {
    var h; var probes;
    h = ht_hash(k);
    h = h - (h / 541) * 541;
    probes = 0;
    while (htab[h] != 0) {
        h = h + 1;
        if (h >= 541) { h = 0; }
        probes = probes + 1;
        if (probes > 540) { return 0 - 1; }
    }
    htab[h] = k;
    return probes;
}

func ht_lookup(k) {
    var h; var probes;
    h = ht_hash(k);
    h = h - (h / 541) * 541;
    probes = 0;
    while (htab[h] != 0 && htab[h] != k) {
        h = h + 1;
        if (h >= 541) { h = 0; }
        probes = probes + 1;
        if (probes > 540) { return 0 - 1; }
    }
    if (htab[h] == k) { return probes; }
    return 0 - probes - 1;
}
"""

_MAIN = """
int p_n;
int p_reps;
int p_seed;
int htab[541];
int keys[512];

func main() {
    var r; var s; var i; var k;
    s = 0;
    for (r = 0; r < p_reps; r = r + 1) {
        s = s + interp_run(p_n, p_seed + r);
        for (i = 0; i < 192; i = i + 1) {
            k = (keys[i & 511] + r * 7) & 1048575;
            if (k == 0) { k = 1; }
            s = s + ht_insert(k);
        }
        for (i = 0; i < 192; i = i + 1) {
            k = (keys[i & 511] + r * 7) & 1048575;
            if (k == 0) { k = 1; }
            s = s + ht_lookup(k);
        }
        for (i = 0; i < 541; i = i + 1) { htab[i] = 0; }
    }
    return s & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 11)
    keys = [(rng() & 0xFFFFF) or 1 for __ in range(512)]
    return {
        "p_n": scaled(size, 6000, 10000, 16000),
        "p_reps": scaled(size, 2, 4, 8),
        "p_seed": 3 + seed,
        "keys": keys,
    }


def _interp_run(n: int, seed: int) -> int:
    st = [seed + i * 13 for i in range(12)]
    h, s, j = seed, 0, 0
    for __ in range(n):
        h = band(mul(h, 33) + st[j], 262143)
        s = s + st[band(shr(h, 4), 7)] - h
        j = (j + 1) & 7
    return s


def _ht_hash(k: int) -> int:
    # Mirrors the minic ht_hash; k is a masked non-negative 20-bit value,
    # so no intermediate leaves the positive 63-bit range.
    a = mul(k, 2654435761)
    b = shr(a, 13) ^ a
    h = b + (k << 3)
    a = h ^ shr(h, 7)
    b = a + shr(a, 17)
    h = b ^ (b << 5)
    return band(h, 4194303)


def reference(bindings: Bindings) -> int:
    p_n = bindings["p_n"]
    p_reps = bindings["p_reps"]
    p_seed = bindings["p_seed"]
    keys = bindings["keys"]
    htab: Dict[int, int] = {}
    s = 0
    for r in range(p_reps):
        s += _interp_run(p_n, p_seed + r)
        for phase in ("insert", "lookup"):
            for i in range(192):
                k = band(keys[i & 511] + r * 7, 1048575) or 1
                h = _ht_hash(k) % 541
                probes = 0
                if phase == "insert":
                    while htab.get(h, 0) != 0:
                        h = (h + 1) % 541
                        probes += 1
                        if probes > 540:
                            probes = None
                            break
                    if probes is None:
                        s += -1
                    else:
                        htab[h] = k
                        s += probes
                else:
                    overflow = False
                    while htab.get(h, 0) != 0 and htab.get(h, 0) != k:
                        h = (h + 1) % 541
                        probes += 1
                        if probes > 540:
                            overflow = True
                            break
                    if overflow:
                        s += -1  # matches the minic early return
                    elif htab.get(h, 0) == k:
                        s += probes
                    else:
                        s += -probes - 1
        htab.clear()
    return s & 1073741823


WORKLOAD = Workload(
    name="perlbench",
    description="bytecode interpreter state machine + open-addressing hash table",
    sources={"interp": _INTERP, "hasht": _HASHT, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("branchy", "hash", "stack-hot", "lsd-sensitive"),
)
