"""Workload framework.

A :class:`Workload` is a multi-module minic program plus:

- **input classes** ("test"/"train"/"ref", after SPEC's convention) that
  bind global data objects and parameter scalars at load time,
- a **Python reference implementation** computing the expected exit
  value — every simulated run is self-checking, and the reference doubles
  as a differential-testing oracle for the whole toolchain.

Multi-module sources are the point: the linker's input order can be
permuted (the paper's link-order experiments), so each workload splits
its code across several translation units the way real programs do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple, Union

Bindings = Dict[str, Union[int, List[int]]]

#: Input-class names in increasing size, mirroring SPEC.
SIZES = ("test", "train", "ref")


class WorkloadError(Exception):
    """A workload definition or input request is invalid."""


@dataclass(frozen=True)
class Workload:
    """One benchmark program.

    Attributes:
        name: suite-unique identifier (SPEC-counterpart name).
        description: one-line domain description.
        sources: module name -> minic source text.  Iteration order is the
            default link order.
        make_input: ``(size, seed) -> bindings`` producing loader bindings
            (global symbol -> scalar or array contents).
        reference: ``(bindings) -> int`` computing the expected exit value
            with minic semantics (use :mod:`repro.workloads.refops`).
        tags: free-form descriptors ("branchy", "memory-bound", ...).
    """

    name: str
    description: str
    sources: Mapping[str, str]
    make_input: Callable[[str, int], Bindings]
    reference: Callable[[Bindings], int]
    tags: Tuple[str, ...] = ()

    def module_names(self) -> List[str]:
        """Module names in default link order."""
        return list(self.sources)

    def input_for(self, size: str = "test", seed: int = 0) -> Bindings:
        """Input bindings for one (size, seed) pair."""
        if size not in SIZES:
            raise WorkloadError(
                f"{self.name}: unknown input class {size!r} (use one of {SIZES})"
            )
        return self.make_input(size, seed)

    def expected(self, bindings: Bindings) -> int:
        """Expected exit value for ``bindings``."""
        return self.reference(bindings)

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, modules={self.module_names()})"


def lcg_stream(seed: int) -> Callable[[], int]:
    """Deterministic 63-bit LCG; the suite's only randomness source.

    Returns a zero-argument function yielding the next value.  Workload
    input generators must use this (never :mod:`random`) so inputs are
    stable across Python versions.
    """
    state = (seed * 2862933555777941757 + 3037000493) & ((1 << 63) - 1)

    def next_value() -> int:
        nonlocal state
        state = (state * 3202034522624059733 + 4354685564936845319) & (
            (1 << 63) - 1
        )
        return state >> 16

    return next_value


def scaled(size: str, test: int, train: int, ref: int) -> int:
    """Pick a size-dependent parameter value."""
    return {"test": test, "train": train, "ref": ref}[size]
