"""sjeng-like workload: game-tree search with recursive negamax.

The SPEC original is a chess engine; its hot code is recursive
alpha-beta search with move generation and incremental evaluation.  This
kernel searches a simplified board game (kings/knights/pawns on an 0x88
board) with full negamax recursion — every ply allocates a move-list
frame on the stack, so search depth multiplies the paper's
stack-placement sensitivity.

Board encoding (0x88): square ``16*rank + file``; pieces: 0 empty,
1 white pawn, 2 white knight, 3 white king, negatives for black.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled

_MOVEGEN = """
int board[128];

// Encode a move as from * 256 + to.
func gen_moves(side, buf_addr) {
    var sq; var p; var n; var t; var d; var koff[8];
    koff[0] = 31; koff[1] = 33; koff[2] = 14; koff[3] = 18;
    koff[4] = 0 - 31; koff[5] = 0 - 33; koff[6] = 0 - 14; koff[7] = 0 - 18;
    n = 0;
    for (sq = 0; sq < 128; sq = sq + 1) {
        if ((sq & 136) != 0) { continue; }
        p = board[sq] * side;
        if (p == 1) {
            t = sq + 16 * side;
            if ((t & 136) == 0 && board[t] == 0) {
                poke(buf_addr + n * 8, sq * 256 + t);
                n = n + 1;
            }
            t = sq + 16 * side + 1;
            if ((t & 136) == 0 && board[t] * side < 0) {
                poke(buf_addr + n * 8, sq * 256 + t);
                n = n + 1;
            }
            t = sq + 16 * side - 1;
            if ((t & 136) == 0 && board[t] * side < 0) {
                poke(buf_addr + n * 8, sq * 256 + t);
                n = n + 1;
            }
        }
        if (p == 2) {
            for (d = 0; d < 8; d = d + 1) {
                t = sq + koff[d];
                if ((t & 136) == 0 && board[t] * side <= 0) {
                    poke(buf_addr + n * 8, sq * 256 + t);
                    n = n + 1;
                }
            }
        }
        if (n > 48) { return n; }
    }
    return n;
}
"""

_EVAL = """
int board[128];

func evaluate(side) {
    var sq; var p; var s;
    s = 0;
    for (sq = 0; sq < 128; sq = sq + 1) {
        if ((sq & 136) != 0) { continue; }
        p = board[sq];
        if (p == 1) { s = s + 100 + (sq >> 4); }
        if (p == 2) { s = s + 300; }
        if (p == 3) { s = s + 10000; }
        if (p == 0 - 1) { s = s - 100 - (7 - (sq >> 4)); }
        if (p == 0 - 2) { s = s - 300; }
        if (p == 0 - 3) { s = s - 10000; }
    }
    return s * side;
}
"""

_SEARCH = """
int board[128];
int node_count;

func negamax(side, depth) {
    var moves[56];
    var n; var i; var best; var v; var mv; var from; var to; var captured;
    node_count = node_count + 1;
    if (depth == 0) {
        return evaluate(side);
    }
    n = gen_moves(side, &moves);
    if (n == 0) {
        return evaluate(side);
    }
    best = 0 - 100000;
    for (i = 0; i < n; i = i + 1) {
        mv = moves[i];
        from = mv >> 8;
        to = mv & 255;
        captured = board[to];
        board[to] = board[from];
        board[from] = 0;
        v = 0 - negamax(0 - side, depth - 1);
        board[from] = board[to];
        board[to] = captured;
        if (v > best) { best = v; }
    }
    return best;
}
"""

_MAIN = """
int p_depth;
int p_positions;
int setup[64];
int board[128];
int node_count;

func main() {
    var g; var i; var s; var sq;
    s = 0;
    node_count = 0;
    for (g = 0; g < p_positions; g = g + 1) {
        for (i = 0; i < 128; i = i + 1) { board[i] = 0; }
        for (i = 0; i < 64; i = i + 1) {
            sq = ((i >> 3) * 16) + (i & 7);
            board[sq] = setup[(g * 17 + i) & 63];
        }
        board[4] = 3;
        board[116] = 0 - 3;
        s = s + negamax(1, p_depth);
    }
    return (s + node_count) & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 97)
    depth = scaled(size, 2, 2, 3)
    positions = scaled(size, 1, 3, 4)
    pieces = (0, 0, 0, 0, 0, 1, -1, 0, 0, 0, 2, -2, 0, 0, 0, 0)
    setup = [pieces[rng() & 15] for __ in range(64)]
    return {
        "p_depth": depth,
        "p_positions": positions,
        "setup": setup,
    }


def reference(bindings: Bindings) -> int:
    depth0 = bindings["p_depth"]
    positions = bindings["p_positions"]
    setup = bindings["setup"]
    board = [0] * 128
    node_count = 0

    koff = (31, 33, 14, 18, -31, -33, -14, -18)

    def gen_moves(side: int) -> List[int]:
        out: List[int] = []
        for sq in range(128):
            if sq & 136:
                continue
            p = board[sq] * side
            if p == 1:
                t = sq + 16 * side
                if (t & 136) == 0 and board[t] == 0:
                    out.append(sq * 256 + t)
                t = sq + 16 * side + 1
                if (t & 136) == 0 and board[t] * side < 0:
                    out.append(sq * 256 + t)
                t = sq + 16 * side - 1
                if (t & 136) == 0 and board[t] * side < 0:
                    out.append(sq * 256 + t)
            if p == 2:
                for d in koff:
                    t = sq + d
                    if (t & 136) == 0 and board[t] * side <= 0:
                        out.append(sq * 256 + t)
            if len(out) > 48:
                return out
        return out

    def evaluate(side: int) -> int:
        s = 0
        for sq in range(128):
            if sq & 136:
                continue
            p = board[sq]
            if p == 1:
                s += 100 + (sq >> 4)
            elif p == 2:
                s += 300
            elif p == 3:
                s += 10000
            elif p == -1:
                s -= 100 + (7 - (sq >> 4))
            elif p == -2:
                s -= 300
            elif p == -3:
                s -= 10000
        return s * side

    def negamax(side: int, depth: int) -> int:
        nonlocal node_count
        node_count += 1
        if depth == 0:
            return evaluate(side)
        moves = gen_moves(side)
        if not moves:
            return evaluate(side)
        best = -100000
        for mv in moves:
            frm, to = mv >> 8, mv & 255
            captured = board[to]
            board[to] = board[frm]
            board[frm] = 0
            v = -negamax(-side, depth - 1)
            board[frm] = board[to]
            board[to] = captured
            if v > best:
                best = v
        return best

    s = 0
    for g in range(positions):
        for i in range(128):
            board[i] = 0
        for i in range(64):
            sq = ((i >> 3) * 16) + (i & 7)
            board[sq] = setup[(g * 17 + i) & 63]
        board[4] = 3
        board[116] = -3
        s += negamax(1, depth0)
    return (s + node_count) & 1073741823


WORKLOAD = Workload(
    name="sjeng",
    description="negamax game-tree search with 0x88 move generation",
    sources={"movegen": _MOVEGEN, "evalmod": _EVAL, "search": _SEARCH, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("recursive", "branchy", "stack-hot"),
)
