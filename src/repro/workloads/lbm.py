"""lbm-like workload: lattice-Boltzmann stream/collide sweeps.

The SPEC original advects fluid distribution functions over a 3-D grid
in long streaming passes; performance is dominated by regular memory
bandwidth with simple per-cell arithmetic.  This kernel keeps a 1-D
three-velocity lattice (rest/left/right) with double-buffered streaming
and a fixed-point collision step — long unrollable loops over arrays
that overflow L1 into L2, the memory-bound signature of lbm.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled
from repro.workloads.refops import band, shr

_NX = 1200

_STREAM = """
int f0[1200];
int f1[1200];
int f2[1200];
int g0[1200];
int g1[1200];
int g2[1200];

func stream(nx) {
    var i;
    g0[0] = f0[0];
    g1[0] = f1[nx - 1];
    g2[0] = f2[1];
    for (i = 1; i < nx - 1; i = i + 1) {
        g0[i] = f0[i];
        g1[i] = f1[i - 1];
        g2[i] = f2[i + 1];
    }
    g0[nx - 1] = f0[nx - 1];
    g1[nx - 1] = f1[nx - 2];
    g2[nx - 1] = f2[0];
    return 0;
}
"""

_COLLIDE = """
int f0[1200];
int f1[1200];
int f2[1200];
int g0[1200];
int g1[1200];
int g2[1200];

func collide(nx, omega) {
    var i; var rho; var e0; var e1; var e2;
    for (i = 0; i < nx; i = i + 1) {
        rho = g0[i] + g1[i] + g2[i];
        e0 = (rho * 4) >> 3;
        e1 = (rho * 2) >> 3;
        e2 = rho - e0 - e1;
        f0[i] = (g0[i] * (8 - omega) + e0 * omega) >> 3;
        f1[i] = (g1[i] * (8 - omega) + e1 * omega) >> 3;
        f2[i] = (g2[i] * (8 - omega) + e2 * omega) >> 3;
    }
    return 0;
}
"""

_MAIN = """
int p_nx;
int p_steps;
int p_omega;
int f0[1200];
int f1[1200];
int f2[1200];

func main() {
    var t; var i; var s;
    for (t = 0; t < p_steps; t = t + 1) {
        stream(p_nx);
        collide(p_nx, p_omega);
    }
    s = 0;
    for (i = 0; i < p_nx; i = i + 1) {
        s = s + f0[i] + (f1[i] ^ i) + (f2[i] >> 1);
    }
    return s & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 107)
    nx = scaled(size, 700, 1000, 1200)
    steps = scaled(size, 7, 16, 36)
    f0 = [256 + (rng() & 255) for __ in range(nx)]
    f1 = [256 + (rng() & 255) for __ in range(nx)]
    f2 = [256 + (rng() & 255) for __ in range(nx)]
    return {
        "p_nx": nx,
        "p_steps": steps,
        "p_omega": 3,
        "f0": f0,
        "f1": f1,
        "f2": f2,
    }


def reference(bindings: Bindings) -> int:
    nx = bindings["p_nx"]
    steps = bindings["p_steps"]
    omega = bindings["p_omega"]
    f0: List[int] = list(bindings["f0"])
    f1: List[int] = list(bindings["f1"])
    f2: List[int] = list(bindings["f2"])
    for __ in range(steps):
        g0 = list(f0)
        g1 = [f1[nx - 1]] + f1[: nx - 1]
        g2 = f2[1:nx] + [f2[0]]
        for i in range(nx):
            rho = g0[i] + g1[i] + g2[i]
            e0 = shr(rho * 4, 3)
            e1 = shr(rho * 2, 3)
            e2 = rho - e0 - e1
            f0[i] = shr(g0[i] * (8 - omega) + e0 * omega, 3)
            f1[i] = shr(g1[i] * (8 - omega) + e1 * omega, 3)
            f2[i] = shr(g2[i] * (8 - omega) + e2 * omega, 3)
    s = 0
    for i in range(nx):
        s += f0[i] + (f1[i] ^ i) + shr(f2[i], 1)
    return s & 1073741823


WORKLOAD = Workload(
    name="lbm",
    description="1-D lattice-Boltzmann stream/collide with double buffering",
    sources={"stream": _STREAM, "collide": _COLLIDE, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("memory-bound", "streaming", "unrollable"),
)
