"""milc-like workload: lattice QCD SU(3)-style stencil arithmetic.

The SPEC original multiplies 3x3 complex matrices against site vectors
over a 4-D lattice.  This kernel keeps the arithmetic shape in
fixed-point integers: per-site 3x3 matrix-vector products (mul/add dense,
manually unrolled as in the original's generated code) plus a
nearest-neighbour gather — regular, multiply-heavy, streaming.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled
from repro.workloads.refops import band, mul, shr

_SU3 = """
int mats[1152];
int vecs[384];
int outv[384];

func matvec_site(site) {
    var mb; var vb; var r0; var r1; var r2; var v0;
    mb = site * 9;
    vb = site * 3;
    v0 = vecs[vb];
    r0 = mats[mb] * v0;
    r1 = mats[mb + 3] * v0;
    r2 = mats[mb + 6] * v0;
    v0 = vecs[vb + 1];
    r0 = r0 + mats[mb + 1] * v0;
    r1 = r1 + mats[mb + 4] * v0;
    r2 = r2 + mats[mb + 7] * v0;
    v0 = vecs[vb + 2];
    r0 = r0 + mats[mb + 2] * v0;
    r1 = r1 + mats[mb + 5] * v0;
    r2 = r2 + mats[mb + 8] * v0;
    outv[vb] = (r0 >> 8) & 16777215;
    outv[vb + 1] = (r1 >> 8) & 16777215;
    outv[vb + 2] = (r2 >> 8) & 16777215;
    return 0;
}
"""

_LATTICE = """
int outv[384];
int vecs[384];

func gather_shift(sites) {
    var i; var n; var b; var nb;
    for (i = 0; i < sites; i = i + 1) {
        n = i + 1;
        if (n >= sites) { n = 0; }
        b = i * 3;
        nb = n * 3;
        vecs[b] = (outv[b] + outv[nb]) & 16777215;
        vecs[b + 1] = (outv[b + 1] + outv[nb + 1]) & 16777215;
        vecs[b + 2] = (outv[b + 2] + outv[nb + 2]) & 16777215;
    }
    return 0;
}
"""

_MAIN = """
int p_sites;
int p_sweeps;
int vecs[384];
int outv[384];

func main() {
    var sw; var i; var s;
    for (sw = 0; sw < p_sweeps; sw = sw + 1) {
        for (i = 0; i < p_sites; i = i + 1) {
            matvec_site(i);
        }
        gather_shift(p_sites);
    }
    s = 0;
    for (i = 0; i < p_sites * 3; i = i + 1) {
        s = s + vecs[i] * (i + 1);
    }
    return s & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 67)
    sites = scaled(size, 96, 112, 128)
    sweeps = scaled(size, 24, 60, 120)
    mats = [rng() & 1023 for __ in range(sites * 9)]
    vecs = [rng() & 4095 for __ in range(sites * 3)]
    return {
        "p_sites": sites,
        "p_sweeps": sweeps,
        "mats": mats,
        "vecs": vecs,
    }


def reference(bindings: Bindings) -> int:
    sites = bindings["p_sites"]
    sweeps = bindings["p_sweeps"]
    mats = bindings["mats"]
    vecs: List[int] = list(bindings["vecs"]) + [0] * (384 - len(bindings["vecs"]))
    outv = [0] * 384
    for __ in range(sweeps):
        for i in range(sites):
            mb, vb = i * 9, i * 3
            r0 = r1 = r2 = 0
            for c in range(3):
                v = vecs[vb + c]
                r0 += mul(mats[mb + c], v)
                r1 += mul(mats[mb + 3 + c], v)
                r2 += mul(mats[mb + 6 + c], v)
            outv[vb] = band(shr(r0, 8), 16777215)
            outv[vb + 1] = band(shr(r1, 8), 16777215)
            outv[vb + 2] = band(shr(r2, 8), 16777215)
        for i in range(sites):
            n = i + 1 if i + 1 < sites else 0
            b, nb = i * 3, n * 3
            for c in range(3):
                vecs[b + c] = band(outv[b + c] + outv[nb + c], 16777215)
    s = 0
    for i in range(sites * 3):
        s += vecs[i] * (i + 1)
    return s & 1073741823


WORKLOAD = Workload(
    name="milc",
    description="fixed-point SU(3)-style matrix-vector stencil sweeps",
    sources={"su3": _SU3, "lattice": _LATTICE, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("numeric", "mul-heavy", "regular"),
)
