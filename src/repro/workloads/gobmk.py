"""gobmk-like workload: Go board liberties via flood fill + pattern scan.

The SPEC original is the GNU Go engine; its hot code walks a 19x19 board
counting liberties of stone chains (branchy flood fill with an explicit
worklist) and matches local patterns.  The flood-fill worklist and the
visited markers live on the stack — hot frames, as in the paper's
environment-size analysis.

Board encoding: 21x21 with a border ring (offset ``y * 21 + x``);
0 empty, 1 black, 2 white, 3 border.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled

_BOARD = """
int board[441];

func count_liberties(pos) {
    var stack[96];
    var seen[441];
    var top; var libs; var color; var p; var q; var d; var dirs[4];
    color = board[pos];
    if (color != 1 && color != 2) { return 0; }
    dirs[0] = 1; dirs[1] = 0 - 1; dirs[2] = 21; dirs[3] = 0 - 21;
    for (p = 0; p < 441; p = p + 1) { seen[p] = 0; }
    top = 0;
    stack[top] = pos;
    top = top + 1;
    seen[pos] = 1;
    libs = 0;
    while (top > 0) {
        top = top - 1;
        p = stack[top];
        for (d = 0; d < 4; d = d + 1) {
            q = p + dirs[d];
            if (seen[q] == 0) {
                seen[q] = 1;
                if (board[q] == 0) {
                    libs = libs + 1;
                }
                if (board[q] == color) {
                    if (top < 95) {
                        stack[top] = q;
                        top = top + 1;
                    }
                }
            }
        }
    }
    return libs;
}
"""

_PATTERNS = """
int board[441];

func pattern_score(pos) {
    var s; var c; var n; var e; var w2; var so;
    c = board[pos];
    if (c != 0) { return 0; }
    n = board[pos - 21];
    so = board[pos + 21];
    e = board[pos + 1];
    w2 = board[pos - 1];
    s = 0;
    if (n == 1) { s = s + 3; }
    if (so == 1) { s = s + 3; }
    if (e == 1) { s = s + 2; }
    if (w2 == 1) { s = s + 2; }
    if (n == 2) { s = s - 2; }
    if (so == 2) { s = s - 2; }
    if (e == 2) { s = s - 1; }
    if (w2 == 2) { s = s - 1; }
    if (n == 3 || so == 3 || e == 3 || w2 == 3) { s = s + 1; }
    return s;
}
"""

_MAIN = """
int p_stones;
int p_passes;
int board[441];
int moves[256];

func main() {
    var i; var s; var pos; var y; var x;
    for (i = 0; i < 441; i = i + 1) { board[i] = 0; }
    for (x = 0; x < 21; x = x + 1) {
        board[x] = 3;
        board[420 + x] = 3;
    }
    for (y = 0; y < 21; y = y + 1) {
        board[y * 21] = 3;
        board[y * 21 + 20] = 3;
    }
    for (i = 0; i < p_stones; i = i + 1) {
        pos = moves[i];
        if (board[pos] == 0) {
            board[pos] = 1 + (i & 1);
        }
    }
    s = 0;
    for (i = 0; i < p_passes; i = i + 1) {
        for (y = 1; y < 20; y = y + 1) {
            for (x = 1; x < 20; x = x + 1) {
                pos = y * 21 + x;
                if (board[pos] == 1 || board[pos] == 2) {
                    s = s + count_liberties(pos);
                } else {
                    s = s + pattern_score(pos);
                }
            }
        }
    }
    return (s + p_stones) & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 71)
    stones = scaled(size, 90, 140, 200)
    passes = scaled(size, 1, 2, 4)
    moves: List[int] = []
    for __ in range(256):
        y = 1 + (rng() % 19)
        x = 1 + (rng() % 19)
        moves.append(y * 21 + x)
    return {
        "p_stones": stones,
        "p_passes": passes,
        "moves": moves,
    }


def reference(bindings: Bindings) -> int:
    stones = bindings["p_stones"]
    passes = bindings["p_passes"]
    moves = bindings["moves"]
    board = [0] * 441
    for x in range(21):
        board[x] = 3
        board[420 + x] = 3
    for y in range(21):
        board[y * 21] = 3
        board[y * 21 + 20] = 3
    for i in range(stones):
        pos = moves[i]
        if board[pos] == 0:
            board[pos] = 1 + (i & 1)

    dirs = (1, -1, 21, -21)

    def count_liberties(pos: int) -> int:
        color = board[pos]
        if color not in (1, 2):
            return 0
        seen = [0] * 441
        stack = [pos]
        seen[pos] = 1
        libs = 0
        while stack:
            p = stack.pop()
            for d in dirs:
                q = p + d
                if seen[q] == 0:
                    seen[q] = 1
                    if board[q] == 0:
                        libs += 1
                    if board[q] == color and len(stack) < 95:
                        stack.append(q)
        return libs

    def pattern_score(pos: int) -> int:
        if board[pos] != 0:
            return 0
        n, so = board[pos - 21], board[pos + 21]
        e, w2 = board[pos + 1], board[pos - 1]
        s = 0
        s += 3 if n == 1 else 0
        s += 3 if so == 1 else 0
        s += 2 if e == 1 else 0
        s += 2 if w2 == 1 else 0
        s -= 2 if n == 2 else 0
        s -= 2 if so == 2 else 0
        s -= 1 if e == 2 else 0
        s -= 1 if w2 == 2 else 0
        if 3 in (n, so, e, w2):
            s += 1
        return s

    s = 0
    for __ in range(passes):
        for y in range(1, 20):
            for x in range(1, 20):
                pos = y * 21 + x
                if board[pos] in (1, 2):
                    s += count_liberties(pos)
                else:
                    s += pattern_score(pos)
    return (s + stones) & 1073741823


WORKLOAD = Workload(
    name="gobmk",
    description="Go liberties flood fill + 3x3 pattern scoring",
    sources={"boardlib": _BOARD, "patterns": _PATTERNS, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("branchy", "stack-hot", "worklist"),
)
