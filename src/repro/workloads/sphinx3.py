"""sphinx3-like workload: GMM acoustic scoring with best-mixture search.

The SPEC original is a speech recognizer whose hot loop scores feature
frames against Gaussian mixture models: per (frame, mixture), a squared-
distance accumulation over feature dimensions, then a running best/top-N
selection.  The feature vector is copied to a stack buffer per frame (as
sphinx's fixed-point frontend does), keeping the paper's stack-placement
sensitivity in play.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled
from repro.workloads.refops import shr

_DIM = 16
_MIX = 40

_GMM = """
int means[640];
int scales[640];
int frames[3072];

// Score one frame (stack copy) against mixture m: negative squared
// Mahalanobis-ish distance in fixed point.
func gmm_score(frame_addr, m) {
    var d; var acc; var diff; var base;
    acc = 0;
    base = m * 16;
    for (d = 0; d < 16; d = d + 1) {
        diff = peek(frame_addr + d * 8) - means[base + d];
        acc = acc + ((diff * diff * scales[base + d]) >> 9);
    }
    return 0 - acc;
}
"""

_SEARCH = """
int best_mix;

func best_of(frame_addr, mixes) {
    var m; var best; var v;
    best = 0 - 1073741824;
    best_mix = 0;
    for (m = 0; m < mixes; m = m + 1) {
        v = gmm_score(frame_addr, m);
        if (v > best) {
            best = v;
            best_mix = m;
        }
    }
    return best;
}
"""

_MAIN = """
int p_frames;
int p_mixes;
int frames[3072];
int best_mix;

func main() {
    var feat[16];
    var t; var d; var s; var b;
    s = 0;
    for (t = 0; t < p_frames; t = t + 1) {
        for (d = 0; d < 16; d = d + 1) {
            feat[d] = frames[t * 16 + d];
        }
        b = best_of(&feat, p_mixes);
        s = s + (b >> 4) + best_mix * 131;
        s = s & 268435455;
    }
    return s & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 109)
    n_frames = scaled(size, 24, 60, 120)
    mixes = scaled(size, 24, 32, 40)
    means = [rng() & 1023 for __ in range(_MIX * _DIM)]
    scales = [1 + (rng() & 63) for __ in range(_MIX * _DIM)]
    frames = [rng() & 1023 for __ in range(192 * _DIM)]
    return {
        "p_frames": n_frames,
        "p_mixes": mixes,
        "means": means,
        "scales": scales,
        "frames": frames,
    }


def reference(bindings: Bindings) -> int:
    n_frames = bindings["p_frames"]
    mixes = bindings["p_mixes"]
    means = bindings["means"]
    scales = bindings["scales"]
    frames = bindings["frames"]

    def gmm_score(feat: List[int], m: int) -> int:
        acc = 0
        base = m * _DIM
        for d in range(_DIM):
            diff = feat[d] - means[base + d]
            acc += shr(diff * diff * scales[base + d], 9)
        return -acc

    s = 0
    for t in range(n_frames):
        feat = frames[t * _DIM : (t + 1) * _DIM]
        best = -1073741824
        best_mix = 0
        for m in range(mixes):
            v = gmm_score(feat, m)
            if v > best:
                best = v
                best_mix = m
        # minic ``>>`` is a logical shift on the 64-bit pattern, so a
        # negative best shifts to a huge positive value — mirror that.
        s = s + shr(best, 4) + best_mix * 131
        s &= 268435455
    return s & 1073741823


WORKLOAD = Workload(
    name="sphinx3",
    description="GMM frame scoring with best-mixture selection",
    sources={"gmm": _GMM, "searchmod": _SEARCH, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("numeric", "mul-heavy", "stack-hot"),
)
