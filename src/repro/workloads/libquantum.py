"""libquantum-like workload: quantum register gate simulation.

The SPEC original simulates Shor's algorithm by streaming gate
applications over a quantum-state array; its hot loops are long, regular
passes flipping/combining amplitudes selected by qubit bit masks —
prime unrolling material, which is exactly what makes it O3-shape
sensitive.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Bindings, Workload, lcg_stream, scaled
from repro.workloads.refops import band, bxor, mul, shr

_GATES = """
int amp[4096];

func gate_not(n, tmask) {
    var i; var j; var t;
    for (i = 0; i < n; i = i + 1) {
        j = i ^ tmask;
        if (i < j) {
            t = amp[i];
            amp[i] = amp[j];
            amp[j] = t;
        }
    }
    return 0;
}

func gate_cnot(n, cmask, tmask) {
    var i; var j; var t;
    for (i = 0; i < n; i = i + 1) {
        if ((i & cmask) != 0) {
            j = i ^ tmask;
            if (i < j) {
                t = amp[i];
                amp[i] = amp[j];
                amp[j] = t;
            }
        }
    }
    return 0;
}

func gate_phase(n, cmask, k) {
    var i;
    for (i = 0; i < n; i = i + 1) {
        if ((i & cmask) != 0) {
            amp[i] = (amp[i] * k + (amp[i] >> 3)) & 16777215;
        }
    }
    return 0;
}
"""

_MAIN = """
int p_qubits;
int p_gates;
int gate_kind[96];
int gate_a[96];
int gate_b[96];
int amp[4096];

func main() {
    var n; var g; var kind; var s; var i;
    n = 1 << p_qubits;
    for (g = 0; g < p_gates; g = g + 1) {
        kind = gate_kind[g];
        if (kind == 0) {
            gate_not(n, 1 << gate_a[g]);
        }
        if (kind == 1) {
            gate_cnot(n, 1 << gate_a[g], 1 << gate_b[g]);
        }
        if (kind == 2) {
            gate_phase(n, 1 << gate_a[g], 3 + gate_b[g]);
        }
    }
    s = 0;
    for (i = 0; i < n; i = i + 1) {
        s = s + (amp[i] ^ i);
    }
    return s & 1073741823;
}
"""


def make_input(size: str, seed: int) -> Bindings:
    rng = lcg_stream(seed + 101)
    qubits = scaled(size, 10, 11, 12)
    gates = scaled(size, 28, 56, 96)
    gate_kind = [rng() % 3 for __ in range(96)]
    gate_a = [rng() % qubits for __ in range(96)]
    gate_b_raw = [rng() % qubits for __ in range(96)]
    gate_b = [
        b if b != a else (b + 1) % qubits
        for a, b in zip(gate_a, gate_b_raw)
    ]
    amp = [rng() & 0xFFFFFF for __ in range(1 << qubits)]
    return {
        "p_qubits": qubits,
        "p_gates": gates,
        "gate_kind": gate_kind,
        "gate_a": gate_a,
        "gate_b": gate_b,
        "amp": amp,
    }


def reference(bindings: Bindings) -> int:
    qubits = bindings["p_qubits"]
    gates = bindings["p_gates"]
    gate_kind = bindings["gate_kind"]
    gate_a = bindings["gate_a"]
    gate_b = bindings["gate_b"]
    amp: List[int] = list(bindings["amp"])
    n = 1 << qubits
    for g in range(gates):
        kind = gate_kind[g]
        if kind == 0:
            tmask = 1 << gate_a[g]
            for i in range(n):
                j = i ^ tmask
                if i < j:
                    amp[i], amp[j] = amp[j], amp[i]
        elif kind == 1:
            cmask, tmask = 1 << gate_a[g], 1 << gate_b[g]
            for i in range(n):
                if i & cmask:
                    j = i ^ tmask
                    if i < j:
                        amp[i], amp[j] = amp[j], amp[i]
        else:
            cmask, k = 1 << gate_a[g], 3 + gate_b[g]
            for i in range(n):
                if i & cmask:
                    amp[i] = band(mul(amp[i], k) + shr(amp[i], 3), 16777215)
    s = 0
    for i in range(n):
        s += bxor(amp[i], i)
    return s & 1073741823


WORKLOAD = Workload(
    name="libquantum",
    description="quantum gate streaming over a state-amplitude array",
    sources={"gates": _GATES, "main": _MAIN},
    make_input=make_input,
    reference=reference,
    tags=("streaming", "regular", "unrollable"),
)
