"""Instruction-set architecture for the repro simulator.

The ISA is a small load/store register machine with *x86-like variable
instruction sizes*.  Variable sizes are not cosmetic: the paper's
measurement-bias mechanisms (fetch-window alignment, cache-line crossing,
set-index changes under relinking) only exist when code bytes occupy
realistic, irregular amounts of space.

Public surface:

- :class:`~repro.isa.instructions.Op` — opcode enumeration.
- :class:`~repro.isa.instructions.Instr` — a single instruction.
- :mod:`~repro.isa.encoding` — byte sizes of encoded instructions.
- :class:`~repro.isa.program.BasicBlock`, :class:`~repro.isa.program.Function`,
  :class:`~repro.isa.program.Module`, :class:`~repro.isa.program.DataObject`
  — pre-link program form.
- :class:`~repro.isa.program.Executable` — post-link, address-assigned form.
- :func:`~repro.isa.validate.validate_module` /
  :func:`~repro.isa.validate.validate_function` — structural checking.
"""

from repro.isa.encoding import encoded_size
from repro.isa.instructions import (
    ALU_OPS,
    ALU_IMM_OPS,
    CONTROL_OPS,
    MEMORY_OPS,
    NUM_REGS,
    REG_FP,
    REG_RET,
    REG_SP,
    Instr,
    Op,
)
from repro.isa.program import (
    BasicBlock,
    DataObject,
    Executable,
    Function,
    Module,
    PlacedFunction,
)
from repro.isa.validate import ValidationError, validate_function, validate_module

__all__ = [
    "ALU_OPS",
    "ALU_IMM_OPS",
    "CONTROL_OPS",
    "MEMORY_OPS",
    "NUM_REGS",
    "REG_FP",
    "REG_RET",
    "REG_SP",
    "BasicBlock",
    "DataObject",
    "Executable",
    "Function",
    "Instr",
    "Module",
    "Op",
    "PlacedFunction",
    "ValidationError",
    "encoded_size",
    "validate_function",
    "validate_module",
]
