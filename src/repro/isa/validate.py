"""Structural validation of modules and functions.

The toolchain validates every module it emits; the linker validates its
inputs.  Validation catches toolchain bugs early, with errors that name
the offending function/block instead of failing deep inside the simulator.
"""

from __future__ import annotations

from typing import Iterable

from repro.isa.instructions import (
    ALU_IMM_OPS,
    ALU_OPS,
    NUM_REGS,
    Instr,
    Op,
)
from repro.isa.program import Function, Module


class ValidationError(Exception):
    """A module or function violates ISA structural rules."""


def _check_reg(value: int, what: str, where: str) -> None:
    if not isinstance(value, int) or not 0 <= value < NUM_REGS:
        raise ValidationError(f"{where}: {what} register out of range: {value!r}")


def _validate_instr(instr: Instr, labels: Iterable[str], where: str) -> None:
    op = instr.op
    if not isinstance(op, Op):
        raise ValidationError(f"{where}: not an Op: {op!r}")
    if op in ALU_OPS:
        _check_reg(instr.rd, "dest", where)
        _check_reg(instr.ra, "src a", where)
        _check_reg(instr.rb, "src b", where)
    elif op in ALU_IMM_OPS or op is Op.LOAD or op is Op.LOADB:
        _check_reg(instr.rd, "dest", where)
        _check_reg(instr.ra, "src", where)
    elif op is Op.CONST:
        _check_reg(instr.rd, "dest", where)
    elif op is Op.MOV:
        _check_reg(instr.rd, "dest", where)
        _check_reg(instr.ra, "src", where)
    elif op is Op.STORE or op is Op.STOREB:
        _check_reg(instr.ra, "base", where)
        _check_reg(instr.rb, "value", where)
    elif op is Op.BEQZ or op is Op.BNEZ:
        _check_reg(instr.ra, "condition", where)
        if instr.target is None or instr.target not in labels:
            raise ValidationError(
                f"{where}: branch target {instr.target!r} not a block label"
            )
    elif op is Op.JMP:
        if instr.target is None or instr.target not in labels:
            raise ValidationError(
                f"{where}: jump target {instr.target!r} not a block label"
            )
    elif op is Op.CALL:
        if instr.target is None:
            raise ValidationError(f"{where}: CALL without a target symbol")
    # RET / NOP / HALT carry no operands.


def validate_function(func: Function, where_prefix: str = "") -> None:
    """Check one function's structural invariants.

    Enforced rules:

    - block labels are unique within the function,
    - every branch/jump targets an existing label in the same function,
    - register operands are in range,
    - the final block ends in a terminator (no falling off the function),
    - only the final instruction of a block may be a terminator.
    """
    where = f"{where_prefix}{func.name}"
    if not func.blocks:
        raise ValidationError(f"{where}: function has no blocks")
    labels = [blk.label for blk in func.blocks]
    if len(set(labels)) != len(labels):
        raise ValidationError(f"{where}: duplicate block labels")
    label_set = set(labels)
    for blk in func.blocks:
        blk_where = f"{where}:{blk.label}"
        # Empty blocks are legal join points (their label resolves to the
        # next instruction) — except at the end of the function, where
        # nothing follows to fall into.
        if not blk.instrs and blk is func.blocks[-1]:
            raise ValidationError(f"{blk_where}: empty final block")
        for pos, instr in enumerate(blk.instrs):
            _validate_instr(instr, label_set, f"{blk_where}[{pos}]")
            if instr.is_terminator() and pos != len(blk.instrs) - 1:
                raise ValidationError(
                    f"{blk_where}[{pos}]: terminator in middle of block"
                )
    last = func.blocks[-1]
    if last.terminator() is None:
        raise ValidationError(f"{where}: final block does not end in a terminator")
    if func.frame_size < 0 or func.frame_size % 8 != 0:
        raise ValidationError(
            f"{where}: frame size must be a non-negative multiple of 8, "
            f"got {func.frame_size}"
        )


def validate_module(module: Module) -> None:
    """Validate every function in ``module``.

    Cross-module references (calls and address materializations of symbols
    not defined here) are legal — the linker resolves them — but the data
    objects that *are* defined must be well-formed, which
    :class:`~repro.isa.program.DataObject` enforces at construction.
    """
    for func in module.functions.values():
        validate_function(func, where_prefix=f"{module.name}:")
