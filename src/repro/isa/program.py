"""Program containers: pre-link modules and the post-link executable.

The toolchain moves a program through three shapes:

1. :class:`Module` — one compiled translation unit: named functions made of
   labelled :class:`BasicBlock`\\ s, plus global :class:`DataObject`\\ s.
   Control-flow targets and address materializations are *symbolic*.
2. The linker places modules (in **link order** — the paper's bias source)
   and produces :class:`PlacedFunction`\\ s with concrete byte addresses.
3. :class:`Executable` — the flat, address-assigned form the simulator
   runs: parallel operand arrays plus resolved control-flow targets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.isa.encoding import encoded_size
from repro.isa.instructions import Instr, Op


class BasicBlock:
    """A labelled straight-line instruction sequence.

    The final instruction should be a terminator (branch, jump, return or
    halt); a block may instead fall through to the next block in the
    function's layout order, in which case the toolchain appends an
    explicit ``JMP`` during lowering if layout changes would break the
    fall-through.
    """

    __slots__ = ("label", "instrs", "align")

    def __init__(
        self,
        label: str,
        instrs: Optional[List[Instr]] = None,
        align: int = 1,
    ) -> None:
        self.label = label
        self.instrs: List[Instr] = list(instrs) if instrs is not None else []
        #: Requested start alignment within the function (power of two).
        #: The linker pads with 1-byte NOPs to honour it.  Compilers that
        #: align hot loop heads (the icc profile) set this.
        self.align = align

    def append(self, instr: Instr) -> None:
        """Add an instruction at the end of the block."""
        self.instrs.append(instr)

    def terminator(self) -> Optional[Instr]:
        """The block's final instruction if it is a terminator, else None."""
        if self.instrs and self.instrs[-1].is_terminator():
            return self.instrs[-1]
        return None

    def successors(self) -> Tuple[Optional[str], ...]:
        """Symbolic successor labels; ``None`` denotes fall-through."""
        term = self.terminator()
        if term is None:
            return (None,)
        if term.op is Op.JMP:
            return (term.target,)
        if term.op is Op.BEQZ or term.op is Op.BNEZ:
            return (term.target, None)
        return ()  # RET / HALT

    def size_bytes(self) -> int:
        """Encoded size of the block."""
        return sum(encoded_size(i) for i in self.instrs)

    def copy(self) -> "BasicBlock":
        return BasicBlock(self.label, [i.copy() for i in self.instrs], self.align)

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.instrs)} instrs)"


class Function:
    """A function: ordered basic blocks plus frame metadata.

    ``blocks`` order is the *layout order* — it determines code bytes and
    therefore addresses, so optimizer passes that reorder blocks change
    microarchitectural behaviour (by design).

    ``frame_size`` is the byte size of the stack frame the prologue
    reserves for locals (spill slots and local arrays).
    """

    __slots__ = ("name", "num_params", "blocks", "frame_size", "hot")

    def __init__(
        self,
        name: str,
        num_params: int = 0,
        blocks: Optional[List[BasicBlock]] = None,
        frame_size: int = 0,
        hot: bool = False,
    ) -> None:
        self.name = name
        self.num_params = num_params
        self.blocks: List[BasicBlock] = list(blocks) if blocks is not None else []
        self.frame_size = frame_size
        #: Marked by the compiler when profile heuristics consider the
        #: function hot; the icc profile aligns hot loops differently.
        self.hot = hot

    def block(self, label: str) -> BasicBlock:
        """Return the block with ``label`` (raises KeyError if absent)."""
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"{self.name}: no block {label!r}")

    def block_labels(self) -> List[str]:
        return [blk.label for blk in self.blocks]

    def instructions(self) -> Iterator[Instr]:
        """Iterate instructions in layout order."""
        for blk in self.blocks:
            yield from blk.instrs

    def num_instructions(self) -> int:
        return sum(len(blk) for blk in self.blocks)

    def size_bytes(self) -> int:
        """Encoded size of the whole function."""
        return sum(blk.size_bytes() for blk in self.blocks)

    def copy(self) -> "Function":
        return Function(
            self.name,
            self.num_params,
            [blk.copy() for blk in self.blocks],
            self.frame_size,
            self.hot,
        )

    def __repr__(self) -> str:
        return (
            f"Function({self.name!r}, params={self.num_params}, "
            f"blocks={len(self.blocks)}, frame={self.frame_size})"
        )


class DataObject:
    """A global data object (scalar or array) in the data segment.

    ``kind`` is ``"words"`` (8-byte elements) or ``"bytes"``.
    ``init`` optionally provides initial element values; missing elements
    are zero.
    """

    __slots__ = ("name", "count", "kind", "align", "init")

    def __init__(
        self,
        name: str,
        count: int,
        kind: str = "words",
        align: int = 8,
        init: Optional[List[int]] = None,
    ) -> None:
        if kind not in ("words", "bytes"):
            raise ValueError(f"bad data kind: {kind!r}")
        if count <= 0:
            raise ValueError(f"{name}: data object must have positive size")
        if align <= 0 or (align & (align - 1)) != 0:
            raise ValueError(f"{name}: alignment must be a positive power of two")
        if init is not None and len(init) > count:
            raise ValueError(f"{name}: initializer longer than object")
        self.name = name
        self.count = count
        self.kind = kind
        self.align = align
        self.init = init

    @property
    def size_bytes(self) -> int:
        """Total object size in bytes."""
        return self.count * (8 if self.kind == "words" else 1)

    def __repr__(self) -> str:
        return f"DataObject({self.name!r}, {self.count} {self.kind})"


class Module:
    """One compiled translation unit ("object file").

    Functions call each other by name; cross-module calls are resolved at
    link time.  Address materializations (``CONST rd, &symbol``) carry the
    symbol name in ``Instr.target`` and are patched by the linker.
    """

    __slots__ = ("name", "functions", "data")

    def __init__(self, name: str) -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.data: Dict[str, DataObject] = {}

    def add_function(self, func: Function) -> None:
        if func.name in self.functions:
            raise ValueError(f"{self.name}: duplicate function {func.name!r}")
        self.functions[func.name] = func

    def add_data(self, obj: DataObject) -> None:
        if obj.name in self.data:
            raise ValueError(f"{self.name}: duplicate data object {obj.name!r}")
        self.data[obj.name] = obj

    def defined_symbols(self) -> Iterable[str]:
        yield from self.functions
        yield from self.data

    def undefined_symbols(self) -> Iterable[str]:
        """Symbols referenced but not defined in this module."""
        defined = set(self.defined_symbols())
        seen = set()
        for func in self.functions.values():
            for instr in func.instructions():
                sym = instr.target
                if sym is None or sym in defined or sym in seen:
                    continue
                if instr.op is Op.CALL or instr.op is Op.CONST:
                    seen.add(sym)
                    yield sym

    def num_instructions(self) -> int:
        return sum(f.num_instructions() for f in self.functions.values())

    def size_bytes(self) -> int:
        return sum(f.size_bytes() for f in self.functions.values())

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, funcs={sorted(self.functions)}, "
            f"data={sorted(self.data)})"
        )


class PlacedFunction:
    """A function fixed at a base address by the linker."""

    __slots__ = ("name", "base", "size", "flat_start", "flat_end", "module")

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        flat_start: int,
        flat_end: int,
        module: str,
    ) -> None:
        self.name = name
        self.base = base
        self.size = size
        self.flat_start = flat_start
        self.flat_end = flat_end
        self.module = module

    @property
    def end(self) -> int:
        """One past the last code byte."""
        return self.base + self.size

    def __repr__(self) -> str:
        return f"PlacedFunction({self.name!r} @ {self.base:#x}, {self.size}B)"


class Executable:
    """The flat, runnable image produced by the linker.

    Instructions live in parallel arrays indexed by *flat index*; control
    flow is expressed as flat indices in ``targets``.  ``addrs[i]`` and
    ``sizes[i]`` give instruction ``i``'s byte address and encoded size —
    the inputs to every layout-sensitive machine structure.

    Attributes:
        ops, rds, ras, rbs, imms: per-instruction operand arrays.
        targets: resolved flat-index target for control transfers, -1
            otherwise.  ``CALL`` targets are callee entry indices.
        addrs, sizes: byte address / encoded size per instruction.
        addr_to_index: map from instruction byte address to flat index
            (used to resolve return addresses).
        placed: :class:`PlacedFunction` records in placement order.
        symbols: every linked symbol name -> byte address.
        data_addrs: data symbol name -> byte address.
        data_init: byte address -> initial value writes (word-granular for
            ``words`` objects, byte-granular for ``bytes`` objects).
        entry: flat index of the entry function's first instruction.
        text_start / text_end: code segment bounds.
        frame_sizes: function entry flat index -> frame size (informational).
    """

    def __init__(self) -> None:
        self.ops: List[int] = []
        self.rds: List[int] = []
        self.ras: List[int] = []
        self.rbs: List[int] = []
        self.imms: List[int] = []
        self.targets: List[int] = []
        self.addrs: List[int] = []
        self.sizes: List[int] = []
        self.addr_to_index: Dict[int, int] = {}
        self.placed: List[PlacedFunction] = []
        self.symbols: Dict[str, int] = {}
        self.data_addrs: Dict[str, int] = {}
        self.data_init: Dict[int, int] = {}
        self.data_kinds: Dict[str, str] = {}
        self.data_counts: Dict[str, int] = {}
        self.entry: int = 0
        self.text_start: int = 0
        self.text_end: int = 0
        self.data_start: int = 0
        self.data_end: int = 0
        self.frame_sizes: Dict[int, int] = {}

    def num_instructions(self) -> int:
        return len(self.ops)

    def function_at(self, flat_index: int) -> Optional[PlacedFunction]:
        """The placed function containing ``flat_index``, if any."""
        for pf in self.placed:
            if pf.flat_start <= flat_index < pf.flat_end:
                return pf
        return None

    def placed_by_name(self, name: str) -> PlacedFunction:
        for pf in self.placed:
            if pf.name == name:
                return pf
        raise KeyError(f"no placed function {name!r}")

    def disassemble(self, name: str) -> str:
        """Human-readable listing of one function with addresses."""
        pf = self.placed_by_name(name)
        lines = [f"{pf.name} @ {pf.base:#x} ({pf.size} bytes)"]
        for i in range(pf.flat_start, pf.flat_end):
            op = Op(self.ops[i])
            instr = Instr(op, self.rds[i], self.ras[i], self.rbs[i], self.imms[i])
            tgt = self.targets[i]
            suffix = f"  -> [{tgt}]" if tgt >= 0 else ""
            lines.append(f"  {self.addrs[i]:#08x}: {instr!r}{suffix}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Executable({len(self.placed)} functions, "
            f"{self.num_instructions()} instructions, "
            f"text {self.text_start:#x}..{self.text_end:#x})"
        )
